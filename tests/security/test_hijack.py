"""Tests for the hijack simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.security.hijack import simulate_hijack
from repro.topology.graph import ASGraph


@pytest.fixture()
def contest_graph() -> ASGraph:
    """Victim 20 and attacker 30 both customers of hub 10; observers
    40 (customer of 10) and 50 (customer of 20, one hop closer to the
    victim)."""
    g = ASGraph()
    for asn in (10, 20, 30, 40, 50):
        g.add_as(asn)
    for c in (20, 30, 40):
        g.add_customer_provider(provider=10, customer=c)
    g.add_customer_provider(provider=20, customer=50)
    return g


def flags(g: ASGraph, secure_asns: list[int]) -> np.ndarray:
    out = np.zeros(g.n, dtype=bool)
    for asn in secure_asns:
        out[g.index(asn)] = True
    return out


class TestInsecureWorld:
    def test_equal_routes_split_by_hash(self, contest_graph):
        g = contest_graph
        out = simulate_hijack(g, g.index(20), g.index(30))
        # observer 40 sees two equal 2-hop provider routes; the hub
        # sees two 1-hop customer routes: hash decides, but *someone*
        # is consistent: 40 follows the hub's pick
        hub_pick = out.routes_to_attacker[g.index(10)]
        assert out.routes_to_attacker[g.index(40)] == hub_pick

    def test_victims_customer_resists(self, contest_graph):
        g = contest_graph
        out = simulate_hijack(g, g.index(20), g.index(30))
        # 50's customer route to its provider (the victim) beats the
        # provider-route alternative to the attacker: LP wins
        assert not out.routes_to_attacker[g.index(50)]

    def test_principals_never_counted(self, contest_graph):
        g = contest_graph
        out = simulate_hijack(g, g.index(20), g.index(30))
        assert not out.routes_to_attacker[g.index(20)]
        assert not out.routes_to_attacker[g.index(30)]

    def test_same_node_rejected(self, contest_graph):
        g = contest_graph
        with pytest.raises(ValueError):
            simulate_hijack(g, g.index(20), g.index(20))


class TestSecureWorld:
    def test_secp_tiebreak_saves_ties(self, contest_graph):
        g = contest_graph
        secure = flags(g, [10, 20, 40, 50])
        out = simulate_hijack(g, g.index(20), g.index(30), secure, secure)
        # the hub's two candidate routes tie on (class, length); the
        # victim's is fully secure, the attacker's cannot be
        assert not out.routes_to_attacker[g.index(10)]
        assert not out.routes_to_attacker[g.index(40)]

    def test_shorter_false_route_still_wins_tiebreak_mode(self):
        """Security is only a tie-break: a strictly shorter hijack
        route wins even against full deployment."""
        g = ASGraph()
        for asn in (1, 2, 3, 9):
            g.add_as(asn)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=2, customer=3)   # victim 3, two hops
        g.add_customer_provider(provider=1, customer=9)   # attacker 9, one hop
        secure = np.ones(g.n, dtype=bool)
        out = simulate_hijack(g, g.index(3), g.index(9), secure, secure)
        assert out.routes_to_attacker[g.index(1)]

    def test_validation_filtering_stops_it(self):
        g = ASGraph()
        for asn in (1, 2, 3, 9):
            g.add_as(asn)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=2, customer=3)
        g.add_customer_provider(provider=1, customer=9)
        secure = np.ones(g.n, dtype=bool)
        out = simulate_hijack(
            g, g.index(3), g.index(9), secure, secure, drop_unvalidated=True
        )
        assert not out.routes_to_attacker.any()

    def test_singlehomed_stub_always_captured(self, contest_graph):
        """§2.2.1: an attacker's own single-homed stubs are lost — the
        attacker is their only upstream."""
        g = contest_graph
        g.add_as(60)
        g.add_customer_provider(provider=30, customer=60)  # attacker's stub
        secure = flags(g, [10, 20, 30, 40, 50, 60])
        out = simulate_hijack(
            g, g.index(20), g.index(30), secure, secure, drop_unvalidated=True
        )
        assert out.routes_to_attacker[g.index(60)]
        fooled = np.flatnonzero(out.routes_to_attacker)
        assert list(fooled) == [g.index(60)]

    def test_gullible_vector_decides_for_multihomed_stub(self, contest_graph):
        """A stub multihomed to the victim and the attacker sees two
        equal 1-hop routes: if it cannot be conned (it trusts only
        validated secure paths through honest providers), SecP keeps it
        honest; if the attacker can vouch for its own announcement,
        both look secure and the stub may fall to the hash."""
        g = contest_graph
        g.add_as(60)
        g.add_customer_provider(provider=30, customer=60)
        g.add_customer_provider(provider=20, customer=60)  # also the victim's
        secure = flags(g, [10, 20, 30, 40, 50, 60])
        honest = simulate_hijack(
            g, g.index(20), g.index(30), secure, secure,
            attacker_convinces_own_stubs=False, drop_unvalidated=True,
        )
        assert not honest.routes_to_attacker.any()
        conned = simulate_hijack(
            g, g.index(20), g.index(30), secure, secure,
            attacker_convinces_own_stubs=True, drop_unvalidated=True,
        )
        fooled = set(np.flatnonzero(conned.routes_to_attacker))
        assert fooled <= {g.index(60)}  # nobody else can ever fall

    def test_partial_deployment_filtering_disconnects(self):
        """Filtering unvalidated routes before full deployment cuts
        insecure destinations off — the coexistence hazard."""
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(asn)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=2, customer=3)  # victim 3 insecure
        g.add_as(9)
        g.add_customer_provider(provider=1, customer=9)  # attacker elsewhere
        secure = np.zeros(g.n, dtype=bool)
        secure[g.index(1)] = True  # validator, but path to 3 is unsigned
        out = simulate_hijack(
            g, g.index(3), g.index(9), secure, secure, drop_unvalidated=True
        )
        assert not out.reachable[g.index(1)]
