#!/usr/bin/env python3
"""Diff two pytest-benchmark JSON files and report kernel regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]

Prints a per-benchmark table of mean runtimes and flags every benchmark
whose mean regressed by more than ``--threshold`` (default 10%).  Exits
non-zero when regressions are found, so the comparison can gate a local
workflow — CI runs it as a *non-blocking* smoke signal (shared runners
are too noisy to make hard promises about wall-clock).

Benchmarks present in only one file are listed but never counted as
regressions (new benchmarks appear, old ones retire).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    out: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        out[bench["name"]] = float(bench["stats"]["mean"])
    return out


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.2f}s "


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
    only: str | None = None,
) -> list[str]:
    """Print the comparison table; return the regressed benchmark names."""
    names = sorted(set(baseline) | set(current))
    if only:
        names = [n for n in names if only in n]
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'speedup':>8}")
    regressions: list[str] = []
    for name in names:
        old, new = baseline.get(name), current.get(name)
        if old is None or new is None:
            status = "(baseline only)" if new is None else "(new)"
            have = fmt_seconds(old if new is None else new)
            print(f"{name:<{width}}  {have:>10}  {status}")
            continue
        speedup = old / new if new else float("inf")
        marker = ""
        if new > old * (1.0 + threshold):
            marker = f"  REGRESSION (>{threshold:.0%})"
            regressions.append(name)
        print(
            f"{name:<{width}}  {fmt_seconds(old):>10}  {fmt_seconds(new):>10}"
            f"  {speedup:7.2f}x{marker}"
        )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="older BENCH_*.json")
    parser.add_argument("current", help="newer BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="fractional slowdown that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--only", default=None,
        help="restrict the comparison to benchmark names containing this substring",
    )
    args = parser.parse_args(argv)
    regressions = compare(
        load_means(args.baseline), load_means(args.current), args.threshold, args.only
    )
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
