"""Exceptions raised by the topology subpackage."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.runtime.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.topology.preflight import PreflightIssue


class TopologyError(Exception):
    """Base class for all topology errors."""


class UnknownASError(TopologyError, KeyError):
    """An operation referenced an AS number that is not in the graph."""

    def __init__(self, asn: int):
        super().__init__(f"AS {asn} is not in the graph")
        self.asn = asn


class DuplicateASError(TopologyError, ValueError):
    """An AS number was added to the graph twice."""

    def __init__(self, asn: int):
        super().__init__(f"AS {asn} is already in the graph")
        self.asn = asn


class DuplicateEdgeError(TopologyError, ValueError):
    """An edge between two ASes was declared twice."""

    def __init__(self, a: int, b: int):
        super().__init__(f"edge between AS {a} and AS {b} already exists")
        self.endpoints = (a, b)


class RelationshipCycleError(TopologyError, ValueError):
    """The customer-provider hierarchy contains a cycle (violates GR1)."""

    def __init__(self, cycle: list[int]):
        path = " -> ".join(str(asn) for asn in cycle)
        super().__init__(f"customer-provider cycle: {path}")
        self.cycle = cycle


class GraphFormatError(TopologyError, SchemaError):
    """A serialized graph file could not be parsed.

    Messages name the source and line (``<file>:<line>: ...``) so a bad
    snapshot is pin-pointable without re-running under a debugger.
    Subclasses :class:`~repro.runtime.errors.SchemaError` (itself a
    :class:`ValueError`): malformed input data is the same failure class
    whether it arrives as a journal or an as-rel file, and pre-existing
    ``except ValueError`` callers keep working.
    """


class GraphValidationError(TopologyError, ValueError):
    """An as-rel source failed preflight validation in ``strict`` mode.

    Carries the individual :class:`~repro.topology.preflight.
    PreflightIssue` findings (each with its line number) so callers can
    render a quarantine report instead of fixing one issue per rerun.
    """

    def __init__(self, origin: str, issues: Sequence["PreflightIssue"]):
        self.origin = origin
        self.issues = tuple(issues)
        lines = "; ".join(
            f"line {i.lineno}: {i.message}" for i in self.issues[:5]
        )
        more = len(self.issues) - 5
        if more > 0:
            lines += f"; ... and {more} more"
        super().__init__(
            f"{origin}: {len(self.issues)} validation issue(s): {lines}"
        )
