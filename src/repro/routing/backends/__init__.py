"""Kernel backend registry: one namespace, several implementations.

The four hot kernels — the batched tree resolver, the batched subtree
weights, the synchronous-Jacobi fixpoint sweep, and its multi-origin
attack variant — exist in multiple implementations ("backends") behind
this registry:

- ``numpy``: the original vectorised code, moved verbatim into
  :mod:`repro.routing.backends.numpy_impl`.  It is the **differential
  ground truth**: every other backend must produce bit-identical
  outputs (asserted by ``tests/routing/test_backends.py``).
- ``numba``: ``@njit``-compiled level loops over the arena's flat CSR
  pools (:mod:`repro.routing.backends.numba_impl`).  Numba is an
  *optional* dependency (the ``compiled`` extra); the module is only
  imported when the backend is requested, compiles with ``cache=True``
  so warm processes skip recompilation, and warms up on tiny inputs at
  load so the first real kernel call never pays the JIT.
- ``cext``: the same loops as a small C translation unit, compiled once
  per source digest with the system C compiler and bound through
  ``ctypes`` (:mod:`repro.routing.backends.cext_impl`).  No build-time
  dependency beyond ``cc``; the shared object is cached on disk.
- ``python``: the pure-Python loop bodies that ``numba`` compiles
  (:mod:`repro.routing.backends._loops`), registered *hidden* so the
  parity suite can exercise the exact compiled control flow without a
  JIT.  Far too slow for real runs; never selected by ``auto``.

Selection: explicit name > ``SBGP_KERNEL_BACKEND`` env var > ``numpy``.
``auto`` picks the fastest *usable* compiled backend.  An explicitly
requested backend that cannot load **degrades** to numpy through the
resource guard's ``compiled_to_numpy`` ladder rung — a counted,
observable event, never an error — so a run specced for numba still
completes on a box without it.

Kernel *implementation* modules must never be imported outside this
package (lint rule RPR013): consumers go through
:func:`resolve_backend` / :func:`kernels_for` so the fallback and the
telemetry stay on the only path.
"""

from __future__ import annotations

import dataclasses
import importlib
import importlib.util
import os
import shutil
import threading
import time
from typing import Any

from repro.routing.errors import BackendUnavailable
from repro.runtime.guard import current_guard
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer

__all__ = [
    "AUTO",
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelBackend",
    "available_backends",
    "backend_status",
    "default_backend_name",
    "get_backend",
    "kernels_for",
    "load_backend",
    "probe",
    "register_backend",
    "resolve_backend",
    "usable_backends",
]

#: Environment variable consulted when no backend is named explicitly.
ENV_VAR = "SBGP_KERNEL_BACKEND"

#: The differential ground truth and universal fallback.
DEFAULT_BACKEND = "numpy"

#: Pseudo-name: pick the best usable compiled backend, else numpy.
AUTO = "auto"

#: ``auto`` preference order among compiled backends.
_COMPILED_PREFERENCE = ("numba", "cext")


@dataclasses.dataclass(frozen=True)
class KernelBackend:
    """Registry descriptor for one kernel implementation tier.

    ``module`` is imported lazily on first use; ``requires`` lists
    third-party modules that must be importable (checked cheaply with
    ``find_spec`` by :func:`probe`, without triggering compilation);
    ``needs_cc`` marks backends that additionally want a C compiler on
    PATH.  ``hidden`` keeps test-only backends out of user-facing
    listings (CLI choices, ``/healthz``) while leaving them resolvable
    by exact name.
    """

    name: str
    description: str
    module: str
    compiled: bool = False
    requires: tuple[str, ...] = ()
    needs_cc: bool = False
    hidden: bool = False


_REGISTRY: dict[str, KernelBackend] = {}
_IMPLS: dict[str, Any] = {}
_FAILURES: dict[str, str] = {}
#: Serialises the import/compile slow path of :func:`load_backend`.
_LOAD_LOCK = threading.Lock()


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add ``backend`` to the registry (idempotent for equal specs)."""
    existing = _REGISTRY.get(backend.name)
    if existing is not None and existing != backend:
        raise ValueError(
            f"kernel backend {backend.name!r} already registered with a "
            f"different spec"
        )
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """The descriptor for ``name``; raises ``ValueError`` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: "
            f"{', '.join(available_backends())} (or {AUTO!r})"
        ) from None


def available_backends() -> list[str]:
    """Registered, user-facing backend names (sorted; hidden excluded)."""
    return sorted(n for n, b in _REGISTRY.items() if not b.hidden)


def _have_compiler() -> bool:
    cc = os.environ.get("CC") or "cc"
    return shutil.which(cc) is not None or shutil.which("gcc") is not None


def probe(name: str) -> bool:
    """Cheap availability check — no import, no JIT, no compilation.

    Used by the daemon's ``/healthz`` and by ``auto`` selection, so it
    must stay O(find_spec).  A ``True`` is a *prediction*; the load can
    still fail, in which case the caller degrades.
    """
    if name in _IMPLS:
        return True
    if name in _FAILURES:
        return False
    backend = _REGISTRY.get(name)
    if backend is None:
        return False
    try:
        for module in backend.requires:
            if importlib.util.find_spec(module) is None:
                return False
    except (ImportError, ValueError):
        return False
    if backend.needs_cc and not _have_compiler():
        return False
    return True


def usable_backends() -> list[str]:
    """Registered user-facing backends that :func:`probe` accepts."""
    return [name for name in available_backends() if probe(name)]


def backend_status() -> dict[str, str]:
    """``{name: loaded|available|unavailable}`` for every visible backend."""
    out: dict[str, str] = {}
    for name in available_backends():
        if name in _IMPLS:
            out[name] = "loaded"
        elif probe(name):
            out[name] = "available"
        else:
            out[name] = "unavailable"
    return out


def load_backend(name: str) -> Any:
    """Import (and for compiled tiers, compile + warm) backend ``name``.

    Returns the implementation module exposing ``trees_level``,
    ``weights_level``, ``fixpoint_sweep`` and ``attack_sweep``.  Load
    results are cached
    both ways: a success is never re-imported, a failure is never
    retried within the process (compilation attempts are expensive and
    deterministic).
    """
    impl = _IMPLS.get(name)
    if impl is not None:
        return impl
    # Double-checked: the fast path above is lock-free; the slow path is
    # serialised so concurrent scheduler threads cannot race a compile
    # and double-import the same tier.
    with _LOAD_LOCK:
        impl = _IMPLS.get(name)
        if impl is not None:
            return impl
        if name in _FAILURES:
            raise BackendUnavailable(
                f"kernel backend {name!r} unavailable: {_FAILURES[name]}"
            )
        backend = get_backend(name)
        registry = get_registry()
        started = time.perf_counter()
        try:
            with get_tracer().span(f"backend.load.{name}"):
                impl = importlib.import_module(backend.module)
        except (ImportError, OSError, RuntimeError) as exc:
            _FAILURES[name] = str(exc) or type(exc).__name__
            registry.counter(f"routing.backend.load_failures.{name}").inc()
            raise BackendUnavailable(
                f"kernel backend {name!r} unavailable: {exc}"
            ) from exc
        if backend.compiled:
            # JIT/cc time for the whole tier (cache hits land near zero, so
            # the histogram doubles as a compile-cache effectiveness probe).
            registry.histogram("routing.backend.compile_seconds").observe(
                time.perf_counter() - started
            )
        _IMPLS[name] = impl
        return impl


def _note_active(name: str) -> None:
    registry = get_registry()
    if not registry.enabled:
        return
    for other in available_backends():
        registry.gauge(f"routing.backend.active.{other}").set(
            1.0 if other == name else 0.0
        )


def default_backend_name() -> str:
    """The name selection falls back to: env var, else ``numpy``."""
    return os.environ.get(ENV_VAR, "").strip() or DEFAULT_BACKEND


def resolve_backend(name: str | None = None) -> str:
    """Resolve a requested backend to a *loaded*, usable backend name.

    ``None`` defers to :func:`default_backend_name`; ``auto`` picks the
    first loadable entry of ``numba > cext``, else numpy.  An explicit
    name that is registered but will not load degrades to numpy via the
    guard's ``compiled_to_numpy`` rung.  Only a name that is not
    registered at all raises (that is a spelling error, not a resource
    condition).
    """
    requested = name if name is not None else default_backend_name()
    if requested == AUTO:
        for candidate in _COMPILED_PREFERENCE:
            if candidate in _REGISTRY and probe(candidate):
                try:
                    load_backend(candidate)
                except BackendUnavailable:
                    continue
                _note_active(candidate)
                return candidate
        load_backend(DEFAULT_BACKEND)
        _note_active(DEFAULT_BACKEND)
        return DEFAULT_BACKEND
    backend = get_backend(requested)
    try:
        load_backend(backend.name)
    except BackendUnavailable as exc:
        current_guard().degrade(
            "compiled_to_numpy",
            f"kernel backend {requested!r} unavailable ({exc}); "
            f"running on the numpy tier",
        )
        load_backend(DEFAULT_BACKEND)
        _note_active(DEFAULT_BACKEND)
        return DEFAULT_BACKEND
    _note_active(backend.name)
    return backend.name


def kernels_for(name: str) -> tuple[str, Any]:
    """``(resolved name, impl module)`` for a kernel call site.

    The call-time companion of :func:`resolve_backend`: arenas carry a
    backend *name* (it travels through shared memory and job specs as
    plain data), and the consuming process may lack that backend — so
    the dispatcher, not the producer, owns the degradation.
    """
    try:
        return name, load_backend(name)
    except (BackendUnavailable, ValueError) as exc:
        if name == DEFAULT_BACKEND:
            raise
        current_guard().degrade(
            "compiled_to_numpy",
            f"kernel backend {name!r} unusable at call time ({exc}); "
            f"running on the numpy tier",
        )
        return DEFAULT_BACKEND, load_backend(DEFAULT_BACKEND)


register_backend(
    KernelBackend(
        name="numpy",
        description="vectorised numpy kernels (differential ground truth)",
        module="repro.routing.backends.numpy_impl",
    )
)
register_backend(
    KernelBackend(
        name="numba",
        description="@njit-compiled level loops (optional 'compiled' extra)",
        module="repro.routing.backends.numba_impl",
        compiled=True,
        requires=("numba",),
    )
)
register_backend(
    KernelBackend(
        name="cext",
        description="C translation unit compiled with the system cc, via ctypes",
        module="repro.routing.backends.cext_impl",
        compiled=True,
        needs_cc=True,
    )
)
register_backend(
    KernelBackend(
        name="python",
        description="pure-Python loop bodies (numba's source; parity tests only)",
        module="repro.routing.backends._loops",
        hidden=True,
    )
)
