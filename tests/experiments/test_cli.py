"""CLI smoke tests (fast, tiny graphs)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("case-study", "sweep", "tiebreak", "cp-vs-tier1",
                    "turnoff", "graph-stats"):
            args = parser.parse_args([cmd, "--n", "50"])
            assert args.command == cmd
            assert args.n == 50

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_graph_stats(self, capsys):
        assert main(["graph-stats", "--n", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_tiebreak(self, capsys):
        assert main(["tiebreak", "--n", "60"]) == 0
        assert "tiebreak" in capsys.readouterr().out

    def test_case_study(self, capsys):
        assert main(["case-study", "--n", "60", "--theta", "0.05"]) == 0
        assert "early adopters" in capsys.readouterr().out


class TestExperimentValidation:
    def test_unknown_id_fails_fast_with_valid_ids(self, capsys):
        # must fail before the environment build, so even a large --n
        # returns immediately
        assert main(["experiment", "--id", "nope", "--n", "100000"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment id 'nope'" in err
        assert "fig8" in err and "table2" in err

    def test_known_id_runs(self, capsys):
        assert main(["experiment", "--id", "table2", "--n", "60"]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_sweep_writes_metrics_and_trace(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        assert main([
            "sweep", "--n", "60", "--workers", "2",
            "--metrics-out", str(metrics),
            "--trace-out", str(trace),
            "--trace-jsonl", str(jsonl),
        ]) == 0
        assert "telemetry summary" in capsys.readouterr().out

        from repro.telemetry.export import load_metrics

        snap = load_metrics(metrics)
        # worker-side counters (tree builds in the warm workers) merged in
        assert snap["counters"]["routing.tree_builds"] == 60
        assert snap["counters"]["sweep.cells"] > 0
        assert snap["counters"]["engine.maps"] >= 1

        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"sweep", "cell", "round"} <= names
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        assert jsonl.read_text().count("\n") == len(payload["traceEvents"])

    def test_case_study_prints_summary(self, capsys, tmp_path):
        metrics = tmp_path / "m.json"
        assert main([
            "case-study", "--n", "60", "--metrics-out", str(metrics),
        ]) == 0
        assert "telemetry summary" in capsys.readouterr().out
        assert metrics.exists()

    def test_no_flags_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["case-study", "--n", "60"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_graph_stats_prints_cache_stats(self, capsys):
        assert main(["graph-stats", "--n", "60"]) == 0
        out = capsys.readouterr().out
        assert "routing cache" in out
        assert "100.0%" in out


class TestSweepResume:
    def test_journal_resume_and_out(self, capsys, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        out = tmp_path / "table.txt"
        assert main(["sweep", "--n", "60", "--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        snapshot = journal.read_text()

        # a resumed run replays every cell and prints the same table
        assert main([
            "sweep", "--n", "60", "--journal", str(journal),
            "--resume", "--out", str(out),
        ]) == 0
        assert capsys.readouterr().out == first
        assert journal.read_text() == snapshot
        assert "Fig 8/9" in out.read_text()

    def test_existing_journal_requires_resume(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        assert main(["sweep", "--n", "60", "--journal", str(journal)]) == 0
        with pytest.raises(SystemExit, match="--resume"):
            main(["sweep", "--n", "60", "--journal", str(journal)])

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit, match="--journal"):
            main(["sweep", "--n", "60", "--resume"])

    def test_resume_under_different_policy_is_one_line_error(self, tmp_path):
        """The policy-mismatch SchemaError surfaces as a clean SystemExit
        message naming both policies, not a traceback."""
        journal = tmp_path / "sweep.jsonl"
        assert main([
            "sweep", "--n", "60", "--policy", "security_2nd",
            "--journal", str(journal),
        ]) == 0
        with pytest.raises(SystemExit, match="security_2nd.*security_1st"):
            main([
                "sweep", "--n", "60", "--policy", "security_1st",
                "--journal", str(journal), "--resume",
            ])


class TestAttackImpact:
    def test_matrix_table_prints(self, capsys):
        assert main([
            "attack-impact", "--n", "60", "--samples", "2",
            "--scenario", "hijack", "--strategy", "top_isp_first",
            "--levels", "0,1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Attack impact vs deployment level" in out
        assert "origin_hijack" in out  # alias resolved to canonical name

    def test_defaults_span_all_scenarios_and_strategies(self, capsys):
        assert main([
            "attack-impact", "--n", "60", "--samples", "2", "--levels", "0",
        ]) == 0
        out = capsys.readouterr().out
        for name in ("origin_hijack", "subprefix_hijack", "route_leak",
                     "forged_origin", "stub_first", "market_rounds"):
            assert name in out

    def test_unknown_scenario_is_clean_error(self):
        with pytest.raises(SystemExit, match="unknown attack scenario"):
            main(["attack-impact", "--n", "60", "--scenario", "nope"])

    def test_journal_resume_replays(self, capsys, tmp_path):
        journal = tmp_path / "matrix.jsonl"
        args = [
            "attack-impact", "--n", "60", "--samples", "2",
            "--scenario", "origin_hijack", "--strategy", "top_isp_first",
            "--levels", "0,1", "--journal", str(journal),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        snapshot = journal.read_text()
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first
        assert journal.read_text() == snapshot

    def test_existing_journal_requires_resume(self, tmp_path):
        journal = tmp_path / "matrix.jsonl"
        args = [
            "attack-impact", "--n", "60", "--samples", "2",
            "--scenario", "origin_hijack", "--strategy", "top_isp_first",
            "--levels", "0", "--journal", str(journal),
        ]
        assert main(args) == 0
        with pytest.raises(SystemExit, match="--resume"):
            main(args)

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit, match="--journal"):
            main(["attack-impact", "--n", "60", "--resume"])

    def test_scenario_mismatch_is_one_line_error(self, tmp_path):
        journal = tmp_path / "matrix.jsonl"
        base = [
            "attack-impact", "--n", "60", "--samples", "2",
            "--strategy", "top_isp_first", "--levels", "0",
            "--journal", str(journal),
        ]
        assert main(base + ["--scenario", "origin_hijack"]) == 0
        with pytest.raises(SystemExit, match="origin_hijack.*route_leak"):
            main(base + ["--scenario", "route_leak", "--resume"])
