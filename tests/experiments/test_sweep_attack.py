"""Tests for the sweep's attack axis (per-cell resilience metrics)."""

from __future__ import annotations

import pytest

from repro.experiments.sweeps import cell_from_dict, cell_to_dict, run_sweep
from repro.runtime.journal import RunJournal


@pytest.fixture(scope="module")
def attack_cells(medium_env):
    return run_sweep(
        medium_env,
        thetas=(0.05,),
        adopter_sets={"top-5": medium_env.adopter_sets()["top-5"]},
        attack_scenarios=("hijack", "leak"),  # aliases, canonicalised
        attack_samples=4,
    )


class TestAttackAxis:
    def test_per_cell_impacts_present_and_canonical(self, attack_cells):
        (cell,) = attack_cells
        assert [s for s, _, _ in cell.attack] == ["origin_hijack", "route_leak"]
        for _, mean, peak in cell.attack:
            assert 0.0 <= mean <= peak <= 1.0

    def test_axis_off_by_default(self, medium_env):
        cells = run_sweep(
            medium_env, thetas=(0.05,),
            adopter_sets={"none": []},
        )
        assert all(c.attack == () for c in cells)

    def test_cells_round_trip(self, attack_cells):
        for cell in attack_cells:
            assert cell_from_dict(cell_to_dict(cell)) == cell

    def test_legacy_payloads_without_attack_load(self, attack_cells):
        payload = cell_to_dict(attack_cells[0])
        del payload["attack"]
        assert cell_from_dict(payload).attack == ()


class TestAttackJournalMeta:
    def test_meta_carries_attack_axis_only_when_on(self, medium_env, tmp_path):
        sets = {"none": []}
        plain = RunJournal(tmp_path / "plain.jsonl")
        run_sweep(medium_env, thetas=(0.05,), adopter_sets=sets, journal=plain)
        meta = plain.header()["meta"]
        assert "attack_scenarios" not in meta  # legacy journals still resume

        attacked = RunJournal(tmp_path / "attacked.jsonl")
        run_sweep(
            medium_env, thetas=(0.05,), adopter_sets=sets,
            attack_scenarios=("hijack",), attack_samples=3, journal=attacked,
        )
        meta = attacked.header()["meta"]
        assert meta["attack_scenarios"] == ["origin_hijack"]
        assert meta["attack_samples"] == 3

    def test_resume_replays_attack_cells(self, medium_env, tmp_path):
        sets = {"none": []}
        journal = RunJournal(tmp_path / "resume.jsonl")
        kwargs = dict(
            thetas=(0.05,), adopter_sets=sets,
            attack_scenarios=("origin_hijack",), attack_samples=3,
        )
        first = run_sweep(medium_env, journal=journal, **kwargs)
        second = run_sweep(medium_env, journal=journal, **kwargs)
        assert second == first
        assert second[0].attack
