"""§5.6: the deployment game is zero-sum over a fixed traffic pool.

Paper: at termination only 8% of ISPs sit more than theta above their
starting utility; insecure holdouts lose on average 13% of it; it is
better to deploy than to hold out.  Shapes: few big winners, holdouts
strictly below deployers.
"""

from __future__ import annotations

from benchmarks.conftest import case_study_report


def test_sec56_zero_sum_analysis(benchmark, env, capsys):
    report = benchmark.pedantic(
        lambda: case_study_report(env), rounds=1, iterations=1
    )
    zs = report.zero_sum
    with capsys.disabled():
        print()
        print("Sec 5.6: zero-sum outcomes (final vs starting utility)")
        print(f"  ISPs ending > (1+theta) x start: "
              f"{zs.fraction_isps_above_threshold:.1%} (paper: 8%)")
        print(f"  secure ISPs mean final/start  : "
              f"{zs.mean_final_over_start_secure:.3f}")
        print(f"  insecure ISPs mean final/start: "
              f"{zs.mean_final_over_start_insecure:.3f} (paper: 0.87)")
    assert zs.fraction_isps_above_threshold < 0.5
    assert zs.mean_final_over_start_insecure <= 1.0
    assert zs.mean_final_over_start_secure >= zs.mean_final_over_start_insecure
