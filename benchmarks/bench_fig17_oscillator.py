"""Figure 17 (Appendix F/K): deployment oscillation under incoming
utility.

Paper: groups of ISPs can cycle S*BGP on and off forever (Theorem 7.1:
deciding termination is PSPACE-complete).  The chicken gadget's
bi-matrix makes both strategic nodes enter together and leave together
under simultaneous best response.  Shape: the simulation detects a
state cycle, never a stable state.
"""

from __future__ import annotations

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation, Outcome
from repro.gadgets.oscillator import build_chicken


def test_fig17_oscillation(benchmark, capsys):
    def run():
        net = build_chicken()
        cfg = SimulationConfig(
            theta=0.0, utility_model=UtilityModel.INCOMING, max_rounds=30
        )
        sim = DeploymentSimulation(
            net.graph, net.fixed_on, cfg, player_asns=list(net.players)
        )
        return net, sim.run()

    net, result = benchmark.pedantic(run, rounds=1, iterations=1)
    g = net.graph
    with capsys.disabled():
        print()
        print("Fig 17: oscillator (incoming utility, theta=0)")
        for record in result.rounds:
            on = sorted(g.asn(i) for i in record.turned_on)
            off = sorted(g.asn(i) for i in record.turned_off)
            print(f"  round {record.index}: ON {on or '-'} OFF {off or '-'}")
        print(f"  outcome: {result.outcome.value} (paper: no stable state exists)")
    assert result.outcome is Outcome.OSCILLATION
