"""``sbgp-lint`` / ``python -m repro.analysis`` command line.

Exit codes (CI contract): 0 clean, 1 findings, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.findings import JSON_FORMAT
from repro.analysis.program import PROGRAM_RULES, program_codes
from repro.analysis.rules import ALL_RULES, get_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sbgp-lint",
        description=(
            "AST linter for repro project invariants (atomic writes, seeded "
            "RNG, cache/registry encapsulation, no-pickle routing trees, ...)"
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help=(
            "also run the whole-program pass: RPR015 layering contract, "
            "RPR016 fork/thread safety, RPR017 dead public API"
        ),
    )
    parser.add_argument(
        "--graph-out",
        metavar="DOT",
        help="write the package import graph as Graphviz DOT (implies --program)",
    )
    parser.add_argument(
        "--uses",
        metavar="PATH",
        action="append",
        help=(
            "extra root whose references count as API use for RPR017 but "
            "which is not itself linted (repeatable; a linted src/ root "
            "auto-adds sibling tests/ and examples/)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (code, name, rationale) and exit",
    )
    return parser


def _parse_codes(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(code.strip().upper() for code in raw.split(",") if code.strip())


def _print_rule_catalogue(out: list[str]) -> None:
    for rule in ALL_RULES:
        out.append(f"{rule.code} {rule.name}")
        out.append(f"    {rule.rationale}")
    for prog_rule in PROGRAM_RULES:
        out.append(f"{prog_rule.code} {prog_rule.name} (--program)")
        out.append(f"    {prog_rule.rationale}")


def render_text(result: LintResult) -> str:
    lines = [f.format_text() for f in result.findings]
    counts = Counter(f.code for f in result.findings)
    if result.findings:
        by_code = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{len({f.path for f in result.findings})} file(s) "
            f"({result.files_checked} checked) — {by_code}"
        )
    else:
        lines.append(f"clean: 0 findings ({result.files_checked} files checked)")
    if result.program is not None:
        p = result.program
        lines.append(
            f"program: {p.modules} modules / {p.packages} packages, "
            f"{p.edges_eager} eager + {p.edges_lazy} lazy + {p.edges_typing} typing "
            f"import edges, {p.reachable_functions} functions reachable from "
            f"{p.entrypoints} fork/thread entry points, {p.public_symbols} public symbols"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload: dict[str, object] = {
        "format": JSON_FORMAT,
        "files_checked": result.files_checked,
        "findings": [f.to_json() for f in result.findings],
        "counts": dict(sorted(Counter(f.code for f in result.findings).items())),
    }
    if result.program is not None:
        payload["program"] = result.program.to_json()
    return json.dumps(payload, indent=1)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        lines: list[str] = []
        _print_rule_catalogue(lines)
        print("\n".join(lines))
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    prog_codes = program_codes()

    # Selecting a program code implies --program, as does --graph-out.
    run_program = bool(args.program or args.graph_out or (select and select & prog_codes))
    program_select: frozenset[str] | None = None
    if run_program:
        program_select = prog_codes if select is None else (select & prog_codes)
        if ignore:
            program_select -= ignore

    try:
        file_select = None if select is None else (select - prog_codes)
        if file_select is not None and not file_select:
            rules = []  # only program codes selected: no per-file rules
        else:
            rules = get_rules(select=file_select, ignore=ignore)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        result = lint_paths(
            args.paths,
            rules=rules,
            program=run_program,
            program_select=program_select,
            reference_roots=None if args.uses is None else [Path(p) for p in args.uses],
            graph_out=args.graph_out,
        )
    except FileNotFoundError as exc:
        print(f"sbgp-lint: error: {exc}", file=sys.stderr)
        return 2

    print(render_text(result) if args.format == "text" else render_json(result))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
