"""Figure 6: cumulative ISP adoption by degree bucket (§5.3).

Paper: low-degree ISPs (<=10) are the least likely to deploy — about a
thousand ISPs with average degree 6 never face competition and stay
insecure.  Shape: final adoption fraction increases with degree bucket.
"""

from __future__ import annotations

from benchmarks.conftest import case_study_report
from repro.experiments.report import format_series


def test_fig06_adoption_by_degree(benchmark, env, capsys):
    report = benchmark.pedantic(
        lambda: case_study_report(env), rounds=1, iterations=1
    )
    buckets = report.fig6_adoption_by_bucket
    with capsys.disabled():
        print()
        print("Fig 6: cumulative fraction of ISPs secure, by total degree")
        for label, series in buckets.items():
            print("  " + format_series(label, series, "{:.2f}"))
    finals = [series[-1] for series in buckets.values()]
    # the highest-degree bucket adopts at least as much as the lowest
    assert finals[-1] >= finals[0]
