"""Per-link S*BGP deployment (§8.3, Theorems 8.2 / J.1 / J.2).

An ISP might activate S*BGP with only a subset of its neighbors.  The
paper proves that choosing the incoming-utility-maximising link subset
is NP-hard (even to approximate), while under outgoing utility securing
*all* links is optimal — so per-link cleverness only matters in the
incoming model, and only as a hazard.

Here a link is *active* for security purposes when **both** endpoints
have enabled S*BGP toward each other; a path is fully secure iff every
AS on it is secure and every hop crosses an active link.  Utilities are
computed by a fixpoint route selection (per-link security breaks the
tiebreak-set reuse of Observation C.1, so the analytic engine does not
apply); this is intended for gadget-sized graphs and brute-force link
subsets (the paper: "the problem is tractable when the node's neighbor
set is of constant size").
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from repro.core.config import UtilityModel
from repro.routing.policy import RouteClass, RoutingPolicy, get_policy
from repro.topology.graph import ASGraph

_EXPORT_OK = (RouteClass.CUSTOMER, RouteClass.SELF)


@dataclasses.dataclass(frozen=True)
class _Route:
    route_class: RouteClass
    length: int
    secure: bool
    next_hop: int


def _link_active(
    disabled: dict[int, set[int]], a: int, b: int, node_secure: np.ndarray
) -> bool:
    """Is the hop a-b protected?  Needs both ends secure and enabled."""
    if not (node_secure[a] and node_secure[b]):
        return False
    if b in disabled.get(a, ()) or a in disabled.get(b, ()):
        return False
    return True


def routes_with_link_security(
    graph: ASGraph,
    dest: int,
    node_secure: np.ndarray,
    breaks_ties: np.ndarray,
    disabled_links: dict[int, set[int]] | None = None,
    max_sweeps: int = 10_000,
    policy: "str | RoutingPolicy" = "security_3rd",
) -> dict[int, _Route]:
    """Fixpoint route selection with per-link security semantics.

    ``policy`` selects the preference ranking (SecP placement); the
    per-link twist is only in what counts as a *secure* offer.
    """
    n = graph.n
    pol = get_policy(policy)
    disabled = disabled_links or {}
    selected: dict[int, _Route] = {
        dest: _Route(RouteClass.SELF, 0, bool(node_secure[dest]), dest)
    }

    for _ in range(max_sweeps):
        changed = False
        for i in range(n):
            if i == dest:
                continue
            best_key: tuple | None = None
            best: _Route | None = None
            for kind, neighbors in (
                (RouteClass.CUSTOMER, graph.customers[i]),
                (RouteClass.PEER, graph.peers[i]),
                (RouteClass.PROVIDER, graph.providers[i]),
            ):
                for nbr in neighbors:
                    route = selected.get(nbr)
                    if route is None:
                        continue
                    if kind is not RouteClass.PROVIDER and route.route_class not in _EXPORT_OK:
                        continue
                    secure = bool(
                        route.secure
                        and _link_active(disabled, i, nbr, node_secure)
                    )
                    key = pol.rank_key(
                        route_class=int(kind),
                        length=route.length + 1,
                        secure=secure,
                        applies_secp=bool(node_secure[i] and breaks_ties[i]),
                        node=i,
                        next_hop=nbr,
                    )
                    if best_key is None or key < best_key:
                        best_key = key
                        best = _Route(kind, route.length + 1, secure, nbr)
            if best is None:
                if i in selected:
                    del selected[i]
                    changed = True
            elif selected.get(i) != best:
                selected[i] = best
                changed = True
        if not changed:
            return selected
    raise RuntimeError("per-link route selection did not converge")  # pragma: no cover


def utility_with_links(
    graph: ASGraph,
    node_secure: np.ndarray,
    breaks_ties: np.ndarray,
    isp: int,
    disabled_links: dict[int, set[int]] | None = None,
    model: UtilityModel = UtilityModel.INCOMING,
    policy: "str | RoutingPolicy" = "security_3rd",
) -> float:
    """Utility of ``isp`` with the given per-link configuration."""
    total = 0.0
    w = graph.weights
    for dest in range(graph.n):
        selection = routes_with_link_security(
            graph, dest, node_secure, breaks_ties, disabled_links,
            policy=policy,
        )
        for i, route in selection.items():
            if i == dest or i == isp:
                continue
            # does i's traffic pass through isp, and how does it enter?
            node = i
            entered_via_customer = False
            on_path = False
            hops = 0
            while node != dest and hops <= graph.n:
                hops += 1
                nxt = selection[node].next_hop
                if nxt == isp:
                    on_path = True
                    entered_via_customer = (
                        selection[node].route_class is RouteClass.PROVIDER
                    )
                    break
                node = nxt
            if not on_path:
                continue
            if model is UtilityModel.OUTGOING:
                # counts only toward destinations isp reaches via customers
                if selection.get(isp) and selection[isp].route_class is RouteClass.CUSTOMER:
                    total += float(w[i])
            elif entered_via_customer:
                total += float(w[i])
    return total


@dataclasses.dataclass(frozen=True)
class LinkDeploymentResult:
    """Best link subset found by brute force."""

    disabled: frozenset[int]   # neighbors toward which S*BGP is off
    utility: float
    evaluations: int


def best_link_deployment(
    graph: ASGraph,
    node_secure: np.ndarray,
    breaks_ties: np.ndarray,
    isp: int,
    model: UtilityModel = UtilityModel.INCOMING,
    neighbor_limit: int = 12,
    policy: "str | RoutingPolicy" = "security_3rd",
) -> LinkDeploymentResult:
    """Brute-force the utility-maximising set of links to secure.

    Exponential in the neighbor count (NP-hard in general, Thm J.1);
    refuses more than ``neighbor_limit`` neighbors.
    """
    neighbors = sorted(
        set(graph.customers[isp]) | set(graph.providers[isp]) | set(graph.peers[isp])
    )
    if len(neighbors) > neighbor_limit:
        raise ValueError(
            f"ISP has {len(neighbors)} neighbors; brute force capped at {neighbor_limit}"
        )
    best: LinkDeploymentResult | None = None
    evaluations = 0
    for r in range(len(neighbors) + 1):
        for combo in itertools.combinations(neighbors, r):
            evaluations += 1
            disabled = {isp: set(combo)}
            utility = utility_with_links(
                graph, node_secure, breaks_ties, isp, disabled, model,
                policy=policy,
            )
            if best is None or utility > best.utility:
                best = LinkDeploymentResult(
                    disabled=frozenset(combo),
                    utility=utility,
                    evaluations=evaluations,
                )
    assert best is not None
    return dataclasses.replace(best, evaluations=evaluations)
