"""The chicken gadget (App. K.5) and its oscillation (Thm 7.1)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation, Outcome
from repro.core.engine import compute_round_data
from repro.core.state import DeploymentState, StateDeriver
from repro.gadgets.oscillator import build_chicken
from repro.routing.cache import RoutingCache


@pytest.fixture(scope="module")
def chicken():
    net = build_chicken()
    cache = RoutingCache(net.graph)
    deriver = StateDeriver(net.graph, stub_breaks_ties=True, compiled=cache.compiled)
    return net, cache, deriver


def utilities_at(net, cache, deriver, on10, on20):
    g = net.graph
    ea = frozenset(g.index(a) for a in net.fixed_on)
    ups = []
    if on10:
        ups.append(g.index(net.node10))
    if on20:
        ups.append(g.index(net.node20))
    state = DeploymentState.initial(ea).with_flips(turn_on=ups)
    rd = compute_round_data(cache, deriver, state, UtilityModel.INCOMING)
    return float(rd.utilities[g.index(net.node10)]), float(rd.utilities[g.index(net.node20)])


class TestBiMatrix:
    """The four states must order like the chicken game of Table 5."""

    @pytest.fixture(scope="class")
    def matrix(self, chicken):
        net, cache, deriver = chicken
        return {
            (a, b): utilities_at(net, cache, deriver, a, b)
            for a, b in itertools.product((False, True), repeat=2)
        }

    def test_both_on_both_regret(self, matrix):
        u10_on, u20_on = matrix[(True, True)]
        assert matrix[(False, True)][0] > u10_on   # 10 gains by leaving
        assert matrix[(True, False)][1] > u20_on   # 20 gains by leaving

    def test_both_off_both_want_in(self, matrix):
        u10_off, u20_off = matrix[(False, False)]
        assert matrix[(True, False)][0] > u10_off
        assert matrix[(False, True)][1] > u20_off

    def test_anticoordination_states_stable(self, matrix):
        # (ON, OFF): neither player benefits from moving
        assert matrix[(True, False)][0] >= matrix[(False, False)][0]
        assert matrix[(True, False)][1] >= matrix[(True, True)][1]
        # (OFF, ON): same
        assert matrix[(False, True)][1] >= matrix[(False, False)][1]
        assert matrix[(False, True)][0] >= matrix[(True, True)][0]


class TestOscillation:
    def test_simultaneous_best_response_cycles(self, chicken):
        net, cache, deriver = chicken
        cfg = SimulationConfig(
            theta=0.0, utility_model=UtilityModel.INCOMING, max_rounds=30
        )
        sim = DeploymentSimulation(
            net.graph, net.fixed_on, cfg, cache, player_asns=list(net.players)
        )
        result = sim.run()
        assert result.outcome is Outcome.OSCILLATION
        ons = [set(r.turned_on) for r in result.rounds]
        offs = [set(r.turned_off) for r in result.rounds]
        g = net.graph
        both = {g.index(net.node10), g.index(net.node20)}
        assert ons[0] == both   # (OFF,OFF) -> both leap in
        assert offs[1] == both  # (ON,ON) -> both leap out

    def test_outgoing_model_does_not_oscillate(self, chicken):
        """Theorem 6.2 forbids oscillation under outgoing utility."""
        net, cache, _ = chicken
        cfg = SimulationConfig(
            theta=0.0, utility_model=UtilityModel.OUTGOING, max_rounds=30
        )
        sim = DeploymentSimulation(
            net.graph, net.fixed_on, cfg, cache, player_asns=list(net.players)
        )
        result = sim.run()
        assert result.outcome is Outcome.STABLE

    def test_build_rejects_small_m(self):
        with pytest.raises(ValueError):
            build_chicken(m=1.0, eps=1.0)
