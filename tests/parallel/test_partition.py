"""Tests for destination partitioning."""

from __future__ import annotations

import pytest

from repro.parallel.partition import chunk, partition


class TestPartition:
    def test_round_robin(self):
        parts = partition(list(range(7)), 3)
        assert parts == [[0, 3, 6], [1, 4], [2, 5]]

    def test_all_items_present_once(self):
        items = list(range(100))
        parts = partition(items, 7)
        flat = sorted(x for p in parts for x in p)
        assert flat == items

    def test_more_partitions_than_items(self):
        parts = partition([1, 2], 5)
        assert parts == [[1], [2]]

    def test_empty(self):
        assert partition([], 3) == []

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            partition([1], 0)


class TestChunk:
    def test_contiguous(self):
        assert chunk([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_exact_fit(self):
        assert chunk([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            chunk([1], 0)
