"""Per-link traffic loads and deployment-induced traffic shifts.

The paper's conclusion asks for tools that let ISPs "forecast how S*BGP
deployment will impact traffic patterns ... so they can provision their
networks appropriately."  This module computes exactly that signal:
aggregate per-link loads implied by the routing trees of a deployment
state, and the shift between two states.

A directed load ``load[(a, b)]`` is the total traffic-weight crossing
the edge from ``a`` toward ``b`` summed over all destinations (node
``a``'s own originated weight plus everything in its subtree).
"""

from __future__ import annotations

import dataclasses

from typing import TYPE_CHECKING

import numpy as np

from repro.routing.cache import RoutingCache

if TYPE_CHECKING:  # imported lazily at runtime to keep routing below core
    from repro.core.config import UtilityModel
    from repro.core.engine import RoundData
    from repro.core.state import DeploymentState, StateDeriver


def link_loads(rd: "RoundData", weights: np.ndarray) -> dict[tuple[int, int], float]:
    """Directed per-link loads for one resolved round.

    Keys are ``(node, next_hop)`` dense-index pairs; values sum the
    subtree weight plus the node's own weight over every destination
    whose tree uses that edge.
    """
    loads: dict[tuple[int, int], float] = {}
    for ds in rd.dest_states:
        choice = ds.tree.choice
        w = ds.weights
        for node in ds.dr.order:
            node = int(node)
            nxt = int(choice[node])
            if nxt < 0:
                continue
            key = (node, nxt)
            loads[key] = loads.get(key, 0.0) + float(w[node] + weights[node])
    return loads


@dataclasses.dataclass(frozen=True)
class TrafficShift:
    """How per-link loads moved between two deployment states."""

    num_links_before: int
    num_links_after: int
    total_load: float
    moved_load: float               # sum over links of |after - before| / 2
    links_changed: int              # links whose load moved more than tol
    new_links: int                  # carried traffic after but not before
    dropped_links: int

    @property
    def moved_fraction(self) -> float:
        """Fraction of total traffic that changed links."""
        return self.moved_load / self.total_load if self.total_load else 0.0


def traffic_shift(
    before: dict[tuple[int, int], float],
    after: dict[tuple[int, int], float],
    tolerance: float = 1e-9,
) -> TrafficShift:
    """Summarise the load difference between two link-load maps."""
    keys = set(before) | set(after)
    moved = 0.0
    changed = 0
    new = 0
    dropped = 0
    total = sum(before.values())
    for key in keys:
        b = before.get(key, 0.0)
        a = after.get(key, 0.0)
        diff = abs(a - b)
        if diff > tolerance:
            changed += 1
            moved += diff
        if b <= tolerance < a:
            new += 1
        if a <= tolerance < b:
            dropped += 1
    return TrafficShift(
        num_links_before=len(before),
        num_links_after=len(after),
        total_load=total,
        moved_load=moved / 2.0,
        links_changed=changed,
        new_links=new,
        dropped_links=dropped,
    )


def deployment_traffic_shift(
    cache: RoutingCache,
    deriver: "StateDeriver",
    state_before: "DeploymentState",
    state_after: "DeploymentState",
    model: "UtilityModel | None" = None,
) -> TrafficShift:
    """Loads before vs after a deployment change, in one call."""
    from repro.core.config import UtilityModel
    from repro.core.engine import compute_round_data

    model = model or UtilityModel.OUTGOING
    weights = cache.graph.weights
    rd_before = compute_round_data(cache, deriver, state_before, model)
    rd_after = compute_round_data(cache, deriver, state_after, model)
    return traffic_shift(
        link_loads(rd_before, weights), link_loads(rd_after, weights)
    )


def top_loaded_links(
    loads: dict[tuple[int, int], float], graph, k: int = 10
) -> list[tuple[int, int, float]]:
    """The ``k`` heaviest links as ``(asn_from, asn_to, load)``."""
    ranked = sorted(loads.items(), key=lambda item: -item[1])[:k]
    return [(graph.asn(a), graph.asn(b), load) for (a, b), load in ranked]
