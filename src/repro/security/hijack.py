"""Hijack simulation under partial S*BGP deployment.

The paper quantifies security only indirectly (fraction of secure
paths, Fig. 9) and flags attack-resilience quantification as future
work (§6.4), while §2.2.1 claims the end state is strong: today "an
arbitrary misbehaving AS can impact about half of the ASes in the
Internet (around 15K) on average [15]", whereas with full-ISP + simplex
deployment "the only open attack vector is for ISPs to announce false
paths to their own stub customers".

This module makes those claims measurable.  An attacker originates the
victim's prefix (an origin hijack), both announcements propagate under
the Appendix-A policies, and every AS picks a side:

- ASes applying SecP prefer a fully-secure route to the victim over
  the attacker's unsigned one (the hijack is *never* fully secure: the
  attacker cannot produce the victim's origination signature);
- everyone else decides on LP, path length and the hash tie-break —
  exactly how hijacks win today;
- optionally, the attacker's own *simplex stub customers* believe the
  attacker's announcements are secure (they cannot validate; §2.2.1's
  residual vector).

Routing is computed with a fixpoint propagation over both origins
(selection at each AS couples the two routes, so the single-origin
analytic passes do not apply).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.routing.policy import RouteClass, tie_hash
from repro.topology.graph import ASGraph

_EXPORT_OK = (RouteClass.CUSTOMER, RouteClass.SELF)


@dataclasses.dataclass(frozen=True)
class HijackOutcome:
    """Who ended up routing where for one (victim, attacker) pair."""

    victim: int
    attacker: int
    routes_to_attacker: np.ndarray  # bool[n], False for the principals
    reachable: np.ndarray           # bool[n], has any route to the prefix

    @property
    def num_fooled(self) -> int:
        """ASes whose traffic the attacker captured."""
        return int(self.routes_to_attacker.sum())

    def fraction_fooled(self, total: int | None = None) -> float:
        """Fooled ASes over the population (default: all other ASes)."""
        n = len(self.routes_to_attacker)
        denominator = total if total is not None else max(1, n - 2)
        return self.num_fooled / denominator


@dataclasses.dataclass(frozen=True)
class _Route:
    route_class: RouteClass
    length: int
    to_attacker: bool
    secure: bool          # fully-secure chain back to the (claimed) origin
    next_hop: int


def simulate_hijack(
    graph: ASGraph,
    victim: int,
    attacker: int,
    node_secure: np.ndarray | None = None,
    breaks_ties: np.ndarray | None = None,
    attacker_convinces_own_stubs: bool = True,
    drop_unvalidated: bool = False,
    max_sweeps: int = 10_000,
) -> HijackOutcome:
    """Propagate victim + attacker originations and report the split.

    ``victim`` / ``attacker`` are dense node indices.  ``node_secure``
    and ``breaks_ties`` are the usual deployment-state flags; with both
    None the world is today's insecure BGP.

    The attacker's announcement is treated as insecure by every
    validating AS (it cannot be signed end-to-end), except — when
    ``attacker_convinces_own_stubs`` — at the attacker's simplex stub
    customers, who cannot validate and accept their provider's word
    (§2.2.1).

    By default security acts only through the SecP *tie-break*, as in
    the deployment model: a strictly shorter or better-class false
    route still wins.  ``drop_unvalidated=True`` models the paper's
    §2.2.1 end-state argument instead: fully-validating ASes (secure
    non-stubs) *reject* routes that are not fully secure.  That is only
    deployable once everything legitimate is signed — under partial
    deployment it disconnects honest ASes, which is exactly the
    BGP/S*BGP-coexistence hazard §1.4(5) warns about (the ``reachable``
    mask exposes it).
    """
    n = graph.n
    if node_secure is None:
        node_secure = np.zeros(n, dtype=bool)
    if breaks_ties is None:
        breaks_ties = np.zeros(n, dtype=bool)
    if victim == attacker:
        raise ValueError("victim and attacker must differ")

    selected: dict[int, _Route] = {
        victim: _Route(RouteClass.SELF, 0, False, bool(node_secure[victim]), victim),
        attacker: _Route(RouteClass.SELF, 0, True, False, attacker),
    }
    from repro.topology.relationships import ASRole

    roles = graph.roles
    gullible_stubs: set[int] = set()
    if attacker_convinces_own_stubs:
        gullible_stubs = {
            c for c in graph.customers[attacker]
            if roles[c] == int(ASRole.STUB) and node_secure[c]
        }
    # validators = full (non-simplex) S*BGP deployments
    validators = node_secure & (roles != int(ASRole.STUB))

    def offer(i: int, nbr: int, kind: RouteClass) -> _Route | None:
        route = selected.get(nbr)
        if route is None:
            return None
        if kind is not RouteClass.PROVIDER and route.route_class not in _EXPORT_OK:
            return None
        if drop_unvalidated and validators[i] and not route.secure:
            # end-state filtering: reject what cannot be validated,
            # unless this is the gullible-stub vector (stubs are not
            # validators, so only `i == attacker's stub` is exempt and
            # that case never reaches here).
            return None
        return route

    def rank(i: int, nbr: int, route: _Route) -> tuple:
        secure_pref = 0
        if node_secure[i] and breaks_ties[i]:
            seen_secure = route.secure or (
                route.to_attacker and nbr == attacker and i in gullible_stubs
            )
            secure_pref = 0 if seen_secure else 1
        return (-int(_class_for(i, nbr)), route.length + 1, secure_pref,
                tie_hash(i, nbr), nbr)

    index_class: dict[tuple[int, int], RouteClass] = {}

    def _class_for(i: int, nbr: int) -> RouteClass:
        key = (i, nbr)
        cls = index_class.get(key)
        if cls is None:
            if nbr in graph.customers[i]:
                cls = RouteClass.CUSTOMER
            elif nbr in graph.peers[i]:
                cls = RouteClass.PEER
            else:
                cls = RouteClass.PROVIDER
            index_class[key] = cls
        return cls

    for _ in range(max_sweeps):
        changed = False
        for i in range(n):
            if i == victim or i == attacker:
                continue
            best_key: tuple | None = None
            best: _Route | None = None
            for kind, neighbors in (
                (RouteClass.CUSTOMER, graph.customers[i]),
                (RouteClass.PEER, graph.peers[i]),
                (RouteClass.PROVIDER, graph.providers[i]),
            ):
                for nbr in neighbors:
                    route = offer(i, nbr, kind)
                    if route is None:
                        continue
                    key = rank(i, nbr, route)
                    if best_key is None or key < best_key:
                        best_key = key
                        secure = bool(
                            node_secure[i]
                            and (route.secure
                                 or (route.to_attacker and nbr == attacker
                                     and i in gullible_stubs))
                        )
                        best = _Route(kind, route.length + 1,
                                      route.to_attacker, secure, nbr)
            if best is None:
                if i in selected:
                    del selected[i]
                    changed = True
            elif selected.get(i) != best:
                selected[i] = best
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - policies converge
        raise RuntimeError("hijack simulation did not converge")

    to_attacker = np.zeros(n, dtype=bool)
    reachable = np.zeros(n, dtype=bool)
    for i, route in selected.items():
        reachable[i] = True
        if i not in (victim, attacker):
            to_attacker[i] = route.to_attacker
    return HijackOutcome(
        victim=victim,
        attacker=attacker,
        routes_to_attacker=to_attacker,
        reachable=reachable,
    )
