"""Deterministic fault injection for exercising the resilience layer.

:class:`FaultInjector` is a picklable map function that misbehaves on
chosen items — raising, hanging, or SIGKILLing its own process — a
configurable number of times before succeeding.  Encounters are
counted in a shared directory (one ``O_EXCL``-created marker file per
encounter), so the count survives worker death and process restarts:
"fail the first two times item 7 is attempted, anywhere" is expressible
and exactly reproducible.
"""

from __future__ import annotations

import itertools
import os
import signal
import time
from pathlib import Path
from typing import Callable, Collection


# Deliberately NOT in errors.py: this is a test instrument, not part of
# the error contract callers handle — keeping it beside its injector
# stops production code from importing it by accident.
class FaultInjected(RuntimeError):  # repro-lint: disable=RPR008
    """The exception :class:`FaultInjector` raises in ``raise`` mode."""


def _identity(item):
    return item


class FaultInjector:
    """Map function wrapper that injects faults on chosen items.

    Parameters
    ----------
    bad_items:
        Items (compared by ``repr``) that trigger the fault.
    mode:
        ``"raise"`` (raise :class:`FaultInjected`), ``"kill"``
        (``SIGKILL`` the current process — simulates a crashed worker),
        or ``"hang"`` (sleep ``hang_seconds`` — simulates a wedged
        worker, to be reaped by a partition timeout).
    fail_times:
        Fault only the first N encounters of each bad item (requires
        ``state_dir``); ``None`` means fault every time.
    state_dir:
        Directory for cross-process encounter counters.
    only_in_worker:
        Fault only when running in a process other than the one that
        constructed the injector — lets a test prove the engine's
        serial in-parent fallback succeeds where every worker failed.
    fn:
        The real work (default: identity).  Must itself be picklable.
    """

    def __init__(
        self,
        bad_items: Collection[object],
        mode: str = "raise",
        fail_times: int | None = None,
        state_dir: str | Path | None = None,
        hang_seconds: float = 30.0,
        only_in_worker: bool = False,
        fn: Callable = _identity,
    ):
        if mode not in ("raise", "kill", "hang"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if fail_times is not None and state_dir is None:
            raise ValueError("fail_times requires a state_dir for counters")
        self.bad_reprs = frozenset(repr(i) for i in bad_items)
        self.mode = mode
        self.fail_times = fail_times
        self.state_dir = None if state_dir is None else str(state_dir)
        self.hang_seconds = hang_seconds
        self.only_in_worker = only_in_worker
        self.home_pid = os.getpid()
        self.fn = fn

    def __call__(self, item):
        if self._should_fault(item):
            if self.mode == "raise":
                raise FaultInjected(f"injected fault on {item!r}")
            if self.mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(self.hang_seconds)
        return self.fn(item)

    def _should_fault(self, item) -> bool:
        if repr(item) not in self.bad_reprs:
            return False
        if self.only_in_worker and os.getpid() == self.home_pid:
            return False
        if self.fail_times is None:
            return True
        return self._claim_encounter(item) < self.fail_times

    def _claim_encounter(self, item) -> int:
        """Atomically claim the next encounter slot for ``item``.

        Marker files make the counter shared across processes and
        robust to any of them dying mid-count.
        """
        safe = repr(item).replace(os.sep, "_")
        for n in itertools.count():
            marker = os.path.join(self.state_dir, f"{safe}.{n}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return n
