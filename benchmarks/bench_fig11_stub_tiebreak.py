"""Figure 11: stubs need not break ties on security (§6.7).

Paper: adoption outcomes are nearly identical whether simplex stubs
apply SecP or ignore security entirely, because stubs have tiny
tiebreak sets and transit no traffic.  Shape: the two curves coincide
to within a few percent.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.sweeps import stub_tiebreak_comparison


def test_fig11_stub_tiebreak_insensitivity(benchmark, env, capsys):
    sets = {"cps+top-5": env.adopter_sets()["cps+top-5"]}

    comparison = benchmark.pedantic(
        lambda: stub_tiebreak_comparison(env, thetas=(0.05, 0.30), adopter_sets=sets),
        rounds=1, iterations=1,
    )
    rows = []
    for theta_idx, theta in enumerate((0.05, 0.30)):
        with_stub = comparison[True][theta_idx]
        without = comparison[False][theta_idx]
        rows.append([
            f"{theta:.2f}",
            f"{with_stub.fraction_secure_ases:.3f}",
            f"{without.fraction_secure_ases:.3f}",
            f"{abs(with_stub.fraction_secure_ases - without.fraction_secure_ases):.3f}",
        ])
    with capsys.disabled():
        print()
        print(format_table(
            ["theta", "stubs break ties", "stubs ignore security", "|diff|"],
            rows, title="Fig 11: sensitivity to stub tie-breaking",
        ))
    for row in rows:
        assert float(row[3]) < 0.15
