"""Figure 3: ASes and ISPs deploying S*BGP per round (§5.2).

Paper (36K ASes, theta=5%, CPs+top-5 Tier-1s): ~5K ASes secure after
round 1 (548 ISPs plus their simplex stubs), hundreds of ISPs per round
afterwards, tapering to stability with 85% of ASes secure.  Shape: a
large first-round surge dominated by simplex stubs, decaying adoption,
majority secure at termination.
"""

from __future__ import annotations

from benchmarks.conftest import case_study_report
from repro.experiments.report import format_series


def test_fig03_adoption_per_round(benchmark, env, capsys):
    report = benchmark.pedantic(
        lambda: case_study_report(env), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print("Fig 3: deployment per round (case study, theta=5%)")
        print("  " + format_series("newly secure ASes", report.fig3_new_ases, "{:d}"))
        print("  " + format_series("adopting ISPs    ", report.fig3_new_isps, "{:d}"))
        print(f"  final: {report.fraction_secure_ases:.1%} of ASes secure "
              f"after {report.result.num_rounds} rounds "
              f"(paper: 85% after ~28 rounds at 36K scale)")
    assert report.fig3_new_ases[0] >= report.fig3_new_isps[0]
    assert report.fraction_secure_ases > 0.5
