"""Attack scenarios and deployment strategies, as pluggable registries.

PR 4 made the routing *ranking* a first-class value; this module does
the same for the *threat model* and for the *path to deployment*, so
the attack × policy × deployment-strategy matrix (Lychev et al., "Is
the Juice Worth the Squeeze?"; Barrett et al., "Ain't How You Deploy",
arXiv 2408.15970 — both in PAPERS.md) is spanned by three registries
instead of hardcoded special cases.

An :class:`AttackScenario` is a frozen description of what the attacker
announces and who can tell:

- ``origin_hijack``    the attacker originates the victim's exact
  prefix (the §2.2.1 baseline — both announcements compete everywhere);
- ``subprefix_hijack`` the attacker originates a *more-specific*
  prefix: longest-prefix match means the victim's covering announcement
  never competes (``victim_originates=False``), and ROV-capable
  validators drop the invalid announcement outright
  (``validators_drop=True``);
- ``route_leak``       the attacker picks its route to the victim
  honestly but re-exports it to *every* neighbor in violation of GR2
  (``attacker_leaks=True``); path signatures still verify, so S*BGP
  cannot reject it — the interception is visible only as traffic
  through the attacker;
- ``forged_origin``    the attacker prepends the victim's AS so origin
  validation passes, at the cost of one extra hop
  (``attacker_path_offset=1``); only full path validation (the
  ``drop_unvalidated`` end state) catches it.

Every scenario carries the §2.2.1 simplex-stub residual vector
(``gullible_stubs``): the attacker's own simplex stub customers cannot
validate and accept their provider's word.

Construction and registry mutation are confined to this module (lint
rule RPR014): journal resume guards, job-spec digests and telemetry
labels all key on registered names, so an anonymous scenario built
elsewhere would be invisible to provenance checks — resolve scenarios
via :func:`get_scenario` / :func:`available_scenarios` instead.

A :class:`DeploymentStrategy` answers "who is secure at deployment
level f?" and unifies the static orderings of
:mod:`repro.core.adopters` with the market-driven dynamics:

- ``top_isp_first``  ISPs deploy in descending degree order (the
  paper's Tier-1-first heuristic, §5/§6);
- ``random``         ISPs deploy in a seeded uniform order (Fig. 8's
  weak baseline);
- ``stub_first``     stubs deploy first (as deliberate simplex
  adopters), then ISPs by ascending degree — the adversarial inversion
  of ``top_isp_first``;
- ``market_rounds``  states are replayed from a
  :class:`~repro.core.dynamics.DeploymentSimulation` run's round
  snapshots: level f maps to the earliest round whose secure fraction
  reaches f (the paper's own §3 dynamics as a deployment path).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.core.state import DeploymentState

if TYPE_CHECKING:  # pragma: no cover - cycle: dynamics imports routing
    from repro.routing.cache import RoutingCache
    from repro.topology.graph import ASGraph


# -- attack scenarios ----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AttackScenario:
    """One threat model: what is announced, and who can tell.

    ``victim_originates``
        the victim's legitimate announcement competes with the
        attacker's (False models longest-prefix-match capture by a
        more-specific announcement);
    ``attacker_originates``
        the attacker injects its own origination (False for leaks,
        where the attacker re-exports an honestly selected route);
    ``attacker_path_offset``
        extra hops on the attacker's announced path (1 for forged
        origin: the claimed path already contains the victim);
    ``attacker_leaks``
        the attacker exports its selected route to every neighbor,
        ignoring GR2;
    ``validators_drop``
        fully-validating ASes (secure non-stubs) reject the attack
        route outright even in tie-break mode (ROV semantics for
        invalid more-specifics);
    ``gullible_stubs``
        the attacker's simplex stub customers believe its announcements
        are secure (§2.2.1's residual vector; overridable per call).
    """

    name: str
    description: str
    paper_ref: str = ""
    victim_originates: bool = True
    attacker_originates: bool = True
    attacker_path_offset: int = 0
    attacker_leaks: bool = False
    validators_drop: bool = False
    gullible_stubs: bool = True

    def __post_init__(self) -> None:
        if not self.attacker_originates and not self.attacker_leaks:
            raise ValueError(
                f"scenario {self.name!r} gives the attacker nothing to do: "
                "set attacker_originates or attacker_leaks"
            )
        if self.attacker_path_offset < 0:
            raise ValueError(
                f"attacker_path_offset must be >= 0, got {self.attacker_path_offset}"
            )


_SCENARIOS: dict[str, AttackScenario] = {}
_SCENARIO_ALIASES: dict[str, str] = {}

#: canonical name of the §2.2.1 baseline scenario
DEFAULT_SCENARIO = "origin_hijack"


def register_scenario(
    scenario: AttackScenario, aliases: Iterable[str] = ()
) -> AttackScenario:
    """Add ``scenario`` to the registry (idempotent for identical entries)."""
    existing = _SCENARIOS.get(scenario.name)
    if existing is not None and existing != scenario:
        raise ValueError(
            f"scenario {scenario.name!r} already registered differently"
        )
    _SCENARIOS[scenario.name] = scenario
    for alias in aliases:
        target = _SCENARIO_ALIASES.get(alias)
        if target is not None and target != scenario.name:
            raise ValueError(f"alias {alias!r} already points at {target!r}")
        _SCENARIO_ALIASES[alias] = scenario.name
    return scenario


def get_scenario(scenario: "str | AttackScenario") -> AttackScenario:
    """Resolve a scenario name (or alias, or scenario object)."""
    if isinstance(scenario, AttackScenario):
        return scenario
    name = _SCENARIO_ALIASES.get(scenario, scenario)
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown attack scenario {scenario!r}; choose from "
            f"{available_scenarios()}"
        ) from None


def available_scenarios() -> list[str]:
    """Canonical names of every registered scenario, sorted."""
    return sorted(_SCENARIOS)


def scenario_table() -> list[tuple[str, str, str]]:
    """``(name, paper_ref, description)`` rows for docs and ``--help``."""
    return [
        (s.name, s.paper_ref, s.description)
        for s in (_SCENARIOS[k] for k in available_scenarios())
    ]


ORIGIN_HIJACK = register_scenario(
    AttackScenario(
        name="origin_hijack",
        description="attacker originates the victim's exact prefix",
        paper_ref="§2.2.1",
    ),
    aliases=("hijack", "prefix_hijack"),
)

register_scenario(
    AttackScenario(
        name="subprefix_hijack",
        description="more-specific announcement; ROV validators drop it",
        paper_ref="§2.2.1 / RFC 6811",
        victim_originates=False,
        validators_drop=True,
    ),
    aliases=("subprefix",),
)

register_scenario(
    AttackScenario(
        name="route_leak",
        description="honestly selected route re-exported against GR2",
        paper_ref="Lychev et al. / RFC 7908",
        attacker_originates=False,
        attacker_leaks=True,
    ),
    aliases=("leak",),
)

register_scenario(
    AttackScenario(
        name="forged_origin",
        description="path-shortening forgery: origin checks pass, one hop longer",
        paper_ref="Lychev et al. §2",
        attacker_path_offset=1,
    ),
    aliases=("path_shortening",),
)


# -- deployment strategies ----------------------------------------------

#: a strategy builder: ``(graph, levels, **context) -> [(level, state)]``
StrategyBuilder = Callable[..., "list[tuple[float, DeploymentState]]"]


@dataclasses.dataclass(frozen=True)
class DeploymentStrategy:
    """A named answer to "who has deployed at level ``f``?".

    ``builder`` maps deployment levels in ``[0, 1]`` to
    :class:`~repro.core.state.DeploymentState` values; it is excluded
    from equality so registry idempotence keys on the metadata.
    """

    name: str
    description: str
    paper_ref: str = ""
    builder: StrategyBuilder = dataclasses.field(
        default=None, compare=False, repr=False  # type: ignore[arg-type]
    )

    def states(
        self,
        graph: "ASGraph",
        levels: Iterable[float],
        *,
        seed: int = 0,
        theta: float = 0.05,
        cache: "RoutingCache | None" = None,
        adopters: Iterable[int] | None = None,
        max_rounds: int = 40,
    ) -> list[tuple[float, DeploymentState]]:
        """``(level, state)`` per requested level (levels preserved).

        ``seed`` feeds the ``random`` ordering; ``theta`` / ``cache`` /
        ``adopters`` / ``max_rounds`` parameterise the
        ``market_rounds`` replay and are ignored by static orderings.
        """
        levels = [float(f) for f in levels]
        for f in levels:
            if not 0.0 <= f <= 1.0:
                raise ValueError(f"deployment level must be in [0, 1], got {f}")
        return self.builder(
            graph, levels, seed=seed, theta=theta, cache=cache,
            adopters=adopters, max_rounds=max_rounds,
        )


_STRATEGIES: dict[str, DeploymentStrategy] = {}

#: canonical name of the paper's Tier-1-first heuristic
DEFAULT_STRATEGY = "top_isp_first"


def register_strategy(strategy: DeploymentStrategy) -> DeploymentStrategy:
    """Add ``strategy`` to the registry (idempotent for equal metadata)."""
    existing = _STRATEGIES.get(strategy.name)
    if existing is not None and existing != strategy:
        raise ValueError(
            f"deployment strategy {strategy.name!r} already registered differently"
        )
    _STRATEGIES[strategy.name] = strategy
    return strategy


def get_strategy(strategy: "str | DeploymentStrategy") -> DeploymentStrategy:
    """Resolve a strategy name (or strategy object) to the object."""
    if isinstance(strategy, DeploymentStrategy):
        return strategy
    try:
        return _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown deployment strategy {strategy!r}; choose from "
            f"{available_strategies()}"
        ) from None


def available_strategies() -> list[str]:
    """Canonical names of every registered strategy, sorted."""
    return sorted(_STRATEGIES)


def strategy_table() -> list[tuple[str, str, str]]:
    """``(name, paper_ref, description)`` rows for docs and ``--help``."""
    return [
        (s.name, s.paper_ref, s.description)
        for s in (_STRATEGIES[k] for k in available_strategies())
    ]


def _states_from_order(
    order: list[int], levels: list[float]
) -> list[tuple[float, DeploymentState]]:
    """Prefixes of a fixed deployment order, one per level."""
    out = []
    for f in levels:
        k = math.ceil(f * len(order))
        out.append((f, DeploymentState.initial(order[:k])))
    return out


def _degree_ranked_isps(graph: "ASGraph", descending: bool) -> list[int]:
    from repro.topology.stats import degree_array

    degrees = degree_array(graph)
    sign = -1 if descending else 1
    return sorted(
        (int(i) for i in graph.isp_indices),
        key=lambda i: (sign * int(degrees[i]), i),
    )


def _top_isp_first(graph, levels, *, seed, **_):
    return _states_from_order(_degree_ranked_isps(graph, descending=True), levels)


def _random_order(graph, levels, *, seed, **_):
    order = [int(i) for i in graph.isp_indices]
    random.Random(seed).shuffle(order)
    return _states_from_order(order, levels)


def _stub_first(graph, levels, *, seed, **_):
    from repro.topology.relationships import ASRole

    stubs = [int(i) for i in np.flatnonzero(graph.roles == int(ASRole.STUB))]
    order = stubs + _degree_ranked_isps(graph, descending=False)
    return _states_from_order(order, levels)


def _market_rounds(graph, levels, *, seed, theta, cache, adopters, max_rounds, **_):
    """Replay :class:`DeploymentSimulation` snapshots as deployment levels.

    Level f maps to the state *entering* the earliest round whose
    secure fraction reaches ``f * (final secure fraction)`` — the
    market never reaches literal 100%, so levels are relative to where
    the dynamics actually end up; level 1.0 is the final state.
    """
    from repro.core.config import SimulationConfig
    from repro.core.dynamics import DeploymentSimulation
    from repro.topology.stats import top_by_degree

    if adopters is None:
        adopters = top_by_degree(graph, 5)
    policy = cache.policy_name if cache is not None else "security_3rd"
    config = SimulationConfig(theta=theta, max_rounds=max_rounds, policy=policy)
    result = DeploymentSimulation(graph, adopters, config, cache).run()
    final_secure = max(1, int(result.final_node_secure.sum()))
    snapshots = [
        (r.num_secure_ases / final_secure, r.state) for r in result.rounds
    ]
    snapshots.append((1.0, result.final_state))
    out = []
    for f in levels:
        state = next((s for reached, s in snapshots if reached >= f),
                     result.final_state)
        out.append((f, state))
    return out


register_strategy(
    DeploymentStrategy(
        name="top_isp_first",
        description="ISPs deploy in descending degree order (Tier-1s first)",
        paper_ref="§5-6",
        builder=_top_isp_first,
    )
)

register_strategy(
    DeploymentStrategy(
        name="random",
        description="ISPs deploy in a seeded uniform random order",
        paper_ref="Fig. 8",
        builder=_random_order,
    )
)

register_strategy(
    DeploymentStrategy(
        name="stub_first",
        description="stubs deploy first, then ISPs by ascending degree",
        paper_ref="Barrett et al. (arXiv 2408.15970)",
        builder=_stub_first,
    )
)

register_strategy(
    DeploymentStrategy(
        name="market_rounds",
        description="states replayed from the market dynamics' round snapshots",
        paper_ref="§3.2-3.3",
        builder=_market_rounds,
    )
)
