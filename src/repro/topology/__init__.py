"""AS-level topology substrate: graph, generator, augmentation, I/O."""

from repro.topology.augment import AugmentationReport, augment_cp_peering, mean_cp_path_length
from repro.topology.evolution import (
    EpochRecord,
    EvolutionConfig,
    EvolvingDeployment,
    evolve_graph,
)
from repro.topology.errors import (
    DuplicateASError,
    DuplicateEdgeError,
    GraphFormatError,
    GraphValidationError,
    RelationshipCycleError,
    TopologyError,
    UnknownASError,
)
from repro.topology.generator import GeneratedTopology, TopologyConfig, generate_topology
from repro.topology.preflight import (
    PREFLIGHT_MODES,
    PreflightIssue,
    PreflightReport,
    preflight_as_rel,
    preflight_as_rel_text,
)
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole, Relationship
from repro.topology.serialization import dump_as_rel, dumps_as_rel, load_as_rel, loads_as_rel
from repro.topology.stats import (
    GraphSummary,
    degree_array,
    degree_distribution,
    multihomed_stub_fraction,
    stub_customer_counts,
    summarize,
    top_by_degree,
)
from repro.topology.traffic import apply_traffic_model, content_provider_weight, traffic_fraction_of

__all__ = [
    "ASGraph",
    "ASRole",
    "AugmentationReport",
    "DuplicateASError",
    "DuplicateEdgeError",
    "EpochRecord",
    "EvolutionConfig",
    "EvolvingDeployment",
    "GeneratedTopology",
    "GraphFormatError",
    "GraphSummary",
    "GraphValidationError",
    "PREFLIGHT_MODES",
    "PreflightIssue",
    "PreflightReport",
    "Relationship",
    "RelationshipCycleError",
    "TopologyConfig",
    "TopologyError",
    "UnknownASError",
    "apply_traffic_model",
    "augment_cp_peering",
    "content_provider_weight",
    "degree_array",
    "degree_distribution",
    "dump_as_rel",
    "dumps_as_rel",
    "evolve_graph",
    "generate_topology",
    "load_as_rel",
    "loads_as_rel",
    "mean_cp_path_length",
    "multihomed_stub_fraction",
    "preflight_as_rel",
    "preflight_as_rel_text",
    "stub_customer_counts",
    "summarize",
    "top_by_degree",
    "traffic_fraction_of",
]
