"""Reading and writing AS graphs in the CAIDA ``as-rel`` format.

The paper's empirical substrate (Cyclops + IXP edges) is distributed in
the standard ``as-rel`` line format::

    # comment lines start with '#'
    <as-a>|<as-b>|-1      # a is a provider of b
    <as-a>|<as-b>|0       # a and b are peers

This module reads and writes that format so real CAIDA / Cyclops
snapshots can be dropped in for the synthetic generator.  Content
providers are not part of the format, so they are passed separately (or
embedded in a ``# cp: <asn>`` comment extension that :func:`load_as_rel`
understands).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from repro.runtime.atomic import atomic_write_text
from repro.topology.errors import GraphFormatError
from repro.topology.graph import ASGraph
from repro.topology.relationships import (
    CAIDA_PEER_TO_PEER,
    CAIDA_PROVIDER_TO_CUSTOMER,
    Relationship,
)


def source_origin(source: str | Path | TextIO) -> str:
    """Human-readable name of an as-rel source (for error messages)."""
    if isinstance(source, (str, Path)):
        return str(source)
    return str(getattr(source, "name", "<stream>"))


def load_as_rel(
    source: str | Path | TextIO,
    cp_asns: Iterable[int] = (),
    preflight: str | None = None,
) -> ASGraph:
    """Load an AS graph from an ``as-rel`` file, path, or file object.

    ``# cp: <asn>`` comment lines mark content providers; explicit
    ``cp_asns`` are unioned with any found in the file.

    Parse errors raise :class:`~repro.topology.errors.GraphFormatError`
    naming the source and line (``<file>:<line>: ...``).  With
    ``preflight`` set to a :mod:`repro.topology.preflight` mode
    (``"strict"``, ``"repair"``, or ``"report"``), the source is instead
    run through full validation — duplicate/conflicting edges,
    self-loops, provider cycles, disconnected components — before the
    graph is returned.
    """
    if preflight is not None:
        from repro.topology.preflight import preflight_as_rel

        graph, _report = preflight_as_rel(source, cp_asns, mode=preflight)
        return graph
    close = False
    if isinstance(source, (str, Path)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close = True
    else:
        fh = source
    try:
        return _parse(fh, set(cp_asns), origin=source_origin(source))
    finally:
        if close:
            fh.close()


def loads_as_rel(
    text: str, cp_asns: Iterable[int] = (), preflight: str | None = None
) -> ASGraph:
    """Load an AS graph from an ``as-rel`` string."""
    return load_as_rel(io.StringIO(text), cp_asns, preflight=preflight)


def _parse(fh: TextIO, cps: set[int], origin: str = "<stream>") -> ASGraph:
    edges: list[tuple[int, int, int]] = []
    for lineno, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.lower().startswith("cp:"):
                try:
                    cps.add(int(body[3:].strip()))
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{origin}:{lineno}: bad cp marker {line!r}"
                    ) from exc
            continue
        parts = line.split("|")
        if len(parts) < 3:
            raise GraphFormatError(
                f"{origin}:{lineno}: expected a|b|rel, got {line!r}"
            )
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise GraphFormatError(
                f"{origin}:{lineno}: non-integer field in {line!r}"
            ) from exc
        if rel not in (CAIDA_PROVIDER_TO_CUSTOMER, CAIDA_PEER_TO_PEER):
            raise GraphFormatError(
                f"{origin}:{lineno}: unknown relationship {rel}"
            )
        edges.append((a, b, rel))

    graph = ASGraph(cp_asns=cps)
    for a, b, rel in edges:
        graph.ensure_as(a)
        graph.ensure_as(b)
        if rel == CAIDA_PROVIDER_TO_CUSTOMER:
            graph.add_customer_provider(provider=a, customer=b)
        else:
            graph.add_peering(a, b)
    for asn in cps:
        graph.ensure_as(asn)
    return graph


def dump_as_rel(graph: ASGraph, target: str | Path | TextIO) -> None:
    """Write an AS graph in ``as-rel`` format (with ``# cp:`` markers).

    Path targets are written atomically (temp + fsync + replace): a
    crash mid-dump leaves the previous snapshot intact, never a torn
    half-graph that would parse as a smaller topology.
    """
    if isinstance(target, (str, Path)):
        atomic_write_text(target, dumps_as_rel(graph))
    else:
        target.write(dumps_as_rel(graph))


def dumps_as_rel(graph: ASGraph) -> str:
    """Serialize an AS graph to an ``as-rel`` string."""
    buf = io.StringIO()
    buf.write("# as-rel written by repro.topology.serialization\n")
    for asn in sorted(graph.cp_asns):
        buf.write(f"# cp: {asn}\n")
    for a, b, rel in graph.edges():
        code = CAIDA_PROVIDER_TO_CUSTOMER if rel is Relationship.CUSTOMER else CAIDA_PEER_TO_PEER
        buf.write(f"{a}|{b}|{code}\n")
    return buf.getvalue()
