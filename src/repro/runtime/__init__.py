"""Resilience layer: atomic persistence, run journals, retry policy.

The paper's 200-node DryadLINQ cluster restarted failed workers and
re-ran failed partitions for free; this package is the laptop-scale
equivalent.  Long computations journal their completed units
(:class:`RunJournal`), every file write is atomic and checksummed
(:mod:`repro.runtime.atomic`), worker failure is retried under a
:class:`RetryPolicy`, and :mod:`repro.runtime.faults` makes all of it
deterministically testable.
"""

from repro.runtime.atomic import (
    atomic_write_json,
    atomic_write_text,
    checksum_payload,
    load_checked_json,
    parse_checked_json,
)
from repro.runtime.errors import (
    CorruptFileError,
    DeadlineExceeded,
    ItemFailedError,
    JournalCorruptError,
    JournalError,
    JournalMismatchError,
    MemoryBudgetExceeded,
    PersistenceError,
    SchemaError,
)
from repro.runtime.faults import FaultInjected, FaultInjector
from repro.runtime.guard import (
    LADDER_RUNGS,
    NULL_GUARD,
    Deadline,
    DegradationLadder,
    MemoryBudget,
    RuntimeGuard,
    current_guard,
    parse_size,
    use_guard,
)
from repro.runtime.journal import JOURNAL_FORMAT, RunJournal, coerce_journal
from repro.runtime.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "JOURNAL_FORMAT",
    "LADDER_RUNGS",
    "NULL_GUARD",
    "CorruptFileError",
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "FaultInjected",
    "FaultInjector",
    "ItemFailedError",
    "JournalCorruptError",
    "JournalError",
    "JournalMismatchError",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "PersistenceError",
    "RetryPolicy",
    "RunJournal",
    "RuntimeGuard",
    "SchemaError",
    "current_guard",
    "parse_size",
    "use_guard",
    "atomic_write_json",
    "atomic_write_text",
    "checksum_payload",
    "coerce_journal",
    "load_checked_json",
    "parse_checked_json",
]
