"""Differential pin: batched multi-origin kernel vs the scalar reference.

Every (scenario, policy) combination must produce bit-identical
outcomes from :func:`simulate_attacks_batched` and the per-pair scalar
:func:`simulate_hijack`, on a seeded synthetic topology and on the
adversarial gadget graphs (the CHICKEN oscillator of App. F and the
Chiesa-style SET-COVER reduction of App. E).  Non-convergence must be
symmetric too: if any scalar pair oscillates, the batch raises.

A hypothesis pass then sweeps random GR1 graphs × random deployment
masks for the same agreement.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gadgets.hardness import SetCoverInstance, build_set_cover_network
from repro.gadgets.oscillator import build_chicken
from repro.routing import backends as kernel_backends
from repro.routing.policy import available_policies
from repro.routing.reference import ConvergenceError
from repro.security.hijack import simulate_attacks_batched, simulate_hijack
from repro.security.metrics import sample_pairs
from repro.security.scenarios import available_scenarios
from repro.topology.generator import generate_topology

from tests.strategies import graphs_with_security

SCENARIOS = available_scenarios()
POLICIES = available_policies()


def _mask(n: int, fraction: float, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random(n) < fraction


def _scalar_outcomes(graph, pairs, node_secure, breaks, scenario, policy):
    out = []
    for victim, attacker in pairs:
        try:
            out.append(simulate_hijack(
                graph, victim, attacker, node_secure, breaks,
                scenario=scenario, policy=policy,
            ))
        except ConvergenceError:
            out.append(None)
    return out


def _assert_bit_identical(
    graph, pairs, node_secure, breaks, scenario, policy, backend=None
):
    reference = _scalar_outcomes(
        graph, pairs, node_secure, breaks, scenario, policy
    )
    if any(o is None for o in reference):
        with pytest.raises(ConvergenceError):
            simulate_attacks_batched(
                graph, pairs, node_secure, breaks,
                scenario=scenario, policy=policy, backend=backend,
            )
        return
    batched = simulate_attacks_batched(
        graph, pairs, node_secure, breaks,
        scenario=scenario, policy=policy, backend=backend,
    )
    assert len(batched) == len(reference)
    for ref, got in zip(reference, batched):
        context = (scenario, policy, ref.victim, ref.attacker)
        assert (got.victim, got.attacker) == (ref.victim, ref.attacker)
        assert np.array_equal(
            got.routes_to_attacker, ref.routes_to_attacker
        ), context
        assert np.array_equal(got.reachable, ref.reachable), context
        assert got.scenario == ref.scenario
        assert got.policy == ref.policy


@pytest.fixture(scope="module")
def seeded_graph():
    return generate_topology(n=60, seed=11).graph


@pytest.fixture(scope="module")
def chicken_graph():
    return build_chicken().graph


@pytest.fixture(scope="module")
def set_cover_graph():
    instance = SetCoverInstance(
        universe=(1, 2, 3, 4),
        subsets=(frozenset({1, 2}), frozenset({3, 4}), frozenset({2, 3})),
        k=2,
    )
    return build_set_cover_network(instance).graph


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("scenario", SCENARIOS)
class TestScalarBatchedParity:
    def test_seeded_graph(self, seeded_graph, scenario, policy):
        pairs = sample_pairs(seeded_graph, samples=3, seed=7)
        secure = _mask(seeded_graph.n, 0.4, seed=21)
        _assert_bit_identical(
            seeded_graph, pairs, secure, secure.copy(), scenario, policy
        )

    def test_oscillator_gadget(self, chicken_graph, scenario, policy):
        n = chicken_graph.n
        pairs = [(0, n - 1), (n // 2, 1)]
        secure = _mask(n, 0.5, seed=5)
        _assert_bit_identical(
            chicken_graph, pairs, secure, secure.copy(), scenario, policy
        )

    def test_set_cover_gadget(self, set_cover_graph, scenario, policy):
        n = set_cover_graph.n
        pairs = [(0, n - 1), (n - 2, 2)]
        secure = _mask(n, 0.5, seed=9)
        _assert_bit_identical(
            set_cover_graph, pairs, secure, secure.copy(), scenario, policy
        )


class TestBackendParity:
    """Every loadable kernel backend agrees with the scalar reference."""

    @pytest.mark.parametrize("backend", kernel_backends.usable_backends())
    def test_backends_match_reference(self, seeded_graph, backend):
        pairs = sample_pairs(seeded_graph, samples=4, seed=3)
        secure = _mask(seeded_graph.n, 0.5, seed=13)
        for scenario in ("origin_hijack", "route_leak"):
            _assert_bit_identical(
                seeded_graph, pairs, secure, secure.copy(),
                scenario, "security_3rd", backend=backend,
            )


class TestBatchedValidation:
    def test_same_node_rejected(self, seeded_graph):
        with pytest.raises(ValueError, match="must differ"):
            simulate_attacks_batched(seeded_graph, [(4, 4)])

    def test_out_of_range_rejected(self, seeded_graph):
        with pytest.raises(ValueError, match="out of range"):
            simulate_attacks_batched(seeded_graph, [(0, seeded_graph.n)])

    def test_empty_batch(self, seeded_graph):
        assert simulate_attacks_batched(seeded_graph, []) == []

    def test_chunking_is_invisible(self, seeded_graph):
        """Results do not depend on where the pair-chunk boundary falls."""
        from repro.security import hijack as hijack_mod

        pairs = sample_pairs(seeded_graph, samples=6, seed=2)
        secure = _mask(seeded_graph.n, 0.4, seed=2)
        whole = simulate_attacks_batched(seeded_graph, pairs, secure, secure)
        original = hijack_mod._PAIR_CHUNK
        hijack_mod._PAIR_CHUNK = 2
        try:
            chunked = simulate_attacks_batched(
                seeded_graph, pairs, secure, secure
            )
        finally:
            hijack_mod._PAIR_CHUNK = original
        for a, b in zip(whole, chunked):
            assert np.array_equal(a.routes_to_attacker, b.routes_to_attacker)
            assert np.array_equal(a.reachable, b.reachable)


class TestHypothesisPin:
    @settings(max_examples=25, deadline=None)
    @given(
        case=graphs_with_security(min_nodes=4, max_nodes=12),
        scenario=st.sampled_from(SCENARIOS),
        policy=st.sampled_from(POLICIES),
        pair_seed=st.integers(0, 10_000),
    )
    def test_random_graphs_agree(self, case, scenario, policy, pair_seed):
        graph, secure_nodes = case
        assume(graph.n >= 2)
        victim = pair_seed % graph.n
        attacker = (victim + 1 + pair_seed // graph.n) % graph.n
        assume(victim != attacker)
        secure = np.zeros(graph.n, dtype=bool)
        secure[list(secure_nodes)] = True
        _assert_bit_identical(
            graph, [(victim, attacker)], secure, secure.copy(),
            scenario, policy,
        )
