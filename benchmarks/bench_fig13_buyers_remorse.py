"""Figure 13: buyer's remorse — an ISP gains by disabling S*BGP (§7.1).

Paper: with Akamai at w_CP = 821, AS 4755 turning S*BGP off moves the
CP's traffic to its 24 stubs from a provider edge onto a customer edge,
raising incoming utility by 205% per stub destination (+0.5% total on
the full graph; here the gadget is the whole world so the total is
large).  Shape: projected-off utility strictly exceeds the current one,
scaling with the stub count.
"""

from __future__ import annotations

from repro.core.config import UtilityModel
from repro.core.engine import compute_round_data
from repro.core.projection import project_flip
from repro.core.state import DeploymentState, StateDeriver
from repro.gadgets.buyers_remorse import build_buyers_remorse
from repro.routing.cache import RoutingCache


def test_fig13_turn_off_incentive(benchmark, capsys):
    def evaluate():
        net = build_buyers_remorse(num_stubs=24, cp_weight=821.0)
        g = net.graph
        cache = RoutingCache(g)
        deriver = StateDeriver(g, stub_breaks_ties=False, compiled=cache.compiled)
        ea = frozenset([g.index(net.cp), g.index(net.upstream)])
        state = DeploymentState.initial(ea).with_flips(turn_on=[g.index(net.focal)])
        rd = compute_round_data(cache, deriver, state, UtilityModel.INCOMING)
        focal = g.index(net.focal)
        proj = project_flip(
            cache, deriver, rd, focal, turning_on=False, model=UtilityModel.INCOMING
        )
        return net, float(rd.utilities[focal]), proj.utility

    net, on_utility, off_utility = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    gain = off_utility - on_utility
    with capsys.disabled():
        print()
        print("Fig 13: AS-4755 buyer's remorse (incoming utility)")
        print(f"  utility running S*BGP : {on_utility:10.0f}")
        print(f"  utility after turn-off: {off_utility:10.0f}")
        print(f"  gain: +{gain:.0f} over {len(net.stubs)} stub destinations "
              f"(~{gain / len(net.stubs):.0f} per stub; paper: +205% per stub)")
    assert off_utility > on_utility
    assert gain / len(net.stubs) > 500  # most of w_CP = 821 moves per stub
