"""One half of an eager two-module cycle (same layer, so no upward
finding -- the cycle check is what fires)."""

import repro.top.beta  # expect: RPR015


def ping() -> int:
    return repro.top.beta.pong()
