"""The rule catalogue: one rule per project invariant (``RPR001``…).

Each rule encodes an invariant established by an earlier PR (atomic
persistence, seeded RNG, cache/registry encapsulation, no-pickle trees,
…) as AST checks.  Rules are heuristic where static analysis cannot see
types (RPR005); the heuristics are documented on the rule and tuned so
the repo lints clean — a waiver (``# repro-lint: disable=CODE``) with a
reason is the escape hatch for deliberate exceptions, and stale waivers
are themselves findings (RPR010).
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.base import FileContext, Rule

#: Builtin exception class names (``ValueError``, ``OSError``, …).
_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


def _call_mode_argument(node: ast.Call, position: int = 1) -> str | None:
    """The literal mode string of an ``open``-style call, if static."""
    mode: ast.expr | None = None
    if len(node.args) > position:
        mode = node.args[position]
    else:
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _identifiers(node: ast.AST) -> list[str]:
    """All Name ids and Attribute attrs inside ``node``, lowercased."""
    out: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id.lower())
        elif isinstance(sub, ast.Attribute):
            out.append(sub.attr.lower())
    return out


class NonAtomicWrite(Rule):
    code = "RPR001"
    name = "non-atomic-write"
    message = (
        "file opened for writing outside repro.runtime.atomic; route writes "
        "through atomic_write_text/atomic_write_json so readers never see a "
        "torn file"
    )
    rationale = (
        "A result file that is half-written when the process dies shadows the "
        "good data from the previous run (PR 1).  Every artifact write goes "
        "through temp-file + fsync + os.replace in repro.runtime.atomic."
    )

    _WRITE_MODES = frozenset("wax+")

    def visit_call(self, ctx: FileContext, node: ast.Call) -> None:
        if ctx.is_module("repro.runtime.atomic"):
            return
        func = node.func
        resolved = ctx.resolve(func)
        if isinstance(func, ast.Attribute) and func.attr in ("write_text", "write_bytes"):
            ctx.report(self, node)
            return
        if resolved in ("open", "io.open", "os.fdopen"):
            mode = _call_mode_argument(node, position=1)
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            # method-style (Path.open, ...): mode is the first argument
            mode = _call_mode_argument(node, position=0)
        else:
            return
        if mode is not None and any(ch in self._WRITE_MODES for ch in mode):
            ctx.report(self, node)


class UnseededRandom(Rule):
    code = "RPR002"
    name = "unseeded-rng"
    message = (
        "global RNG use; thread a seeded numpy.random.Generator "
        "(np.random.default_rng(seed)) through instead so runs are reproducible"
    )
    rationale = (
        "Every experiment must be exactly replayable from its config seed; "
        "module-global RNG state (np.random.*, bare random.*) breaks replay "
        "and differs across processes."
    )

    _NUMPY_ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "MT19937",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
        }
    )
    _STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

    def _check(self, ctx: FileContext, node: ast.AST, dotted: str | None) -> None:
        if not dotted:
            return
        parts = dotted.split(".")
        if dotted.startswith("numpy.random.") and len(parts) >= 3:
            if parts[2] not in self._NUMPY_ALLOWED:
                ctx.report(self, node)
        elif dotted.startswith("random.") and len(parts) == 2:
            if parts[1] not in self._STDLIB_ALLOWED:
                ctx.report(self, node)

    def visit_attribute(self, ctx: FileContext, node: ast.Attribute) -> None:
        self._check(ctx, node, ctx.resolve(node))

    def visit_name(self, ctx: FileContext, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in ctx.aliases:
            self._check(ctx, node, ctx.aliases[node.id])


class PrivateRoutingAccess(Rule):
    code = "RPR003"
    name = "private-cache-access"
    message = (
        "private RoutingCache state (._routing/._arena) touched outside "
        "repro.routing; use the public API (get/install/ensure_arena/stats/"
        "pending_destinations)"
    )
    rationale = (
        "PR 1 replaced ad-hoc _routing poking with a public RoutingCache API; "
        "PR 3 made the arena an invariant-carrying structure.  Outside access "
        "bypasses state-digest keying and corrupts cache provenance."
    )

    _PRIVATE = frozenset({"_routing", "_arena"})

    def visit_attribute(self, ctx: FileContext, node: ast.Attribute) -> None:
        if node.attr in self._PRIVATE and not ctx.in_package("repro.routing"):
            ctx.report(self, node)


class PolicyRegistryBypass(Rule):
    code = "RPR004"
    name = "policy-registry-bypass"
    message = (
        "routing policy constructed/resolved outside the registry; use "
        "get_policy()/available_policies() (or register_policy() for new ones)"
    )
    rationale = (
        "PR 4 keys caches, arenas and journals by policy identity.  A "
        "RoutingPolicy built outside the registry has no registered name, so "
        "provenance checks and journal resume guards cannot see it."
    )

    def visit_call(self, ctx: FileContext, node: ast.Call) -> None:
        if ctx.is_module("repro.routing.policy"):
            return
        resolved = ctx.resolve(node.func)
        if resolved == "RoutingPolicy" or (
            resolved is not None and resolved.endswith(".RoutingPolicy")
        ):
            ctx.report(self, node)

    def visit_attribute(self, ctx: FileContext, node: ast.Attribute) -> None:
        self._check_registry(ctx, node, ctx.resolve(node))

    def visit_name(self, ctx: FileContext, node: ast.Name) -> None:
        if node.id in ctx.aliases:
            self._check_registry(ctx, node, ctx.aliases[node.id])

    def _check_registry(self, ctx: FileContext, node: ast.AST, dotted: str | None) -> None:
        if ctx.is_module("repro.routing.policy"):
            return
        if dotted is not None and dotted.endswith("routing.policy._REGISTRY"):
            ctx.report(
                self,
                node,
                "direct _REGISTRY access; use available_policies()/get_policy()",
            )


class TreePickle(Rule):
    code = "RPR005"
    name = "tree-pickle"
    message = (
        "pickle/deepcopy of a routing tree or arena; DestRouting structures "
        "cross process boundaries via repro.parallel.shm ArenaHandle only"
    )
    rationale = (
        "Pickling a DestRouting rebuilds megabytes of per-destination arrays "
        "per pipe message — PR 3 exists to avoid exactly that.  Heuristic: a "
        "pickle.dump(s)/copy.deepcopy call whose argument names mention "
        "tree/arena/routing/dest is assumed to target routing structures."
    )

    _FUNCS = frozenset(
        {
            "pickle.dump",
            "pickle.dumps",
            "copy.deepcopy",
            "dill.dump",
            "dill.dumps",
            "cloudpickle.dump",
            "cloudpickle.dumps",
        }
    )
    _HINTS = ("tree", "arena", "routing", "dest")

    def visit_call(self, ctx: FileContext, node: ast.Call) -> None:
        resolved = ctx.resolve(node.func)
        if resolved not in self._FUNCS:
            return
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            names = _identifiers(arg)
            if any(hint in name for hint in self._HINTS for name in names):
                ctx.report(self, node)
                return


class ImportTimeMultiprocessing(Rule):
    code = "RPR006"
    name = "mp-import-time"
    message = (
        "multiprocessing primitive created at import time; build it inside "
        "the function/engine that owns it so import stays side-effect-free "
        "and start-method selection still applies"
    )
    rationale = (
        "The parallel engine picks its start method at call time and must be "
        "importable in workers; module-level Locks/Queues/Pools bind to the "
        "default context at import, break spawn pickling, and leak fds."
    )

    _PRIMITIVES = frozenset(
        {
            "Lock",
            "RLock",
            "Semaphore",
            "BoundedSemaphore",
            "Condition",
            "Event",
            "Barrier",
            "Queue",
            "SimpleQueue",
            "JoinableQueue",
            "Pipe",
            "Pool",
            "Process",
            "Manager",
            "Value",
            "Array",
            "SharedMemory",
        }
    )

    def visit_call(self, ctx: FileContext, node: ast.Call) -> None:
        if not ctx.at_import_time():
            return
        resolved = ctx.resolve(node.func)
        if (
            resolved is not None
            and resolved.startswith("multiprocessing")
            and resolved.rpartition(".")[2] in self._PRIMITIVES
        ):
            ctx.report(self, node)


class BroadExcept(Rule):
    code = "RPR007"
    name = "broad-except"
    message = (
        "broad exception handler that silently swallows; narrow the type, "
        "re-raise, or record the failure (telemetry counter / logging)"
    )
    rationale = (
        "The resilience layer's contract is that failures are either handled "
        "by type or surfaced; a bare/broad swallow hides worker crashes and "
        "corrupt-file signals the runtime is designed to report."
    )

    _HANDLED_CALL_HINTS = (
        "log",
        "warn",
        "metric",
        "counter",
        "telemetr",
        "fallback",
        "record",
        "report",
    )

    def visit_excepthandler(self, ctx: FileContext, node: ast.ExceptHandler) -> None:
        if node.type is None:
            ctx.report(self, node, "bare except:; name the exception type")
            return
        if not self._is_broad(ctx, node.type):
            return
        if self._handles(ctx, node):
            return
        ctx.report(self, node)

    def _is_broad(self, ctx: FileContext, type_node: ast.expr) -> bool:
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for sub in nodes:
            resolved = ctx.resolve(sub)
            if resolved in ("Exception", "BaseException"):
                return True
        return False

    def _handles(self, ctx: FileContext, handler: ast.ExceptHandler) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(sub, ast.Name)
                and sub.id == handler.name
                and isinstance(sub.ctx, ast.Load)
            ):
                return True  # the caught exception is forwarded somewhere
            if isinstance(sub, ast.Call):
                dotted = ctx.resolve(sub.func) or ""
                attr = sub.func.attr if isinstance(sub.func, ast.Attribute) else ""
                text = (dotted + " " + attr).lower()
                if any(hint in text for hint in self._HANDLED_CALL_HINTS):
                    return True
        return False


class AdHocException(Rule):
    code = "RPR008"
    name = "adhoc-exception"
    message = (
        "new exception hierarchy rooted outside an errors.py module; define "
        "it in the package's errors module (or derive from an existing "
        "project exception)"
    )
    rationale = (
        "Callers catch by type across layer boundaries (CorruptFileError, "
        "SchemaError, ItemFailedError...).  Hierarchy roots scattered through "
        "feature modules force deep imports and drift into near-duplicates."
    )

    def visit_classdef(self, ctx: FileContext, node: ast.ClassDef) -> None:
        if ctx.path.endswith("errors.py"):
            return
        base_names = []
        for base in node.bases:
            resolved = ctx.resolve(base)
            base_names.append(resolved.rpartition(".")[2] if resolved else "")
        roots_builtin = any(name in _BUILTIN_EXCEPTIONS for name in base_names)
        extends_project = any(
            name not in _BUILTIN_EXCEPTIONS
            and (name.endswith("Error") or name.endswith("Exception"))
            for name in base_names
        )
        if roots_builtin and not extends_project:
            ctx.report(self, node)


class ImportTimeStateMutation(Rule):
    code = "RPR009"
    name = "import-state-mutation"
    message = (
        "global process state mutated at import time; library imports must be "
        "side-effect-free (move it into main()/the owning function)"
    )
    rationale = (
        "Workers, tests and the CLI all import repro.*; sys.path/os.environ/"
        "logging mutations at import time make behaviour depend on import "
        "order and leak between parallel test processes."
    )

    _CALLS = frozenset(
        {
            "sys.path.append",
            "sys.path.insert",
            "sys.path.extend",
            "sys.path.remove",
            "os.chdir",
            "os.putenv",
            "os.environ.update",
            "os.environ.setdefault",
            "os.environ.pop",
            "warnings.filterwarnings",
            "warnings.simplefilter",
            "logging.basicConfig",
        }
    )

    def visit_call(self, ctx: FileContext, node: ast.Call) -> None:
        if not ctx.at_import_time():
            return
        if ctx.resolve(node.func) in self._CALLS:
            ctx.report(self, node)

    def visit_assign(self, ctx: FileContext, node: ast.Assign) -> None:
        if not ctx.at_import_time():
            return
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                if ctx.resolve(target.value) == "os.environ":
                    ctx.report(self, node)
            elif isinstance(target, ast.Attribute):
                if ctx.resolve(target) == "sys.path":
                    ctx.report(self, node)


class UnboundedBlockingCall(Rule):
    code = "RPR011"
    name = "unbounded-blocking-call"
    message = (
        "blocking call without a timeout; pass timeout= (or poll first) so a "
        "dead worker or full pipe cannot hang the run past its deadline"
    )
    rationale = (
        "The runtime guard can only stop a run at checkpoints it reaches; a "
        ".join()/.recv()/.get()/.wait() with no timeout parks the process in "
        "the kernel where no deadline check ever runs.  The resilience layer "
        "(repro.runtime, which owns retries and reaping) is exempt; "
        "everything else must bound its blocking calls."
    )

    _BLOCKING = frozenset({"join", "recv", "get", "wait"})

    def visit_call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._BLOCKING:
            return
        # str.join(iterable) / dict.get(key) style calls carry positional
        # arguments; the zero-argument forms are the blocking ones
        if node.args:
            return
        if any(kw.arg == "timeout" for kw in node.keywords):
            return
        if ctx.in_package("repro.runtime"):
            return
        ctx.report(self, node)


class InlineKernelCall(Rule):
    code = "RPR012"
    name = "inline-kernel-call"
    message = (
        "simulation kernel called directly from repro.service; route the "
        "work through the Scheduler so it runs under a job's guard, journal, "
        "and cache (only repro.service.executor may call kernels)"
    )
    rationale = (
        "The service's request threads must stay cheap: an HTTP handler that "
        "runs a sweep inline blocks the accept loop for minutes, bypasses "
        "per-job deadlines/journals, and double-computes what the scheduler "
        "would have coalesced.  repro.service.executor is the one sanctioned "
        "kernel caller; everything else in repro.service marshals jobs."
    )

    _KERNELS = frozenset(
        {
            "run_sweep",
            "run_case_study",
            "run_cp_vs_tier1",
            "run_experiment",
            "run_attack_matrix",
            "simulate_attacks_batched",
            "build_environment",
            "DeploymentSimulation",
            "simulate_bgp",
            "compute_round_data",
            "compute_trees_batched",
            "subtree_weights_batched",
            "project_flip",
            "parallel_warm_cache",
            "parallel_project_flips",
        }
    )

    def visit_call(self, ctx: FileContext, node: ast.Call) -> None:
        if not ctx.in_package("repro.service"):
            return
        if ctx.is_module("repro.service.executor"):
            return
        resolved = ctx.resolve(node.func)
        if resolved is not None and resolved.rpartition(".")[2] in self._KERNELS:
            ctx.report(self, node)


class DirectKernelImplImport(Rule):
    code = "RPR013"
    name = "direct-kernel-impl-import"
    message = (
        "kernel implementation module imported directly; go through the "
        "repro.routing.backends registry (kernels_for/resolve_backend) so "
        "selection, degradation and telemetry stay in one place"
    )
    rationale = (
        "PR 8 made the batched kernels pluggable: numpy is the differential "
        "ground truth, compiled tiers (numba, cext) are optional and may be "
        "missing or fail to build on a given host.  Importing numpy_impl/"
        "numba_impl/cext_impl/_loops directly pins one implementation, skips "
        "the registry's lazy loading, ladder degradation and per-backend "
        "telemetry, and crashes on hosts without that backend's toolchain."
    )

    _PACKAGE = "repro.routing.backends"
    #: implementation submodules — the package itself (the registry) is
    #: the sanctioned import
    _IMPLS = frozenset({"numpy_impl", "numba_impl", "cext_impl", "_loops"})

    def _check(self, ctx: FileContext, node: ast.AST, dotted: str) -> None:
        if ctx.in_package(self._PACKAGE):
            return
        if dotted.startswith(self._PACKAGE + "."):
            tail = dotted[len(self._PACKAGE) + 1:].partition(".")[0]
            if tail in self._IMPLS:
                ctx.report(self, node)

    def visit_import(self, ctx: FileContext, node: ast.Import) -> None:
        for alias in node.names:
            self._check(ctx, node, alias.name)

    def visit_importfrom(self, ctx: FileContext, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            if not ctx.module:
                return
            anchor = ctx.module.rsplit(".", node.level)[0]
            module = f"{anchor}.{module}" if module else anchor
        for alias in node.names:
            if alias.name == "*":
                self._check(ctx, node, module)
                continue
            self._check(ctx, node, f"{module}.{alias.name}" if module else alias.name)


class ScenarioRegistryBypass(Rule):
    code = "RPR014"
    name = "scenario-registry-bypass"
    message = (
        "attack scenario constructed/resolved outside the registry; use "
        "get_scenario()/available_scenarios() (or register_scenario() for "
        "new ones in repro.security.scenarios)"
    )
    rationale = (
        "PR 9 keys attack-matrix journals, job-spec digests and telemetry "
        "labels on registered scenario names.  An AttackScenario built "
        "outside repro.security.scenarios has no registered name, so journal "
        "resume guards and spec canonicalisation cannot see it — and direct "
        "registry-dict access bypasses alias resolution and the idempotence "
        "check."
    )

    _HOME = "repro.security.scenarios"
    _REGISTRIES = ("_SCENARIOS", "_SCENARIO_ALIASES", "_STRATEGIES")

    def visit_call(self, ctx: FileContext, node: ast.Call) -> None:
        if ctx.is_module(self._HOME):
            return
        resolved = ctx.resolve(node.func)
        if resolved == "AttackScenario" or (
            resolved is not None and resolved.endswith(".AttackScenario")
        ):
            ctx.report(self, node)

    def visit_attribute(self, ctx: FileContext, node: ast.Attribute) -> None:
        self._check_registry(ctx, node, ctx.resolve(node))

    def visit_name(self, ctx: FileContext, node: ast.Name) -> None:
        if node.id in ctx.aliases:
            self._check_registry(ctx, node, ctx.aliases[node.id])

    def _check_registry(self, ctx: FileContext, node: ast.AST, dotted: str | None) -> None:
        if ctx.is_module(self._HOME):
            return
        if dotted is not None and any(
            dotted.endswith(f"security.scenarios.{registry}")
            for registry in self._REGISTRIES
        ):
            ctx.report(
                self,
                node,
                "direct scenario-registry access; use available_scenarios()/"
                "get_scenario() (or available_strategies()/get_strategy())",
            )


#: Registration order is cosmetic only — findings sort by location.
ALL_RULES: tuple[Rule, ...] = (
    NonAtomicWrite(),
    UnseededRandom(),
    PrivateRoutingAccess(),
    PolicyRegistryBypass(),
    TreePickle(),
    ImportTimeMultiprocessing(),
    BroadExcept(),
    AdHocException(),
    ImportTimeStateMutation(),
    UnboundedBlockingCall(),
    InlineKernelCall(),
    DirectKernelImplImport(),
    ScenarioRegistryBypass(),
)


def get_rules(
    select: frozenset[str] | None = None, ignore: frozenset[str] | None = None
) -> list[Rule]:
    """The active rule set, filtered by code (``--select`` / ``--ignore``)."""
    rules = list(ALL_RULES)
    if select:
        unknown = select - {r.code for r in rules}
        if unknown:
            raise ValueError(f"unknown rule codes: {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.code in select]
    if ignore:
        rules = [r for r in rules if r.code not in ignore]
    return rules
