"""Backend tier benchmarks: numpy vs compiled kernels, same inputs.

One parametrised set of benches per loadable backend, same arena and
security state, so the per-backend numbers in the snapshot are directly
comparable.  ``make bench-compare`` asserts the compiled tier's
headline claim — batched all-destination trees at least 3x faster than
numpy — against the committed ``BENCH_*_kernel_compiled.json``
snapshot, so a regression that erodes the compiled speedup fails CI the
same way a numpy kernel regression does.

Scale: ``REPRO_BENCH_BACKEND_N`` ASes (default 4000 — the CI smoke
size; the committed snapshot is recorded at 12000, the size the >= 3x
acceptance gate is specified at).  Destinations are sampled, as at
paper scale: the kernels stream over ``[num_dests, n]`` blocks either
way, so per-call cost scales with both knobs independently.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments.setup import build_environment
from repro.routing import backends as kernel_backends
from repro.routing.arena import compute_trees_batched, subtree_weights_batched
from repro.routing.errors import BackendUnavailable
from repro.routing.policy import get_policy

BACKEND_N = int(os.environ.get("REPRO_BENCH_BACKEND_N", "4000"))
BACKEND_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2011"))
NUM_DESTS = 64
FIXPOINT_DESTS = 16


def _loadable() -> list[str]:
    out = []
    for name in kernel_backends.usable_backends():
        try:
            kernel_backends.load_backend(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return out


BACKENDS = _loadable()

_cache: dict[str, object] = {}


def _env():
    if "env" not in _cache:
        _cache["env"] = build_environment(
            n=BACKEND_N, seed=BACKEND_SEED, x=0.10, warm=True,
            sample_destinations=NUM_DESTS,
        )
    return _cache["env"]


@pytest.fixture(scope="module")
def bench_env():
    return _env()


@pytest.fixture(scope="module")
def bench_state(bench_env):
    secure = np.zeros(bench_env.graph.n, dtype=bool)
    secure[::3] = True
    return secure


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_backend_trees(benchmark, bench_env, bench_state, backend):
    """Batched all-destination tree resolution — the headline kernel."""
    arena = bench_env.cache.ensure_arena()
    arena.backend = backend
    slots = arena.all_slots()
    # warm outside the timer: first call pays lazy level-major stacking
    compute_trees_batched(arena, slots, bench_state, bench_state)
    bt = benchmark(
        lambda: compute_trees_batched(arena, slots, bench_state, bench_state)
    )
    assert bt.choice.shape == (len(slots), bench_env.graph.n)


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_backend_weights(benchmark, bench_env, bench_state, backend):
    arena = bench_env.cache.ensure_arena()
    arena.backend = backend
    slots = arena.all_slots()
    bt = compute_trees_batched(arena, slots, bench_state, bench_state)
    w = benchmark(
        lambda: subtree_weights_batched(
            arena, slots, bt.choice, bench_env.graph.weights
        )
    )
    assert w.shape == bt.choice.shape


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_backend_fixpoint(benchmark, bench_env, bench_state, backend):
    """Synchronous-Jacobi structure build (state-dependent policy)."""
    pol = get_policy("security_2nd")
    dests = list(bench_env.cache.destinations[:FIXPOINT_DESTS])
    routings = benchmark(
        lambda: pol.build_many(
            bench_env.graph, dests, bench_env.cache.compiled,
            node_secure=bench_state, breaks_ties=bench_state,
            backend=backend,
        )
    )
    assert len(routings) == len(dests)
