"""Protocol-level attacks and what S*BGP does about them.

Three demonstrations on message-level BGP (repro.protocol):

1. an *origin hijack* succeeds in today's BGP and is dropped by RPKI
   origin validation;
2. a *fabricated link* (path-shortening) beats origin validation but
   fails S-BGP path validation and soBGP topology validation;
3. the Appendix-B attack: a victim that prefers *partially* secure
   paths is steered onto a false route — which is why the paper's
   proposal only ever prefers fully-secure paths.

Usage::

    python examples/secure_routing_attacks.py
"""

from __future__ import annotations

from repro.gadgets.attack_network import build_attack_network
from repro.protocol import (
    Announcement,
    Prefix,
    ProtocolNetwork,
    RPKI,
    SecurityMode,
    TopologyDatabase,
    evaluate_attack,
    forge_origin_hijack,
    forge_path_announcement,
    originate,
    validate_path,
)
from repro.topology.graph import ASGraph

PFX = Prefix("203.0.113.0", 24)


def hijack_demo() -> None:
    print("=" * 64)
    print("1. Origin hijack vs RPKI origin validation")
    graph = ASGraph()
    for asn in (10, 20, 666, 40):
        graph.add_as(asn)
    for customer in (20, 666, 40):
        graph.add_customer_provider(provider=10, customer=customer)

    for validated in (False, True):
        rpki = RPKI(seed=b"demo")
        modes = (
            {10: SecurityMode.FULL, 20: SecurityMode.SIMPLEX, 40: SecurityMode.FULL}
            if validated else {}
        )
        net = ProtocolNetwork(graph, rpki, modes)
        net.originate_prefix(20, PFX, issue_roa=validated)
        net.inject(666, forge_origin_hijack(666, PFX))
        out = evaluate_attack(net, victim=40, attacker=666, prefix=PFX)
        world = "with RPKI+S-BGP" if validated else "plain BGP     "
        verdict = "hijacked!" if out.attacker_on_path else "safe"
        print(f"  {world}: AS 40 routes via {out.chosen_path} -> {verdict}")


def path_shortening_demo() -> None:
    print("=" * 64)
    print("2. Fabricated link vs S-BGP and soBGP")
    rpki = RPKI(seed=b"demo2")
    for asn in (1, 2, 3):
        rpki.register_as(asn)
    rpki.issue_roa(PFX, 1)

    # honest chain 1 -> 2 -> 3 verifies
    honest = originate(rpki, 1, PFX, next_as=2)
    from repro.protocol import forward

    honest = forward(rpki, 2, honest, next_as=3)
    print(f"  honest path {honest.path}: S-BGP valid = "
          f"{validate_path(rpki, honest, receiver=3)}")

    # attacker 3 claims a direct link to the origin
    forged = forge_path_announcement(3, (3, 1), PFX)
    print(f"  forged path {forged.path}: S-BGP valid = "
          f"{validate_path(rpki, forged, receiver=2)} "
          "(no signatures for the fabricated hop)")

    db = TopologyDatabase(rpki)
    db.certify_link(1, 2)
    db.certify_link(2, 3)
    print(f"  forged path {forged.path}: soBGP topology valid = "
          f"{db.validate_path(Announcement(prefix=PFX, path=(3, 1)))} "
          "(link 3-1 was never certified)")


def partial_security_demo() -> None:
    print("=" * 64)
    print("3. Appendix B: why partially-secure paths must not be preferred")
    network = build_attack_network()
    for prefers in (False, True):
        net = network.build_protocol_network(p_prefers_partial=prefers)
        out = evaluate_attack(net, victim=network.p, attacker=network.m,
                              prefix=network.prefix)
        rule = "prefers partially-secure" if prefers else "paper's rule (full only)"
        verdict = "fooled onto the false path!" if out.attacker_on_path else "stays honest"
        print(f"  victim {rule}: chooses {out.chosen_path} -> {verdict}")


if __name__ == "__main__":
    hijack_demo()
    path_shortening_demo()
    partial_security_demo()
