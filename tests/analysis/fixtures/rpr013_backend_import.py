# module: repro.core.engine
"""Golden fixture for RPR013 (kernel impl imported outside the registry)."""

import repro.routing.backends.numpy_impl  # expect: RPR013
from repro.routing import backends
from repro.routing.backends import cext_impl  # expect: RPR013
from repro.routing.backends import kernels_for
from repro.routing.backends._loops import trees_level  # expect: RPR013
from repro.routing.backends.numba_impl import weights_level  # expect: RPR013
from repro.routing.backends.numpy_impl import (  # repro-lint: disable=RPR013 -- fixture waiver
    fixpoint_sweep,
)


def clean_goes_through_registry(arena):
    # the sanctioned shape: resolve through the registry, never pin an impl
    name, kernels = kernels_for(arena.backend)
    return name, kernels


def clean_registry_module_use():
    return backends.resolve_backend("auto")


def uses_the_pinned_impls():
    return (
        repro.routing.backends.numpy_impl,
        cext_impl,
        trees_level,
        weights_level,
        fixpoint_sweep,
    )
