"""Golden fixture for RPR006 (import-time multiprocessing primitives)."""

import multiprocessing
from multiprocessing import Queue

LOCK = multiprocessing.Lock()  # expect: RPR006
RESULTS = Queue()  # expect: RPR006
WAIVED = multiprocessing.Lock()  # repro-lint: disable=RPR006 -- fixture waiver


def clean_call_time_lock() -> object:
    return multiprocessing.Lock()


def clean_metadata() -> list:
    return multiprocessing.get_all_start_methods()
