"""The BGP routing-policy model of Appendix A.

Every AS ranks the routes it learns to a destination by:

``LP``  local preference: customer routes over peer routes over provider
        routes;
``SP``  shortest AS path among those;
``SecP`` if the AS is *secure*, fully-secure paths over insecure ones
        (the paper's tie-break-on-security proposal, §2.2.2);
``TB``  a deterministic hash tie-break ``H(a, b)`` on the next hop.

Export follows GR2: AS ``b`` announces a route via ``c`` to neighbor
``a`` iff at least one of ``a`` and ``c`` is ``b``'s customer.  In
selected-route terms: ``b`` announces its selected route to its
customers always, and to peers/providers only when that route is a
customer route (or ``b`` is the destination itself).
"""

from __future__ import annotations

import enum

import numpy as np


class RouteClass(enum.IntEnum):
    """Local-preference class of a selected route (higher = preferred)."""

    UNREACHABLE = -1
    PROVIDER = 0
    PEER = 1
    CUSTOMER = 2
    SELF = 3  # the destination's own (empty) route


#: number of low bits of the tie-break key reserved for the candidate's
#: position within a tiebreak set (used to disambiguate hash collisions)
POSITION_BITS = 16

_MIX_1 = np.uint64(0x9E3779B97F4A7C15)
_MIX_2 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_3 = np.uint64(0x94D049BB133111EB)
_U64 = np.uint64


def tie_hash(node: int, candidate: int) -> int:
    """Deterministic 64-bit tie-break hash ``H(node, candidate)``.

    The paper breaks ties by "the path where hash H(a, b) is lowest"
    (Appendix A, TB).  Any fixed pseudo-random function works; this is a
    splitmix64-style mix over the dense indices, stable across runs and
    platforms.
    """
    return int(tie_hash_array(np.array([node], dtype=np.uint64),
                              np.array([candidate], dtype=np.uint64))[0])


def tie_hash_array(nodes: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Vectorised :func:`tie_hash` over aligned uint64 arrays."""
    x = nodes.astype(np.uint64) * _MIX_1 + candidates.astype(np.uint64) * _MIX_3
    x ^= x >> _U64(30)
    x *= _MIX_2
    x ^= x >> _U64(27)
    x *= _MIX_3
    x ^= x >> _U64(31)
    return x


def exportable_to(route_class: RouteClass, neighbor_is_customer: bool) -> bool:
    """GR2: may a route of ``route_class`` be announced to this neighbor?

    ``neighbor_is_customer`` is True when the announcing AS would send
    the route to one of its customers (always allowed); otherwise the
    route must be a customer route or the announcer's own prefix.
    """
    if neighbor_is_customer:
        return route_class is not RouteClass.UNREACHABLE
    return route_class in (RouteClass.CUSTOMER, RouteClass.SELF)
