"""Project-invariant static analysis (``sbgp-lint``).

PRs 1-4 established cross-cutting invariants that ordinary tests cannot
see — every result file goes through :mod:`repro.runtime.atomic`,
routing structures are reached only via the :class:`RoutingCache` /
policy-registry APIs, ``DestRouting`` trees never cross a process
boundary by pickle, randomness always flows from a seeded
``numpy.random.Generator``.  This package machine-checks them, the same
way the bench gate machine-checks kernel performance.

The linter is a single-pass AST walker over ``src/``, ``scripts/`` and
``benchmarks/`` with one visitor-based :class:`~repro.analysis.base.Rule`
per invariant (codes ``RPR001``…).  Findings can be silenced per line
with ``# repro-lint: disable=CODE`` — and a suppression that no longer
fires is itself reported (``RPR010``), so waivers cannot outlive the
code they excused.

Entry points: ``python -m repro.analysis`` or the ``sbgp-lint`` console
script; ``make lint`` and the CI ``lint`` job run it blocking.
"""

from __future__ import annotations

from repro.analysis.base import FileContext, Rule
from repro.analysis.engine import LintResult, lint_file, lint_paths, lint_source
from repro.analysis.findings import PARSE_ERROR, UNUSED_SUPPRESSION, Finding
from repro.analysis.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintResult",
    "PARSE_ERROR",
    "Rule",
    "UNUSED_SUPPRESSION",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]
