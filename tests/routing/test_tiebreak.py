"""Tests for tiebreak-set statistics (Fig. 10 / §6.6-6.7)."""

from __future__ import annotations

import pytest

from repro.routing.tiebreak import (
    collect_tiebreak_stats,
    mean_path_length,
    security_sensitive_decision_fraction,
)
from repro.topology.graph import ASGraph


class TestSmallGraph:
    @pytest.fixture()
    def diamond(self) -> ASGraph:
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=1, customer=3)
        g.add_customer_provider(provider=2, customer=4)
        g.add_customer_provider(provider=3, customer=4)
        return g

    def test_histogram_counts_pairs(self, diamond):
        stats = collect_tiebreak_stats(diamond)
        total_pairs = sum(stats.histogram.values())
        # reachable (src, dest) pairs excluding src == dest
        assert total_pairs == 12

    def test_multipath_detected(self, diamond):
        stats = collect_tiebreak_stats(diamond)
        assert stats.histogram.get(2, 0) >= 1  # node 1 toward dest 4
        assert stats.multi_path_fraction > 0

    def test_ccdf_monotone(self, diamond):
        stats = collect_tiebreak_stats(diamond)
        ccdf = stats.ccdf()
        values = [p for _, p in ccdf]
        assert values == sorted(values, reverse=True)
        assert ccdf[0][1] == pytest.approx(1.0)

    def test_destination_subset(self, diamond):
        stats = collect_tiebreak_stats(diamond, destinations=[diamond.index(4)])
        assert sum(stats.histogram.values()) == 3

    def test_mean_path_length(self, diamond):
        # per destination the three other nodes sum to 4 hops (1+1+2),
        # e.g. dest 4: 2->4 and 3->4 direct, 1->4 two hops; 12 pairs total
        assert mean_path_length(diamond) == pytest.approx(16 / 12)


class TestPaperStatistics:
    """The paper's headline tiebreak numbers at synthetic scale."""

    @pytest.fixture(scope="class")
    def stats(self, small_graph, small_cache):
        return collect_tiebreak_stats(
            small_graph, dest_routing=small_cache.dest_routing
        )

    def test_mean_is_small(self, stats):
        # paper: mean 1.18 across pairs; generous bounds for synthetic
        assert 1.0 <= stats.mean <= 1.8

    def test_isps_have_larger_sets_than_stubs(self, stats):
        assert stats.mean_isp >= stats.mean_stub

    def test_most_pairs_single_path(self, stats):
        # paper: only ~20% of tiebreak sets have more than one path
        assert stats.multi_path_fraction < 0.5

    def test_security_sensitive_fraction(self, small_graph, stats):
        # paper (§6.7): ~3.5% of routing decisions
        frac = security_sensitive_decision_fraction(small_graph, stats)
        assert 0.0 < frac < 0.15
