#!/usr/bin/env python3
"""Diff two pytest-benchmark JSON files and report kernel regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]

Prints a per-benchmark table of runtimes and flags every benchmark that
regressed by more than ``--threshold`` (default 10%).  Exits non-zero
when regressions are found, so the comparison can gate a local
workflow — CI runs it as a *non-blocking* smoke signal (shared runners
are too noisy to make hard promises about wall-clock).

``--stat`` picks the statistic under comparison: ``mean`` (default) or
``min``.  On contended machines the mean of a microsecond-scale bench
is dominated by scheduler outliers; ``min`` is the robust choice there
(it approximates the noise-free runtime, which is why pytest-benchmark
sorts by it).

Benchmarks present in only one file are listed but never counted as
regressions (new benchmarks appear, old ones retire).  ``--require
SUBSTRING`` (repeatable) additionally fails the gate when the *current*
file has no benchmark containing the substring — so a rename or an
accidentally-skipped kernel bench cannot silently drop coverage the
gate is supposed to provide (e.g. ``--require kernel_policy`` keeps the
default-policy kernels under the regression threshold).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_stats(path: str, stat: str = "mean") -> dict[str, float]:
    """``{benchmark name: stat seconds}`` from a pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    out: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        out[bench["name"]] = float(bench["stats"][stat])
    return out


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.2f}s "


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
    only: str | None = None,
) -> list[str]:
    """Print the comparison table; return the regressed benchmark names."""
    names = sorted(set(baseline) | set(current))
    if only:
        names = [n for n in names if only in n]
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'speedup':>8}")
    regressions: list[str] = []
    for name in names:
        old, new = baseline.get(name), current.get(name)
        if old is None or new is None:
            status = "(baseline only)" if new is None else "(new)"
            have = fmt_seconds(old if new is None else new)
            print(f"{name:<{width}}  {have:>10}  {status}")
            continue
        speedup = old / new if new else float("inf")
        marker = ""
        if new > old * (1.0 + threshold):
            marker = f"  REGRESSION (>{threshold:.0%})"
            regressions.append(name)
        print(
            f"{name:<{width}}  {fmt_seconds(old):>10}  {fmt_seconds(new):>10}"
            f"  {speedup:7.2f}x{marker}"
        )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="older BENCH_*.json")
    parser.add_argument("current", help="newer BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="fractional slowdown that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--only", default=None,
        help="restrict the comparison to benchmark names containing this substring",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="SUBSTRING",
        help="fail unless the current file has a benchmark containing "
             "SUBSTRING (repeatable); guards against silently dropped coverage",
    )
    parser.add_argument(
        "--stat", choices=("mean", "min"), default="mean",
        help="statistic under comparison; min resists scheduler outliers "
             "on contended machines (default mean)",
    )
    args = parser.parse_args(argv)
    current = load_stats(args.current, args.stat)
    missing = [
        needle for needle in args.require
        if not any(needle in name for name in current)
    ]
    if missing:
        print(
            f"{args.current}: no benchmark matches required substring(s): "
            f"{', '.join(missing)}"
        )
        return 1
    regressions = compare(
        load_stats(args.baseline, args.stat), current, args.threshold,
        args.only,
    )
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
