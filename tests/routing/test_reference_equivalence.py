"""Property tests: the fast engine must match the fixpoint simulator.

The reference simulator knows nothing about tiebreak sets or
Observation C.1 — it just runs BGP to convergence with full paths — so
agreement here validates the entire analytic pipeline (route classes,
lengths, tiebreak sets, SecP, and path-security propagation).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings

from repro.routing.fast_tree import compute_tree
from repro.routing.reference import secure_flags_from_selection, simulate_bgp
from repro.routing.tree import compute_dest_routing

from tests.strategies import graphs_with_security


@given(graphs_with_security(max_nodes=14))
@settings(max_examples=50, deadline=None)
def test_fast_tree_matches_reference(graph_and_secure):
    graph, secure_list = graph_and_secure
    node_secure = np.zeros(graph.n, dtype=bool)
    node_secure[secure_list] = True

    for dest in range(graph.n):
        dr = compute_dest_routing(graph, dest)
        tree = compute_tree(dr, node_secure, node_secure)
        selection = simulate_bgp(graph, dest, node_secure, node_secure)
        sec = secure_flags_from_selection(selection, node_secure, graph.n)

        for i in range(graph.n):
            if i == dest:
                continue
            route = selection.get(i)
            if route is None:
                assert tree.choice[i] == -1, (dest, i)
            else:
                assert tree.choice[i] == route.path[1], (dest, i, route.path)
                assert bool(tree.secure[i]) == bool(sec[i]), (dest, i)


@given(graphs_with_security(max_nodes=14))
@settings(max_examples=30, deadline=None)
def test_selected_lengths_match_reference(graph_and_secure):
    graph, secure_list = graph_and_secure
    node_secure = np.zeros(graph.n, dtype=bool)
    node_secure[secure_list] = True
    for dest in range(0, graph.n, 2):
        dr = compute_dest_routing(graph, dest)
        selection = simulate_bgp(graph, dest, node_secure, node_secure)
        for i in range(graph.n):
            if i == dest:
                continue
            route = selection.get(i)
            if route is None:
                assert dr.lengths[i] == -1
            else:
                assert dr.lengths[i] == route.length
