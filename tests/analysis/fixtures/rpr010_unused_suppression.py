"""Golden fixture for RPR010 (a suppression that silences nothing)."""

VALUE = 1  # repro-lint: disable=RPR001 -- stale waiver; expect: RPR010


def clean_used_waiver() -> None:
    fh = open("out.txt", "w")  # repro-lint: disable=RPR001 -- used, so no RPR010
    fh.close()
