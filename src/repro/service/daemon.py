"""The HTTP daemon: ``sbgp-sim serve``.

Stdlib-only (``http.server``), one process, threads all the way down:
:class:`ThreadingHTTPServer` handles requests concurrently while the
:class:`~repro.service.scheduler.Scheduler`'s workers run jobs.  The
API is deliberately small and poll-based::

    POST   /v1/jobs            submit a spec        -> 202 {job}
    GET    /v1/jobs            list jobs            -> 200 {jobs: [...]}
    GET    /v1/jobs/{id}       poll one job         -> 200 {job}
    GET    /v1/jobs/{id}/events?since=N  progress   -> 200 JSONL
    GET    /v1/jobs/{id}/result          result doc -> 200 JSON
    DELETE /v1/jobs/{id}       cancel               -> 202 {job}
    GET    /metrics            Prometheus text      -> 200
    GET    /healthz            liveness + job table -> 200

Handlers never touch simulation kernels (lint rule RPR012 enforces it);
they parse, validate, and hand work to the scheduler.  Error mapping is
uniform: :class:`~repro.service.errors.SpecError` -> 400,
:class:`~repro.service.errors.JobNotFoundError` -> 404,
:class:`~repro.service.errors.JobStateError` -> 409.

Binding port 0 picks a free port; the daemon writes the actual endpoint
to ``<store>/endpoint.json`` (atomically) so scripts — the CI smoke
test included — can discover it without parsing logs.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.runtime.atomic import atomic_write_json
from repro.service.cache import DEFAULT_BUDGET_BYTES, ResultCache
from repro.service.errors import (
    JobNotFoundError,
    JobStateError,
    ServiceError,
    SpecError,
)
from repro.service.scheduler import Scheduler
from repro.service.specs import parse_spec
from repro.service.store import JobStore
from repro.telemetry.export import render_prometheus, write_metrics
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

#: request body cap (a spec is a few hundred bytes; 1 MiB is generous)
MAX_BODY_BYTES = 1 << 20

#: ``format`` marker of ``endpoint.json``
ENDPOINT_FORMAT = "repro.service-endpoint/1"


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a back-pointer to the service."""

    daemon_threads = True
    allow_reuse_address = True
    service: "SimulationService"


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs + paths onto the scheduler and store."""

    protocol_version = "HTTP/1.1"
    server: _ServiceHTTPServer

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("%s - %s", self.address_string(), format % args)

    @property
    def service(self) -> "SimulationService":
        return self.server.service

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, "application/json")

    def _send_error_json(self, status: int, message: str) -> None:
        get_registry().counter("service.http.errors").inc()
        self._send_json(status, {"error": message})

    def _read_json_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise SpecError("request body required (a JSON job spec)")
        if length > MAX_BODY_BYTES:
            raise SpecError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"request body is not valid JSON: {exc}") from exc

    def _dispatch(self, method: str) -> None:
        get_registry().counter("service.http.requests").inc()
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        try:
            handled = self._route(method, parts, parse_qs(parsed.query))
        except SpecError as exc:
            self._send_error_json(400, str(exc))
            return
        except JobNotFoundError as exc:
            self._send_error_json(404, str(exc))
            return
        except JobStateError as exc:
            self._send_error_json(409, str(exc))
            return
        except ServiceError as exc:
            self._send_error_json(500, str(exc))
            return
        if not handled:
            self._send_error_json(404, f"no route: {method} {parsed.path}")

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _route(self, method: str, parts: list[str], query: dict[str, list[str]]) -> bool:
        if method == "GET" and parts == ["healthz"]:
            return self._get_healthz()
        if method == "GET" and parts == ["metrics"]:
            return self._get_metrics()
        if parts[:2] != ["v1", "jobs"]:
            return False
        if method == "POST" and len(parts) == 2:
            return self._post_job()
        if method == "GET" and len(parts) == 2:
            jobs = [j.to_dict() for j in self.service.store.jobs()]
            self._send_json(200, {"jobs": jobs})
            return True
        if len(parts) == 3:
            if method == "GET":
                job = self.service.store.get(parts[2])
                self._send_json(200, job.to_dict())
                return True
            if method == "DELETE":
                job = self.service.scheduler.cancel(parts[2])
                self._send_json(202, job.to_dict())
                return True
        if method == "GET" and len(parts) == 4 and parts[3] == "events":
            return self._get_events(parts[2], query)
        if method == "GET" and len(parts) == 4 and parts[3] == "result":
            job = self.service.store.get(parts[2])
            self._send_json(200, self.service.store.load_result(job))
            return True
        return False

    # -- endpoints -----------------------------------------------------

    def _post_job(self) -> bool:
        spec = parse_spec(self._read_json_body())
        job, created = self.service.scheduler.submit(spec)
        payload = job.to_dict()
        payload["created"] = created
        self._send_json(202 if created else 200, payload)
        return True

    def _get_events(self, job_id: str, query: dict[str, list[str]]) -> bool:
        try:
            since = int(query.get("since", ["0"])[0])
        except ValueError as exc:
            raise SpecError(f"since must be an integer: {query['since'][0]!r}") from exc
        job = self.service.store.get(job_id)
        lines = [json.dumps(e, sort_keys=True) for e in job.events_since(since)]
        body = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
        self._send(200, body, "application/x-ndjson")
        return True

    def _get_healthz(self) -> bool:
        from repro.routing.backends import backend_status

        states: dict[str, int] = {}
        for job in self.service.store.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        self._send_json(200, {
            "status": "ok",
            "jobs": states,
            "queue_depth": self.service.scheduler.queue_depth(),
            "cache_entries": len(self.service.cache),
            # kernel-backend availability on THIS host (loaded backends
            # were exercised; available ones would load on first use)
            "backends": backend_status(),
        })
        return True

    def _get_metrics(self) -> bool:
        body = render_prometheus(get_registry().snapshot()).encode("utf-8")
        self._send(200, body, "text/plain; version=0.0.4")
        return True


class SimulationService:
    """Store + cache + scheduler + HTTP server, wired together.

    The caller (the ``serve`` CLI, or a test) enables telemetry before
    construction if it wants live ``/metrics``; the service itself only
    *reads* the ambient registry, so embedding it never hijacks global
    state.
    """

    def __init__(
        self,
        store_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        cache_budget_bytes: int = DEFAULT_BUDGET_BYTES,
    ):
        self.store = JobStore(store_dir)
        self.cache = ResultCache(cache_budget_bytes)
        self.scheduler = Scheduler(self.store, self.cache, workers=workers)
        self._httpd = _ServiceHTTPServer((host, port), ServiceHandler)
        self._httpd.service = self
        self._serve_thread: threading.Thread | None = None
        self._stopped = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolves port 0)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint_path(self) -> str:
        return str(self.store.root / "endpoint.json")

    def start(self) -> None:
        """Start workers + HTTP serving; publish the bound endpoint."""
        self.scheduler.start()
        host, port = self.address
        atomic_write_json(self.endpoint_path, {
            "format": ENDPOINT_FORMAT, "host": host, "port": port,
            "url": f"http://{host}:{port}",
        })
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="sbgp-http",
            daemon=True,
        )
        self._serve_thread.start()
        log.info("sbgp-sim service listening on http://%s:%d", host, port)

    def wait_until_shutdown(self, poll_seconds: float = 0.5) -> None:
        """Block the calling thread until :meth:`request_shutdown`.

        Polls (rather than parking unboundedly) so signal handlers set
        by the CLI get a prompt look-in on the main thread.
        """
        while not self._stopped.wait(timeout=poll_seconds):
            pass

    def request_shutdown(self) -> None:
        """Signal-safe: ask :meth:`wait` to return (idempotent)."""
        self._stopped.set()

    def shutdown(self) -> None:
        """Graceful stop: suspend jobs, stop HTTP, flush telemetry."""
        self.request_shutdown()
        self.scheduler.stop()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        snapshot = get_registry().snapshot()
        if any(snapshot.get(kind) for kind in ("counters", "gauges", "histograms")):
            write_metrics(self.store.root / "metrics.json", snapshot)
        log.info("sbgp-sim service stopped")
