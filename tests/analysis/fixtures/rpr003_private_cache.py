"""Golden fixture for RPR003 (private cache access): positive + waived + clean.

Fixtures lint with ``module=None`` (outside the repro package), so the
``repro.routing`` exemption does not apply here — that path is covered
by module-override tests in test_rules.py.
"""


def bad_peek_routing(cache) -> int:
    return len(cache._routing)  # expect: RPR003


def bad_grab_arena(cache) -> object:
    return cache._arena  # expect: RPR003


def bad_clobber(cache) -> None:
    cache._routing = {}  # expect: RPR003


def waived_peek(cache) -> int:
    return len(cache._routing)  # repro-lint: disable=RPR003 -- fixture waiver


def clean_public_api(cache) -> int:
    return cache.stats().cached


def clean_pending(cache) -> list:
    return cache.pending_destinations()
