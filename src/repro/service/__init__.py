"""Simulation-as-a-service: a job daemon over the experiment kernels.

``sbgp-sim serve`` turns the one-shot CLI into a long-lived daemon: a
JSON job API (submit / poll / events / cancel), a journal-backed
:class:`~repro.service.store.JobStore` that survives SIGKILL and
resumes in-flight sweeps, a fair priority+FIFO
:class:`~repro.service.scheduler.Scheduler`, and a
:class:`~repro.service.cache.ResultCache` that shares warmed routing
arenas and finished sweep cells across overlapping requests.

Layer map (lint rule RPR012 enforces the kernel boundary)::

    daemon (HTTP)  ->  scheduler (threads)  ->  executor (kernels)
          \\              |                        |
           +--------->  store (journals)   cache (arenas + cells)
"""

from repro.service.cache import ResultCache, ResultCacheStats
from repro.service.daemon import ServiceHandler, SimulationService
from repro.service.errors import (
    JobCancelled,
    JobNotFoundError,
    JobStateError,
    ServiceError,
    SpecError,
)
from repro.service.scheduler import Scheduler
from repro.service.specs import (
    JobSpec,
    cell_scope_digest,
    env_digest,
    parse_spec,
    spec_digest,
    spec_to_dict,
)
from repro.service.store import Job, JobStore

__all__ = [
    "ResultCache",
    "ResultCacheStats",
    "ServiceHandler",
    "SimulationService",
    "Scheduler",
    "Job",
    "JobStore",
    "JobSpec",
    "parse_spec",
    "spec_to_dict",
    "spec_digest",
    "env_digest",
    "cell_scope_digest",
    "ServiceError",
    "SpecError",
    "JobNotFoundError",
    "JobStateError",
    "JobCancelled",
]
