"""The Section-5 case study: CPs + top-5 Tier-1s, theta = 5%, x = 10%.

Runs one deployment simulation and extracts every per-round figure of
Section 5:

- Fig. 3: newly secure ASes and adopting ISPs per round;
- Fig. 4: normalised utility time series of focal ISPs (a competitor
  that deploys to regain traffic, and a holdout that never deploys);
- Fig. 5: median utility and projected utility of next-round adopters,
  normalised by starting utility;
- Fig. 6: cumulative adoption by degree bucket;
- Fig. 7: chain reactions (adopters enabled by earlier adopters);
- Table 1: the diamond census for the early adopters;
- §5.6: the zero-sum analysis (who ends above/below starting utility).
"""

from __future__ import annotations

import dataclasses
import statistics

import numpy as np

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.diamonds import DiamondCensus, diamond_census
from repro.core.dynamics import DeploymentSimulation, SimulationResult
from repro.core.metrics import ZeroSumAnalysis, zero_sum_analysis
from repro.experiments.setup import ExperimentEnv
from repro.topology.relationships import ASRole

#: degree buckets of Fig. 6
DEGREE_BUCKETS: tuple[tuple[int, int | None], ...] = (
    (1, 10),
    (11, 100),
    (101, 1000),
    (1001, None),
)


@dataclasses.dataclass
class CaseStudyReport:
    """All Section-5 series from one simulation run."""

    result: SimulationResult
    early_adopter_asns: list[int]
    fig3_new_ases: list[int]
    fig3_new_isps: list[int]
    fig4_utilities: dict[str, list[float]]   # label -> normalised series
    fig5_median_utility: list[float]         # per round, next-round adopters
    fig5_median_projected: list[float]
    fig6_adoption_by_bucket: dict[str, list[float]]  # bucket -> cumulative frac
    fig7_chains: list[tuple[int, int, int]]  # (enabler, adopter, round)
    table1: DiamondCensus
    zero_sum: ZeroSumAnalysis

    @property
    def fraction_secure_ases(self) -> float:
        g = self.result.graph
        return float(self.result.final_node_secure.sum()) / g.n


def run_case_study(
    env: ExperimentEnv,
    theta: float = 0.05,
    config: SimulationConfig | None = None,
) -> CaseStudyReport:
    """Run the case study on ``env`` and extract every figure series."""
    adopters = env.case_study_adopters()
    config = config or SimulationConfig(theta=theta, utility_model=UtilityModel.OUTGOING)
    sim = DeploymentSimulation(env.graph, adopters, config, env.cache)
    result = sim.run()
    return build_report(env, result, adopters)


def build_report(
    env: ExperimentEnv, result: SimulationResult, adopters: list[int]
) -> CaseStudyReport:
    """Extract the Section-5 series from a finished simulation."""
    return CaseStudyReport(
        result=result,
        early_adopter_asns=adopters,
        fig3_new_ases=result.newly_secure_per_round(),
        fig3_new_isps=result.adopting_isps_per_round(),
        fig4_utilities=_focal_utility_series(result),
        fig5_median_utility=_median_adopter_utilities(result, projected=False),
        fig5_median_projected=_median_adopter_utilities(result, projected=True),
        fig6_adoption_by_bucket=_adoption_by_degree(result),
        fig7_chains=_chain_reactions(result),
        table1=diamond_census(env.graph, adopters, env.cache),
        zero_sum=zero_sum_analysis(result),
    )


def _focal_utility_series(result: SimulationResult) -> dict[str, list[float]]:
    """Fig. 4: pick the paper's three characters automatically.

    - "stealer": the adopter with the largest temporary gain over its
      starting utility;
    - "regainer": an adopter whose utility had dropped the most below
      its starting utility in the round before it deployed (AS 8359's
      "regain lost traffic" role);
    - "holdout": the never-adopter that lost the most by the end.
    """
    graph = result.graph
    start = result.starting_utilities
    roles = graph.roles
    secure = result.final_node_secure

    stealer, stealer_gain = None, 0.0
    regainer, regainer_drop = None, 0.0
    holdout, holdout_loss = None, 0.0

    for i in range(graph.n):
        if roles[i] != int(ASRole.ISP) or start[i] <= 0:
            continue
        history = result.utility_history(i)
        norm = [u / start[i] for u in history]
        round_adopted = result.adoption_round(i)
        if round_adopted is not None:
            gain = max(norm) - 1.0
            if gain > stealer_gain:
                stealer, stealer_gain = i, gain
            before = norm[min(round_adopted - 1, len(norm) - 1)]
            drop = 1.0 - before
            if drop > regainer_drop:
                regainer, regainer_drop = i, drop
        elif not secure[i]:
            loss = 1.0 - norm[-1]
            if loss > holdout_loss:
                holdout, holdout_loss = i, loss

    out: dict[str, list[float]] = {}
    for label, node in (("stealer", stealer), ("regainer", regainer), ("holdout", holdout)):
        if node is not None:
            out[f"{label} (AS {graph.asn(node)})"] = [
                u / result.starting_utilities[node] for u in result.utility_history(node)
            ]
    return out


def _median_adopter_utilities(result: SimulationResult, projected: bool) -> list[float]:
    """Fig. 5: medians over ISPs that adopt in round i+1, normalised."""
    start = result.starting_utilities
    out: list[float] = []
    rounds = result.rounds
    for k, record in enumerate(rounds):
        values: list[float] = []
        for isp in record.turned_on:
            if start[isp] <= 0:
                continue
            if projected:
                values.append(record.projections[isp].utility / start[isp])
            elif record.utilities is not None:
                values.append(float(record.utilities[isp]) / start[isp])
        out.append(statistics.median(values) if values else float("nan"))
    return out


def _bucket_label(lo: int, hi: int | None) -> str:
    return f"deg {lo}-{hi}" if hi else f"deg >{lo - 1}"


def _adoption_by_degree(result: SimulationResult) -> dict[str, list[float]]:
    """Fig. 6: cumulative fraction of ISPs secure, per degree bucket."""
    graph = result.graph
    roles = graph.roles
    degrees = np.array([graph.degree_of_index(i) for i in range(graph.n)])
    isps = [i for i in range(graph.n) if roles[i] == int(ASRole.ISP)]

    buckets: dict[str, list[int]] = {}
    for lo, hi in DEGREE_BUCKETS:
        members = [i for i in isps if degrees[i] >= lo and (hi is None or degrees[i] <= hi)]
        if members:
            buckets[_bucket_label(lo, hi)] = members

    series: dict[str, list[float]] = {label: [] for label in buckets}
    snapshots = [r.node_secure for r in result.rounds] + [result.final_node_secure]
    for secure in snapshots:
        for label, members in buckets.items():
            frac = float(secure[members].sum()) / len(members)
            series[label].append(frac)
    return series


def _chain_reactions(result: SimulationResult) -> list[tuple[int, int, int]]:
    """Fig. 7: adopters enabled by a neighbor's earlier adoption.

    Returns ``(enabler, adopter, round)`` triples where the adopter
    deployed in ``round`` and a graph neighbor deployed in
    ``round - 1`` — the "longer secure paths sustain deployment"
    mechanism of §5.4.
    """
    graph = result.graph
    chains: list[tuple[int, int, int]] = []
    previous: set[int] = set()
    for record in result.rounds:
        if record.index >= 2:
            for adopter in record.turned_on:
                neighbors = set(
                    graph.customers[adopter]
                    + graph.providers[adopter]
                    + graph.peers[adopter]
                )
                for enabler in neighbors & previous:
                    chains.append((enabler, adopter, record.index))
        previous = set(record.turned_on)
    return chains
