"""Whole-program pass tests: golden fixture packages + repo self-clean.

Mirrors the per-file golden-fixture contract (see test_fixtures.py) at
package granularity: each directory under ``fixtures/`` holding a
``repro/`` tree is linted with ``--program`` narrowed to one rule, and
must produce exactly the findings named by its ``expect: CODE`` line
markers.  The self-clean test then pins the real repository at zero
program findings, which is what makes the CI gate trustworthy.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import lint_file, lint_paths

FIXTURE_DIR = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

_EXPECT = re.compile(r"expect:\s*(RPR\d{3})")

#: fixture package -> program rules selected for it.  Narrowing to one
#: code per package keeps each fixture focused: the fork-safety package
#: is free to contain dead helpers, the layering package need not map
#: every module in the repo-root manifest, and so on.
PACKAGES = {
    "rpr015_layering": frozenset({"RPR015"}),
    "rpr016_forksafety": frozenset({"RPR016"}),
    "rpr017_dead_api": frozenset({"RPR017"}),
}


def expected_package_findings(pkg: Path) -> list[tuple[str, int, str]]:
    out = []
    for path in sorted(pkg.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _EXPECT.search(line)
            if match:
                out.append((str(path), lineno, match.group(1)))
    return sorted(out)


@pytest.mark.parametrize("name", sorted(PACKAGES), ids=str)
def test_fixture_package_findings_match_markers(name: str):
    pkg = FIXTURE_DIR / name
    expected = expected_package_findings(pkg)
    assert expected, f"{name} has no expect markers — not a golden fixture"
    result = lint_paths(
        [pkg / "repro"],
        rules=[],
        program=True,
        program_select=PACKAGES[name],
    )
    got = sorted((f.path, f.line, f.code) for f in result.findings)
    assert got == expected


def test_program_findings_carry_location_and_rule_name():
    pkg = FIXTURE_DIR / "rpr015_layering"
    result = lint_paths(
        [pkg / "repro"], rules=[], program=True, program_select=frozenset({"RPR015"})
    )
    for finding in result.findings:
        assert finding.line >= 1 and finding.col >= 1
        assert finding.rule and finding.message
        assert finding.code in {"RPR015"}


def test_repo_is_program_clean():
    """The repository's own tree carries zero whole-program findings.

    This is the self-application gate: ``make lint`` and CI run the same
    command, so a regression here is a regression there.
    """
    result = lint_paths(
        [REPO / "src", REPO / "scripts", REPO / "benchmarks"],
        rules=[],
        program=True,
    )
    assert result.findings == (), "\n".join(
        f.format_text() for f in result.findings
    )
    summary = result.program
    assert summary is not None
    assert summary.modules > 50
    assert summary.packages >= 10
    assert summary.edges_eager > summary.edges_lazy
    assert summary.entrypoints >= 5
    assert summary.reachable_functions > 100
    assert summary.public_symbols > 300
    assert summary.manifest_source is not None


def test_graph_out_writes_dot(tmp_path: Path):
    pkg = FIXTURE_DIR / "rpr015_layering"
    dot = tmp_path / "graph.dot"
    lint_paths(
        [pkg / "repro"],
        rules=[],
        program=True,
        program_select=frozenset(),
        graph_out=dot,
    )
    text = dot.read_text(encoding="utf-8")
    assert text.startswith("digraph")
    assert "repro.mid" in text and "repro.top" in text
    # eager upward edge drawn solid; lazy edge dashed; typing dotted
    assert "style=dashed" in text and "style=dotted" in text


def test_program_waivers_stay_quiet_in_per_file_runs():
    """Regression for RPR010 accounting across granularities.

    ``worker.py`` carries a used RPR016 waiver and a deliberately stale
    one.  A per-file run never executes program rules, so it must not
    judge either waiver — reporting the used one as stale would train
    people to delete load-bearing waivers.
    """
    worker = FIXTURE_DIR / "rpr016_forksafety" / "repro" / "fixture016" / "worker.py"
    findings = lint_file(worker)
    assert not any(f.code in {"RPR010", "RPR016"} for f in findings), "\n".join(
        f.format_text() for f in findings
    )
