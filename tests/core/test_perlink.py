"""Tests for per-link deployment (§8.3, Theorems 8.2 / J.1 / J.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import UtilityModel
from repro.core.perlink import (
    best_link_deployment,
    routes_with_link_security,
    utility_with_links,
)
from repro.core.state import DeploymentState, StateDeriver
from repro.gadgets.dilemma import build_dilemma
from repro.routing.policy import RouteClass
from repro.topology.graph import ASGraph


def chain() -> ASGraph:
    g = ASGraph()
    for asn in (1, 2, 3):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=2)
    g.add_customer_provider(provider=2, customer=3)
    return g


class TestLinkSecurity:
    def test_all_links_active_matches_node_security(self):
        g = chain()
        secure = np.ones(g.n, dtype=bool)
        sel = routes_with_link_security(g, g.index(3), secure, secure)
        assert sel[g.index(1)].secure

    def test_disabled_link_breaks_security(self):
        g = chain()
        secure = np.ones(g.n, dtype=bool)
        disabled = {g.index(2): {g.index(3)}}
        sel = routes_with_link_security(g, g.index(3), secure, secure, disabled)
        assert not sel[g.index(2)].secure
        assert not sel[g.index(1)].secure  # poisoned upstream

    def test_disabling_is_symmetric(self):
        g = chain()
        secure = np.ones(g.n, dtype=bool)
        a = routes_with_link_security(
            g, g.index(3), secure, secure, {g.index(2): {g.index(3)}}
        )
        b = routes_with_link_security(
            g, g.index(3), secure, secure, {g.index(3): {g.index(2)}}
        )
        assert a[g.index(1)].secure == b[g.index(1)].secure

    def test_insecure_node_equivalent_to_all_links_off(self):
        g = chain()
        half = np.ones(g.n, dtype=bool)
        half[g.index(2)] = False
        sel = routes_with_link_security(g, g.index(3), half, half)
        assert not sel[g.index(1)].secure


class TestDilemma:
    @pytest.fixture(scope="class")
    def setting(self):
        net = build_dilemma(w_a=100.0, w_b=60.0)
        g = net.graph
        deriver = StateDeriver(g, stub_breaks_ties=True)
        state = DeploymentState.initial(
            frozenset(g.index(a) for a in net.secure_asns)
        )
        sec = deriver.node_secure(state)
        return net, g, sec, deriver.breaks_ties(sec)

    def test_link_choice_is_either_or(self, setting):
        net, g, sec, brk = setting
        x, up = g.index(net.x), g.index(net.up)
        u_on = utility_with_links(g, sec, brk, x, None, UtilityModel.INCOMING)
        u_off = utility_with_links(g, sec, brk, x, {x: {up}}, UtilityModel.INCOMING)
        assert u_on != u_off  # the contested link moves real revenue

    def test_weights_flip_the_optimum(self):
        outcomes = {}
        for w_a, w_b in ((100.0, 60.0), (60.0, 400.0)):
            net = build_dilemma(w_a=w_a, w_b=w_b)
            g = net.graph
            deriver = StateDeriver(g, stub_breaks_ties=True)
            state = DeploymentState.initial(
                frozenset(g.index(a) for a in net.secure_asns)
            )
            sec = deriver.node_secure(state)
            brk = deriver.breaks_ties(sec)
            x, up = g.index(net.x), g.index(net.up)
            u_on = utility_with_links(g, sec, brk, x, None, UtilityModel.INCOMING)
            u_off = utility_with_links(
                g, sec, brk, x, {x: {up}}, UtilityModel.INCOMING
            )
            outcomes[(w_a, w_b)] = u_off - u_on
        assert outcomes[(100.0, 60.0)] > 0   # disable the link
        assert outcomes[(60.0, 400.0)] < 0   # keep it


class TestBruteForce:
    def test_finds_the_profitable_subset(self):
        net = build_dilemma(w_a=100.0, w_b=60.0)
        g = net.graph
        deriver = StateDeriver(g, stub_breaks_ties=True)
        state = DeploymentState.initial(
            frozenset(g.index(a) for a in net.secure_asns)
        )
        sec = deriver.node_secure(state)
        brk = deriver.breaks_ties(sec)
        best = best_link_deployment(g, sec, brk, g.index(net.x), UtilityModel.INCOMING)
        assert g.index(net.up) in best.disabled

    def test_outgoing_full_deployment_optimal(self):
        """Theorem J.2: under outgoing utility, securing every link is
        (weakly) optimal."""
        net = build_dilemma()
        g = net.graph
        deriver = StateDeriver(g, stub_breaks_ties=True)
        state = DeploymentState.initial(
            frozenset(g.index(a) for a in net.secure_asns)
        )
        sec = deriver.node_secure(state)
        brk = deriver.breaks_ties(sec)
        x = g.index(net.x)
        all_on = utility_with_links(g, sec, brk, x, None, UtilityModel.OUTGOING)
        best = best_link_deployment(g, sec, brk, x, UtilityModel.OUTGOING)
        assert best.utility <= all_on + 1e-9

    def test_neighbor_limit_enforced(self, small_graph):
        deriver = StateDeriver(small_graph)
        state = DeploymentState(frozenset(), frozenset())
        sec = deriver.node_secure(state)
        hub = max(range(small_graph.n), key=small_graph.degree_of_index)
        with pytest.raises(ValueError):
            best_link_deployment(
                small_graph, sec, sec, hub, neighbor_limit=2
            )
