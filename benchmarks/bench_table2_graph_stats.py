"""Table 2 (Appendix D): AS-graph composition, original vs augmented.

Paper: Cyclops+IXP has 36,964 ASes, 72,848 customer-provider edges and
38,829 peerings; the augmented graph doubles the peerings (77,380) by
adding CP edges.  Shapes: ~85% stubs, cust-prov ~= 2N, peerings ~= N on
the base graph, and substantially more peerings after augmentation.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.topology.stats import summarize


def test_table2_graph_summary(benchmark, env, env_augmented, capsys):
    base, aug = benchmark.pedantic(
        lambda: (summarize(env.graph), summarize(env_augmented.graph)),
        rounds=1, iterations=1,
    )
    rows = [
        ["original", base.num_ases, base.num_stubs, base.num_isps, base.num_cps,
         base.num_customer_provider_edges, base.num_peering_edges],
        ["augmented", aug.num_ases, aug.num_stubs, aug.num_isps, aug.num_cps,
         aug.num_customer_provider_edges, aug.num_peering_edges],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["graph", "ASes", "stubs", "ISPs", "CPs", "cust-prov", "peerings"],
            rows, title="Table 2: graph composition (paper: 36,964 / 72,848 / 38,829)",
        ))

    assert abs(base.stub_fraction - 0.85) < 0.05
    assert 1.4 <= base.num_customer_provider_edges / base.num_ases <= 2.6
    assert aug.num_peering_edges > base.num_peering_edges
