"""Stable states must actually be stable (the fixpoint definition)."""

from __future__ import annotations

import pytest

from repro.core.adopters import cps_plus_top_isps, top_degree_isps
from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import Outcome, run_deployment
from repro.core.engine import compute_round_data
from repro.core.projection import project_flip
from repro.core.state import StateDeriver


def assert_stable(result, graph, cache):
    """Re-verify rule (3) for every ISP at the final state."""
    cfg = result.config
    deriver = StateDeriver(graph, cfg.stub_breaks_ties, cache.compiled)
    rd = compute_round_data(cache, deriver, result.final_state, cfg.utility_model)
    threshold = 1.0 + cfg.theta
    deployers = result.final_state.deployers
    for isp in graph.isp_indices:
        turning_on = isp not in deployers
        if not turning_on:
            if cfg.utility_model is UtilityModel.OUTGOING:
                continue  # Theorem 6.2: never reconsidered
            if isp in result.early_adopters:
                continue
        proj = project_flip(
            cache, deriver, rd, int(isp), turning_on, cfg.utility_model
        )
        assert proj.utility <= threshold * rd.utilities[isp] + 1e-6, (
            f"ISP {graph.asn(int(isp))} still wants to flip at 'stable' state"
        )


@pytest.mark.parametrize("theta", [0.0, 0.05, 0.30])
def test_outgoing_stable_states_are_fixpoints(small_graph, small_cache, theta):
    result = run_deployment(
        small_graph, cps_plus_top_isps(small_graph, 3),
        SimulationConfig(theta=theta), small_cache,
    )
    assert result.outcome is Outcome.STABLE
    assert_stable(result, small_graph, small_cache)


def test_incoming_stable_state_is_fixpoint(small_graph, small_cache):
    result = run_deployment(
        small_graph, top_degree_isps(small_graph, 3),
        SimulationConfig(
            theta=0.05, utility_model=UtilityModel.INCOMING, max_rounds=40
        ),
        small_cache,
    )
    if result.outcome is Outcome.STABLE:
        assert_stable(result, small_graph, small_cache)
    else:  # oscillation is a legitimate incoming-model outcome (Thm 7.1)
        assert result.outcome in (Outcome.OSCILLATION, Outcome.MAX_ROUNDS)
