"""Cross-request result cache: sweep cells and warmed routing arenas.

The daemon's whole value proposition over ``sbgp-sim sweep`` in a cron
job is amortisation: two users sweeping overlapping grids on the same
topology should pay for the overlap once.  Two kinds of entry make that
happen:

- **cells** — finished :class:`~repro.experiments.sweeps.SweepCell`
  values, keyed by ``(cell-scope digest, adopter set, theta)`` where
  the scope digest (:func:`~repro.service.specs.cell_scope_digest`)
  pins everything else that affects a cell's value.  The executor binds
  a :class:`CellView` over this store as the sweep's
  :class:`~repro.experiments.sweeps.CellCache`;
- **arenas** — warmed read-only :class:`~repro.routing.arena.RoutingArena`
  pools keyed by environment digest, so the second job on a topology
  skips the (dominant) tree-build cost.  Only state-independent
  policies participate: their arenas are immutable after build, which
  is what makes sharing across scheduler threads safe.

Eviction is LRU under a byte budget.  Arenas dwarf cells (MiB vs a few
hundred bytes), so the budget is effectively "how many warm topologies
to keep"; cells ride along almost for free.  Every lookup lands in the
``service.cache.*`` telemetry counters — the acceptance criterion for
the whole subsystem is literally "the second job shows hits here".
"""

from __future__ import annotations

import dataclasses
import logging
import threading
from collections import OrderedDict

from repro.experiments.sweeps import SweepCell
from repro.routing.arena import RoutingArena
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

#: default byte budget (256 MiB): a handful of tiny-topology arenas or
#: one production-scale one, plus effectively unlimited cells
DEFAULT_BUDGET_BYTES = 256 * 2**20

#: accounting estimate for one cached cell (the dataclass plus key;
#: exact sizes vary with projection_ratios, but cells are noise next to
#: arenas and an estimate keeps the hot path allocation-free)
_CELL_BYTES = 512


@dataclasses.dataclass(frozen=True)
class ResultCacheStats:
    """Point-in-time accounting for one :class:`ResultCache`."""

    cell_hits: int
    cell_misses: int
    arena_hits: int
    arena_misses: int
    evictions: int
    entries: int
    bytes_used: int
    budget_bytes: int

    @property
    def hit_rate(self) -> float:
        lookups = self.cell_hits + self.cell_misses
        return self.cell_hits / lookups if lookups else 0.0


class _Entry:
    __slots__ = ("value", "nbytes")

    def __init__(self, value: object, nbytes: int):
        self.value = value
        self.nbytes = nbytes


class ResultCache:
    """LRU byte-budgeted store of sweep cells and warmed arenas.

    Thread-safe: every operation holds one lock for its (short, pure
    in-memory) duration.  Arena *contents* need no locking — they are
    read-only after build by :class:`~repro.routing.arena.RoutingArena`
    contract, so handing the same arena to two concurrent jobs is safe.
    """

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES):
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._bytes = 0
        self._cell_hits = 0
        self._cell_misses = 0
        self._arena_hits = 0
        self._arena_misses = 0
        self._evictions = 0

    # -- generic LRU core ---------------------------------------------

    def _get(self, key: tuple) -> object | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry.value

    def _put(self, key: tuple, value: object, nbytes: int) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[key] = _Entry(value, nbytes)
        self._bytes += nbytes
        registry = get_registry()
        while self._bytes > self.budget_bytes and len(self._entries) > 1:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._evictions += 1
            registry.counter("service.cache.evictions").inc()
            log.debug("evicted %s (%d bytes) from result cache", evicted_key, evicted.nbytes)
        registry.gauge("service.cache.bytes").set(self._bytes)
        registry.gauge("service.cache.entries").set(len(self._entries))

    # -- cells ---------------------------------------------------------

    def get_cell(self, scope: str, adopters: str, theta: float) -> SweepCell | None:
        """A shared cell for ``(scope, adopters, theta)``, or None."""
        with self._lock:
            value = self._get(("cell", scope, adopters, theta))
            if value is None:
                self._cell_misses += 1
                get_registry().counter("service.cache.cell_misses").inc()
                return None
            self._cell_hits += 1
            get_registry().counter("service.cache.cell_hits").inc()
            return value  # type: ignore[return-value]

    def put_cell(self, scope: str, adopters: str, theta: float, cell: SweepCell) -> None:
        """Publish a finished cell for other jobs in the same scope."""
        with self._lock:
            self._put(("cell", scope, adopters, theta), cell, _CELL_BYTES)

    def cell_view(self, scope: str) -> "CellView":
        """A :class:`~repro.experiments.sweeps.CellCache` bound to ``scope``."""
        return CellView(self, scope)

    # -- arenas --------------------------------------------------------

    def get_arena(self, env_key: str) -> RoutingArena | None:
        """The warmed arena for environment ``env_key``, or None."""
        with self._lock:
            value = self._get(("arena", env_key))
            if value is None:
                self._arena_misses += 1
                get_registry().counter("service.cache.arena_misses").inc()
                return None
            self._arena_hits += 1
            get_registry().counter("service.cache.arena_hits").inc()
            return value  # type: ignore[return-value]

    def put_arena(self, env_key: str, arena: RoutingArena) -> None:
        """Publish a warmed arena (charged at its real ``nbytes``).

        Callers must only publish arenas for state-*independent*
        policies (``arena.state_key is None``); a state-dependent arena
        is only valid for one deployment state and sharing it would be
        a silent-wrong-results bug, so it is refused loudly.
        """
        if arena.state_key is not None:
            raise ValueError(
                "refusing to cache a state-dependent arena "
                f"(state_key={arena.state_key!r}); only state-independent "
                "policies share arenas across jobs"
            )
        with self._lock:
            self._put(("arena", env_key), arena, max(arena.nbytes, 1))

    # -- accounting ----------------------------------------------------

    def stats(self) -> ResultCacheStats:
        """Current :class:`ResultCacheStats` snapshot."""
        with self._lock:
            return ResultCacheStats(
                cell_hits=self._cell_hits,
                cell_misses=self._cell_misses,
                arena_hits=self._arena_hits,
                arena_misses=self._arena_misses,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes_used=self._bytes,
                budget_bytes=self.budget_bytes,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CellView:
    """:class:`~repro.experiments.sweeps.CellCache` over one scope.

    ``run_sweep`` only knows ``(adopter set, theta)``; the view carries
    the scope digest that makes those coordinates globally unique.
    """

    def __init__(self, cache: ResultCache, scope: str):
        self._cache = cache
        self._scope = scope

    def get(self, adopters: str, theta: float) -> SweepCell | None:
        return self._cache.get_cell(self._scope, adopters, theta)

    def put(self, adopters: str, theta: float, cell: SweepCell) -> None:
        self._cache.put_cell(self._scope, adopters, theta, cell)
