"""Per-line ``# repro-lint: disable=CODE`` suppression comments.

A suppression applies to findings anchored on the same physical line as
the comment (for a multi-line statement, rules anchor on the statement's
first line — put the comment there).  Several codes may be listed,
comma-separated, and free text after the code list is allowed so the
*reason* for the waiver can live next to it::

    fh = open(path, "a")  # repro-lint: disable=RPR001 -- fsynced append journal

Suppressions are tracked: the engine asks :meth:`SuppressionTable.unused`
after all rules have run and reports stale waivers as ``RPR010``
findings, so a suppression cannot outlive the violation it excused.
"""

from __future__ import annotations

import io
import re
import tokenize

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)")
_CODE = re.compile(r"[A-Z]{3}\d{3}")


class SuppressionTable:
    """Suppression comments for one file, with usage tracking."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._used: set[tuple[int, str]] = set()

    @classmethod
    def from_source(cls, source: str) -> "SuppressionTable":
        """Scan ``source`` for directives via the tokenizer.

        Tokenizing (rather than regexing raw lines) keeps directives
        inside string literals from registering as real suppressions.
        Files the tokenizer rejects fall back to a plain line scan —
        the AST parse will surface the real syntax problem separately.
        """
        table = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            for lineno, text in enumerate(source.splitlines(), start=1):
                table._scan_text(lineno, text)
            return table
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                table._scan_text(tok.start[0], tok.string)
        return table

    def _scan_text(self, lineno: int, text: str) -> None:
        match = _DIRECTIVE.search(text)
        if match:
            codes = set(_CODE.findall(match.group(1)))
            self._by_line.setdefault(lineno, set()).update(codes)

    def codes_on_line(self, line: int) -> frozenset[str]:
        return frozenset(self._by_line.get(line, ()))

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when ``code`` is waived on ``line``; marks the waiver used."""
        if code in self._by_line.get(line, ()):
            self._used.add((line, code))
            return True
        return False

    def unused(self, active_codes: frozenset[str]) -> list[tuple[int, str]]:
        """(line, code) pairs that silenced nothing, sorted.

        Restricted to ``active_codes`` so running a subset of rules
        (``--select``) does not misreport the other waivers as stale.
        """
        stale = [
            (line, code)
            for line, codes in self._by_line.items()
            for code in codes
            if code in active_codes and (line, code) not in self._used
        ]
        return sorted(stale)
