#!/usr/bin/env python
"""mypy error-count ratchet: the type-error count can only go DOWN.

The package ships ``py.typed`` but was never type-checked; retrofitting
annotations everywhere at once is not realistic.  The ratchet makes the
transition monotonic instead:

* fully-annotated modules (``repro.runtime``, ``repro.telemetry``,
  ``repro.analysis``, ``repro.routing.policy``) are checked with strict
  flags via the ``[[tool.mypy.overrides]]`` table in pyproject.toml and
  must stay at ZERO errors;
* every other top-level ``repro.*`` bucket has a committed error-count
  ceiling in ``scripts/typecheck_baseline.json``.  Exceeding a ceiling
  fails CI; dropping below it prints a reminder to tighten the baseline
  with ``--update`` (which refuses to *raise* a ceiling unless
  ``--force``d, so the ratchet never silently loosens).

Exit codes: 0 ok (including the mypy-not-installed local skip),
1 ratchet violation, 2 tool/usage failure (or mypy missing under
``--require``, the CI mode).
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "scripts" / "typecheck_baseline.json"
BASELINE_FORMAT = "repro.typecheck-ratchet/1"

_ERROR_LINE = re.compile(r"^(?P<path>[^:\n]+\.py):\d+(?::\d+)?: error:")


def run_mypy() -> tuple[list[str], int]:
    """Run mypy over the package; returns (stdout lines, returncode)."""
    cmd = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO_ROOT / "pyproject.toml"),
        "src/repro",
    ]
    proc = subprocess.run(
        cmd, cwd=REPO_ROOT, capture_output=True, text=True, check=False
    )
    if proc.returncode not in (0, 1):  # 2+ = mypy itself blew up
        sys.stderr.write(proc.stdout + proc.stderr)
        raise RuntimeError(f"mypy failed with exit code {proc.returncode}")
    return proc.stdout.splitlines(), proc.returncode


#: Packages whose annotation debt is tracked per *submodule*, not per
#: package.  These are the next annotation targets: a coarse
#: package-wide ceiling lets one noisy module mask a regression in a
#: clean sibling, while per-file ceilings let each submodule be driven
#: to zero (and promoted to strict) independently.
FINE_BUCKETS = frozenset({"repro.security", "repro.experiments", "repro.service"})


def bucket_for_path(path: str) -> str:
    """``src/repro/routing/policy.py`` -> ``repro.routing``.

    Packages in :data:`FINE_BUCKETS` resolve one level deeper:
    ``src/repro/service/daemon.py`` -> ``repro.service.daemon`` (the
    package ``__init__.py`` keeps the package-level name).
    """
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        idx = parts.index("repro")
        tail = parts[idx + 1 :]
        if not tail or tail[0] == "__init__.py":
            return "repro"
        top = "repro." + tail[0].removesuffix(".py")
        if top in FINE_BUCKETS and len(tail) > 1 and tail[1] != "__init__.py":
            return top + "." + tail[1].removesuffix(".py")
        return top
    return "<outside-package>"


def count_errors(lines: list[str]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for line in lines:
        match = _ERROR_LINE.match(line)
        if match:
            bucket = bucket_for_path(match.group("path"))
            counts[bucket] = counts.get(bucket, 0) + 1
    return counts


def load_baseline() -> dict:
    payload = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    if payload.get("format") != BASELINE_FORMAT:
        raise RuntimeError(
            f"{BASELINE_PATH}: unrecognised format {payload.get('format')!r}"
        )
    return payload


def write_baseline(payload: dict) -> None:
    # Route through the project's atomic writer (scripts are linted
    # too); src/ is put on sys.path here, inside the function, so the
    # script stays importable without PYTHONPATH.
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.runtime.atomic import atomic_write_text

    atomic_write_text(BASELINE_PATH, json.dumps(payload, indent=2) + "\n")


def check(counts: dict[str, int], baseline: dict, update: bool, force: bool) -> int:
    ceilings: dict[str, int] = dict(baseline["ceilings"])
    strict = set(baseline.get("strict_modules", ()))
    buckets = sorted(set(ceilings) | set(counts))

    violations: list[str] = []
    tightenable: list[str] = []
    width = max(len(b) for b in buckets) if buckets else 10
    print(f"{'bucket':<{width}}  errors  ceiling  status")
    for bucket in buckets:
        observed = counts.get(bucket, 0)
        ceiling = ceilings.get(bucket, 0)  # new buckets must be clean
        if observed > ceiling:
            status = "FAIL (count went up)"
            violations.append(
                f"{bucket}: {observed} errors > ceiling {ceiling}"
                + (" [strict module: must stay at 0]" if bucket in strict else "")
            )
        elif observed < ceiling:
            status = "ok (tighten with --update)"
            tightenable.append(bucket)
        else:
            status = "ok"
        print(f"{bucket:<{width}}  {observed:>6}  {ceiling:>7}  {status}")

    if update:
        raised = [
            b for b in counts if counts.get(b, 0) > ceilings.get(b, 0)
        ]
        if raised and not force:
            print(
                "refusing to RAISE ceilings for: "
                + ", ".join(sorted(raised))
                + " (the ratchet only goes down; use --force to override)"
            )
            return 1
        new_ceilings = {b: counts.get(b, 0) for b in buckets if counts.get(b, 0)}
        baseline["ceilings"] = dict(sorted(new_ceilings.items()))
        write_baseline(baseline)
        print(f"baseline updated: {BASELINE_PATH.relative_to(REPO_ROOT)}")
        return 0

    if violations:
        print("\ntypecheck ratchet FAILED:")
        for v in violations:
            print(f"  {v}")
        print("fix the new type errors (or, for a deliberate exception, annotate")
        print("with a scoped `# type: ignore[code]` — never raise the ceiling).")
        return 1
    if tightenable:
        print(
            "\nnote: error counts dropped below their ceilings for "
            + ", ".join(tightenable)
            + "; run `python scripts/typecheck_ratchet.py --update` to lock it in."
        )
    print("typecheck ratchet OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) when mypy is not installed — CI mode; the "
        "default is a loud local skip",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline with the observed (lower) counts",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="allow --update to raise ceilings (escape hatch; leaves a diff)",
    )
    args = parser.parse_args(argv)

    have_mypy = (
        shutil.which("mypy") is not None
        or subprocess.run(
            [sys.executable, "-c", "import mypy"], capture_output=True, check=False
        ).returncode
        == 0
    )
    if not have_mypy:
        msg = "mypy is not installed (pip install -e '.[dev]')"
        if args.require:
            print(f"typecheck ratchet: {msg}", file=sys.stderr)
            return 2
        print(f"typecheck ratchet: SKIPPED — {msg}")
        return 0

    try:
        baseline = load_baseline()
        lines, _ = run_mypy()
    except RuntimeError as exc:
        print(f"typecheck ratchet: {exc}", file=sys.stderr)
        return 2
    return check(count_errors(lines), baseline, update=args.update, force=args.force)


if __name__ == "__main__":
    raise SystemExit(main())
