"""The shared whole-program symbol table (one AST pass per file).

Every program-level rule (layering, fork-safety, dead API) consumes the
same :class:`ProgramIndex`, built in ONE visitor pass over each file's
already-parsed AST — the per-file linter hands its trees over, so the
``--program`` flag does not re-read or re-parse anything.

The index records, per file:

* **imports** — every intra-project import, resolved to a concrete
  module and classified ``eager`` (module/class body), ``lazy``
  (function body — the sanctioned cycle-breaking idiom), or ``typing``
  (under ``if TYPE_CHECKING:`` — annotations only, never executed);
* **symbols** — top-level public definitions (functions, classes with
  their methods, assignments) with line anchors and AST-derived
  signatures;
* **functions** — every function/method/nested closure with the raw
  call sites and module-state write sites inside it (resolved later by
  the fork-safety pass);
* **uses** — every referenced identifier (Name loads, Attribute attrs,
  from-import names), the universe the dead-API pass checks public
  symbols against.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable

#: Import-edge classification (see module docstring).
EAGER = "eager"
LAZY = "lazy"
TYPING = "typing"

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: Mutating-method names that count as a write to the receiver.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)

#: Identifier fragments that mark a ``with`` context as a lock — writes
#: under such a block are considered synchronised, not lock-free.
_LOCK_HINTS = ("lock", "mutex", "cond", "sem")

#: Module-level initialisers that make a name *per-thread* rather than
#: shared: ``threading.local()`` (or a subclass) and ``ContextVar``.
_THREAD_LOCAL_BASES = ("threading.local", "contextvars.ContextVar")


@dataclasses.dataclass(frozen=True)
class RawImport:
    """One import statement, before module resolution."""

    module: str | None  # the ``from X`` part (resolved through relative levels)
    name: str | None  # the imported name (None for plain ``import X``)
    line: int
    col: int
    kind: str  # EAGER / LAZY / TYPING


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One resolved intra-project import edge."""

    src: str  # importing module
    dst: str  # imported project module
    line: int
    col: int
    kind: str  # EAGER / LAZY / TYPING
    path: str  # file the import appears in

    def sort_key(self) -> tuple[str, str, int]:
        return (self.src, self.dst, self.line)


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call inside a function body, in resolver-friendly form."""

    dotted: str | None  # resolved dotted target (through aliases), if any
    attr: str | None  # trailing attribute name for method-style calls
    first_arg: str | None  # resolved dotted of the first positional arg
    target_kwarg: str | None  # resolved dotted of a ``target=``/``func=`` kwarg
    line: int


@dataclasses.dataclass(frozen=True)
class WriteSite:
    """A candidate module-state write inside a function body."""

    name: str  # the module-level name being written
    line: int
    col: int
    description: str  # human-readable form (``cache[key] = ...``)
    locked: bool  # True when under a ``with <...lock...>:`` block


@dataclasses.dataclass
class FunctionInfo:
    """One function / method / nested closure."""

    qualname: str  # module-scoped: ``mod:Class.method`` / ``mod:fn.<locals>.g``
    module: str | None
    path: str
    name: str
    line: int
    owner_class: str | None  # enclosing class name, if a method
    signature: str = ""
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    writes: list[WriteSite] = dataclasses.field(default_factory=list)
    globals_declared: set[str] = dataclasses.field(default_factory=set)
    #: local ``name = SomeCallable(...)`` binds: local name -> dotted
    #: callee.  Lets entry-point detection resolve ``engine.map(build,
    #: ...)`` where ``build`` is a callable class instance.
    local_binds: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class SymbolInfo:
    """One top-level definition in a project module."""

    module: str
    name: str
    kind: str  # "function" | "class" | "constant"
    line: int
    col: int
    path: str
    signature: str

    @property
    def public(self) -> bool:
        return not self.name.startswith("_")


class FileIndex:
    """Everything the program pass extracted from one file."""

    def __init__(self, path: str, module: str | None) -> None:
        self.path = path
        self.module = module
        self.raw_imports: list[RawImport] = []
        self.symbols: dict[str, SymbolInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> (base dotted names, method name -> FunctionInfo)
        self.classes: dict[str, tuple[tuple[str, ...], dict[str, FunctionInfo]]] = {}
        #: every identifier referenced in the file (Name loads, Attribute
        #: attrs); the dead-API universe.
        self.uses: set[str] = set()
        #: names referenced ONLY as from-import targets (re-export shape);
        #: maps name -> source module string of the import.
        self.import_refs: dict[str, str] = {}
        #: module-level names bound to mutable literals/constructors.
        self.mutable_globals: set[str] = set()
        #: module-level names bound to thread-local/ContextVar values.
        self.threadlocal_globals: set[str] = set()
        #: top-level call sites (import-time execution), for entry points.
        self.toplevel_calls: list[CallSite] = []

    @property
    def is_init(self) -> bool:
        return Path(self.path).name == "__init__.py"


def _dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Dotted path of a Name/Attribute chain through import aliases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - pathological trees only
        return "<expr>"


def _arg_sig(arg: ast.arg) -> str:
    if arg.annotation is not None:
        return f"{arg.arg}: {_unparse(arg.annotation)}"
    return arg.arg


def function_signature(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    """Stable one-line signature string derived purely from the AST."""
    a = node.args
    parts: list[str] = []
    pos = [*a.posonlyargs, *a.args]
    defaults: list[ast.expr | None] = [None] * (len(pos) - len(a.defaults)) + list(a.defaults)
    for arg, default in zip(pos, defaults):
        text = _arg_sig(arg)
        if default is not None:
            text += f"={_unparse(default)}"
        parts.append(text)
    if a.posonlyargs:
        parts.insert(len(a.posonlyargs), "/")
    if a.vararg is not None:
        parts.append(f"*{_arg_sig(a.vararg)}")
    elif a.kwonlyargs:
        parts.append("*")
    for arg, kw_default in zip(a.kwonlyargs, a.kw_defaults):
        text = _arg_sig(arg)
        if kw_default is not None:
            text += f"={_unparse(kw_default)}"
        parts.append(text)
    if a.kwarg is not None:
        parts.append(f"**{_arg_sig(a.kwarg)}")
    ret = f" -> {_unparse(node.returns)}" if node.returns is not None else ""
    prefix = "async def" if isinstance(node, ast.AsyncFunctionDef) else "def"
    return f"{prefix} {node.name}({', '.join(parts)}){ret}"


def _is_mutable_initialiser(node: ast.expr, aliases: dict[str, str]) -> bool:
    """Does this module-level value look like shared mutable state?"""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func, aliases) or ""
        tail = dotted.rpartition(".")[2]
        return tail in ("dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter")
    return False


def _is_threadlocal_initialiser(
    node: ast.expr, aliases: dict[str, str], local_bases: dict[str, tuple[str, ...]]
) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func, aliases)
    if dotted is None:
        return False
    if any(dotted == base or dotted.endswith("." + base.rpartition(".")[2]) for base in _THREAD_LOCAL_BASES):
        return True
    # an instance of a locally-defined class deriving from threading.local
    bases = local_bases.get(dotted.rpartition(".")[2], ())
    return any(b in _THREAD_LOCAL_BASES or b.endswith(".local") for b in bases)


class _FileVisitor(ast.NodeVisitor):
    """The single program-pass visitor for one file."""

    def __init__(self, fi: FileIndex) -> None:
        self.fi = fi
        self.aliases: dict[str, str] = {}
        self.depth = 0  # enclosing function bodies
        self.typing_depth = 0  # enclosing ``if TYPE_CHECKING:`` blocks
        self.lock_depth = 0  # enclosing lock-shaped ``with`` blocks
        self.class_stack: list[str] = []
        self.func_stack: list[FunctionInfo] = []
        #: class name -> resolved base dotted names (for threading.local)
        self.class_bases: dict[str, tuple[str, ...]] = {}

    # -- helpers -------------------------------------------------------

    def _import_kind(self) -> str:
        if self.typing_depth:
            return TYPING
        return LAZY if self.depth else EAGER

    def _current_function(self) -> FunctionInfo | None:
        return self.func_stack[-1] if self.func_stack else None

    def _record_symbol(self, name: str, kind: str, node: ast.AST, signature: str) -> None:
        if self.depth or self.class_stack or self.fi.module is None:
            return
        self.fi.symbols[name] = SymbolInfo(
            module=self.fi.module,
            name=name,
            kind=kind,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            path=self.fi.path,
            signature=signature,
        )

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            self.aliases[local] = alias.name if alias.asname else alias.name.partition(".")[0]
            self.fi.raw_imports.append(
                RawImport(alias.name, None, node.lineno, node.col_offset + 1, self._import_kind())
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            if not self.fi.module:
                return
            # level 1 anchors at the containing package: the module's
            # parent for a plain file, the package itself for __init__;
            # each further level strips one more component.
            pkg = self.fi.module if self.fi.is_init else self.fi.module.rsplit(".", 1)[0]
            extra = node.level - 1
            anchor = pkg.rsplit(".", extra)[0] if extra else pkg
            module = f"{anchor}.{module}" if module else anchor
        for alias in node.names:
            if alias.name == "*":
                self.fi.raw_imports.append(
                    RawImport(module, None, node.lineno, node.col_offset + 1, self._import_kind())
                )
                continue
            local = alias.asname or alias.name
            self.aliases[local] = f"{module}.{alias.name}" if module else alias.name
            self.fi.raw_imports.append(
                RawImport(module, alias.name, node.lineno, node.col_offset + 1, self._import_kind())
            )
            # Deliberately NOT added to ``uses``: keeping import targets
            # in a separate set lets dead-API analysis distinguish "only
            # re-exported" from "imported and actually referenced".
            self.fi.import_refs.setdefault(alias.name, module)

    # -- structure -----------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        test = _dotted(node.test, self.aliases)
        is_type_checking = test in ("TYPE_CHECKING", "typing.TYPE_CHECKING")
        self._track_use_expr(node.test)
        if is_type_checking:
            self.typing_depth += 1
        for child in node.body:
            self.visit(child)
        if is_type_checking:
            self.typing_depth -= 1
        for child in node.orelse:
            self.visit(child)

    def visit_With(self, node: ast.With) -> None:
        locked = False
        for item in node.items:
            self._track_use_expr(item.context_expr)
            text = " ".join(
                part.lower()
                for sub in ast.walk(item.context_expr)
                for part in (
                    [sub.id] if isinstance(sub, ast.Name) else [sub.attr] if isinstance(sub, ast.Attribute) else []
                )
            )
            if any(hint in text for hint in _LOCK_HINTS):
                locked = True
        if locked:
            self.lock_depth += 1
        try:
            for child in node.body:
                self.visit(child)
        finally:
            if locked:
                self.lock_depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = tuple(b for b in (_dotted(base, self.aliases) for base in node.bases) if b)
        self.class_bases[node.name] = bases
        base_text = f"({', '.join(bases)})" if bases else ""
        self._record_symbol(node.name, "class", node, f"class {node.name}{base_text}")
        for base in node.bases:
            self._track_use_expr(base)
        for deco in node.decorator_list:
            self._track_use_expr(deco)
        self.class_stack.append(node.name)
        if not self.depth and len(self.class_stack) == 1:
            self.fi.classes.setdefault(node.name, (bases, {}))
        for child in node.body:
            self.visit(child)
        self.class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        sig = function_signature(node)
        owner = self.class_stack[-1] if self.class_stack else None
        if not self.class_stack:
            self._record_symbol(node.name, "function", node, sig)
        parent = self._current_function()
        if parent is not None:
            qual = f"{parent.qualname}.<locals>.{node.name}"
        elif owner is not None and len(self.class_stack) == 1 and not self.depth:
            qual = f"{self.fi.module or self.fi.path}:{owner}.{node.name}"
        else:
            qual = f"{self.fi.module or self.fi.path}:{node.name}"
        info = FunctionInfo(
            qualname=qual,
            module=self.fi.module,
            path=self.fi.path,
            name=node.name,
            line=node.lineno,
            owner_class=owner,
            signature=sig,
        )
        self.fi.functions[qual] = info
        if owner is not None and owner in self.fi.classes and parent is None:
            self.fi.classes[owner][1][node.name] = info
        for deco in node.decorator_list:
            self._track_use_expr(deco)
        self.func_stack.append(info)
        self.depth += 1
        try:
            self.generic_visit(node)
        finally:
            self.depth -= 1
            self.func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.depth += 1
        try:
            self.generic_visit(node)
        finally:
            self.depth -= 1

    # -- uses ----------------------------------------------------------

    def _track_use_expr(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                self.fi.uses.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                self.fi.uses.add(sub.attr)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.fi.uses.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.fi.uses.add(node.attr)
        self.generic_visit(node)

    # -- assignments / writes ------------------------------------------

    def _module_level_assign(self, target: ast.expr, value: ast.expr | None, node: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        rendered = _unparse(value) if value is not None else "..."
        if len(rendered) > 40:
            rendered = rendered[:37] + "..."
        self._record_symbol(target.id, "constant", node, f"{target.id} = {rendered}")
        if value is not None:
            if _is_mutable_initialiser(value, self.aliases):
                self.fi.mutable_globals.add(target.id)
            if _is_threadlocal_initialiser(value, self.aliases, self.class_bases):
                self.fi.threadlocal_globals.add(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self.depth and not self.class_stack:
            for target in node.targets:
                self._module_level_assign(target, node.value, node)
        fn = self._current_function()
        if fn is not None and isinstance(node.value, ast.Call):
            callee = _dotted(node.value.func, self.aliases)
            if callee is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        fn.local_binds[target.id] = callee
        self._record_write(node.targets, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self.depth and not self.class_stack:
            self._module_level_assign(node.target, node.value, node)
        self._record_write([node.target], node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write([node.target], node)
        self.generic_visit(node)

    def _record_write(self, targets: Iterable[ast.expr], node: ast.AST) -> None:
        fn = self._current_function()
        if fn is None:
            return
        for target in targets:
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if not isinstance(base, ast.Name):
                continue
            # a plain ``name = ...`` rebinding inside a function is a
            # local unless declared global; subscript/attribute writes
            # mutate whatever the name is bound to.
            if isinstance(target, ast.Name) and target.id not in fn.globals_declared:
                continue
            fn.writes.append(
                WriteSite(
                    name=base.id,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    description=_unparse(target),
                    locked=self.lock_depth > 0,
                )
            )

    def visit_Global(self, node: ast.Global) -> None:
        fn = self._current_function()
        if fn is not None:
            fn.globals_declared.update(node.names)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func, self.aliases)
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        first_arg = None
        if node.args:
            first_arg = _dotted(node.args[0], self.aliases)
        target_kwarg = None
        for kw in node.keywords:
            if kw.arg in ("target", "func", "fn"):
                target_kwarg = _dotted(kw.value, self.aliases)
        site = CallSite(
            dotted=dotted, attr=attr, first_arg=first_arg, target_kwarg=target_kwarg, line=node.lineno
        )
        fn = self._current_function()
        if fn is not None:
            fn.calls.append(site)
        else:
            self.fi.toplevel_calls.append(site)
        # mutating method calls on a module-level name are writes too
        if (
            fn is not None
            and attr in MUTATING_METHODS
            and isinstance(node.func, ast.Attribute)
        ):
            base = node.func.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                fn.writes.append(
                    WriteSite(
                        name=base.id,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        description=f"{_unparse(node.func)}(...)",
                        locked=self.lock_depth > 0,
                    )
                )
        self.generic_visit(node)


class ProgramIndex:
    """The resolved whole-program view all program rules consume."""

    def __init__(self) -> None:
        self.files: dict[str, FileIndex] = {}  # path -> FileIndex
        self.modules: dict[str, FileIndex] = {}  # module -> FileIndex
        self.edges: list[ImportEdge] = []
        #: reference-only use universes (tests/, examples/ files that are
        #: scanned for symbol uses but not linted).
        self.extra_uses: list[FileIndex] = []

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        parsed: Iterable[tuple[str, str | None, ast.AST]],
        reference_parsed: Iterable[tuple[str, str | None, ast.AST]] = (),
    ) -> "ProgramIndex":
        """Build from (path, module, tree) triples.

        ``parsed`` are the linted files; ``reference_parsed`` contribute
        only to the use universe (dead-API cross-referencing).
        """
        index = cls()
        for path, module, tree in parsed:
            fi = FileIndex(path, module)
            _FileVisitor(fi).visit(tree)
            index.files[path] = fi
            if module is not None:
                index.modules[module] = fi
        for path, module, tree in reference_parsed:
            fi = FileIndex(path, module)
            _FileVisitor(fi).visit(tree)
            index.extra_uses.append(fi)
        index._resolve_edges()
        return index

    def _resolve_edges(self) -> None:
        known = set(self.modules)
        for fi in self.files.values():
            src = fi.module
            if src is None:
                continue
            for raw in fi.raw_imports:
                dst = self._resolve_target(raw, known)
                if dst is None or dst == src:
                    continue
                self.edges.append(
                    ImportEdge(src=src, dst=dst, line=raw.line, col=raw.col, kind=raw.kind, path=fi.path)
                )
        self.edges.sort(key=ImportEdge.sort_key)

    @staticmethod
    def _resolve_target(raw: RawImport, known: set[str]) -> str | None:
        """Concrete project module an import lands on.

        ``from repro.routing import backends`` resolves to the submodule
        ``repro.routing.backends`` when it exists, else to the package
        ``repro.routing`` (an attribute import).  Unknown targets
        (stdlib, third-party) resolve to None.
        """
        module = raw.module
        if module is None:
            return None
        if raw.name is not None and f"{module}.{raw.name}" in known:
            return f"{module}.{raw.name}"
        if module in known:
            return module
        # ``import repro.x.y`` binds repro but executes repro.x.y
        if raw.name is None and module.rpartition(".")[0] in known and module in known:
            return module  # pragma: no cover - covered by the branch above
        return None

    # -- queries -------------------------------------------------------

    def eager_edges(self) -> list[ImportEdge]:
        return [e for e in self.edges if e.kind == EAGER]

    def edge_counts(self) -> dict[str, int]:
        counts = {EAGER: 0, LAZY: 0, TYPING: 0}
        for edge in self.edges:
            counts[edge.kind] += 1
        return counts

    def all_functions(self) -> dict[str, FunctionInfo]:
        out: dict[str, FunctionInfo] = {}
        for fi in self.files.values():
            out.update(fi.functions)
        return out

    def public_symbols(self) -> list[SymbolInfo]:
        out: list[SymbolInfo] = []
        for fi in self.files.values():
            for sym in fi.symbols.values():
                if sym.public:
                    out.append(sym)
        return sorted(out, key=lambda s: (s.module, s.name))

    def use_universe(self) -> dict[str, set[str]]:
        """path -> referenced identifier set, across linted + reference files."""
        out = {fi.path: fi.uses for fi in self.files.values()}
        for fi in self.extra_uses:
            out[fi.path] = fi.uses
        return out
