"""Tests for the simulated RPKI."""

from __future__ import annotations

import pytest

from repro.protocol.rpki import Prefix, ROA, RPKI, UnknownKeyError


@pytest.fixture()
def rpki() -> RPKI:
    return RPKI(seed=b"test")


PFX = Prefix("203.0.113.0", 24)


class TestKeys:
    def test_register_idempotent(self, rpki):
        rpki.register_as(65000)
        sig1 = rpki.sign(65000, b"hello")
        rpki.register_as(65000)
        assert rpki.sign(65000, b"hello") == sig1

    def test_sign_requires_key(self, rpki):
        with pytest.raises(UnknownKeyError):
            rpki.sign(65000, b"x")

    def test_verify_roundtrip(self, rpki):
        rpki.register_as(1)
        sig = rpki.sign(1, b"msg")
        assert rpki.verify(1, b"msg", sig)

    def test_verify_rejects_tamper(self, rpki):
        rpki.register_as(1)
        sig = rpki.sign(1, b"msg")
        assert not rpki.verify(1, b"other", sig)
        assert not rpki.verify(1, b"msg", b"\x00" * 32)

    def test_verify_rejects_wrong_signer(self, rpki):
        rpki.register_as(1)
        rpki.register_as(2)
        sig = rpki.sign(1, b"msg")
        assert not rpki.verify(2, b"msg", sig)

    def test_verify_unknown_as_false(self, rpki):
        assert not rpki.verify(9, b"msg", b"sig")

    def test_deterministic_seeded_keys(self):
        a, b = RPKI(seed=b"k"), RPKI(seed=b"k")
        a.register_as(7)
        b.register_as(7)
        assert a.sign(7, b"m") == b.sign(7, b"m")

    def test_different_seeds_different_keys(self):
        a, b = RPKI(seed=b"k1"), RPKI(seed=b"k2")
        a.register_as(7)
        b.register_as(7)
        assert a.sign(7, b"m") != b.sign(7, b"m")


class TestROAs:
    def test_issue_and_validate(self, rpki):
        roa = rpki.issue_roa(PFX, 65001)
        assert roa == ROA(prefix=PFX, asn=65001)
        assert rpki.origin_valid(PFX, 65001)
        assert not rpki.origin_valid(PFX, 65002)

    def test_has_roa(self, rpki):
        assert not rpki.has_roa(PFX)
        rpki.issue_roa(PFX, 1)
        assert rpki.has_roa(PFX)

    def test_multiple_authorized_origins(self, rpki):
        rpki.issue_roa(PFX, 1)
        rpki.issue_roa(PFX, 2)
        assert rpki.origin_valid(PFX, 1) and rpki.origin_valid(PFX, 2)

    def test_issue_registers_key(self, rpki):
        rpki.issue_roa(PFX, 77)
        assert rpki.has_key(77)


def test_prefix_str():
    assert str(PFX) == "203.0.113.0/24"


class TestDelegation:
    """The §2.2.1 footnote: delegated keys cut both ways."""

    def test_delegate_can_sign_for_owner(self, rpki):
        rpki.delegate_key(owner=100, delegate=200)
        sig = rpki.sign_for(200, 100, b"announce")
        assert rpki.verify(100, b"announce", sig)

    def test_non_delegate_rejected(self, rpki):
        rpki.register_as(100)
        rpki.register_as(300)
        with pytest.raises(PermissionError):
            rpki.sign_for(300, 100, b"announce")

    def test_revocation(self, rpki):
        rpki.delegate_key(owner=100, delegate=200)
        rpki.revoke_delegation(100, 200)
        with pytest.raises(PermissionError):
            rpki.sign_for(200, 100, b"x")

    def test_revoke_is_idempotent(self, rpki):
        rpki.revoke_delegation(1, 2)  # nothing delegated; no error

    def test_malicious_delegate_forges_valid_origination(self, rpki):
        """The reduced security, concretely: a provider holding a
        stub's key forges an origination that passes full validation."""
        from repro.protocol.messages import Announcement, RouteAttestation

        stub, provider, receiver = 100, 200, 50
        rpki.delegate_key(owner=stub, delegate=provider)
        rpki.issue_roa(PFX, stub)
        payload = RouteAttestation.payload(PFX, (stub,), receiver)
        forged = Announcement(
            prefix=PFX,
            path=(stub,),
            attestations=(
                RouteAttestation(
                    signer=stub, path=(stub,), next_as=receiver,
                    signature=rpki.sign_for(provider, stub, payload),
                ),
            ),
        )
        from repro.protocol.sbgp import validate_path

        assert validate_path(rpki, forged, receiver=receiver)
