"""Reference message-passing BGP simulator (ground truth for tests).

This simulator makes no use of Observation C.1 or the tiebreak-set
machinery.  Every node holds its currently selected *full path*; on
each sweep a node re-evaluates all routes available from its neighbors'
selected paths (respecting GR2 export and BGP loop detection) and picks
the best under the active :class:`~repro.routing.policy.RoutingPolicy`
ranking (default ``LP > SP > SecP > TB``).  Sweeps repeat until a
fixpoint, which Lemma G.1 guarantees exists under the default policy;
``security_1st`` rankings may not converge (Lychev et al.).

It is quadratic-ish and only suitable for small graphs; the property
tests use it to validate :mod:`repro.routing.fast_tree` exactly,
including the security annotations.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.routing.policy import RouteClass, RoutingPolicy, get_policy
from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class SelectedRoute:
    """A node's selected route: class, full path (node -> ... -> dest)."""

    route_class: RouteClass
    path: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.path) - 1


# Lives here rather than an errors.py because non-convergence is a
# *result* of BGP dynamics under security-1st rankings (Lychev et al.),
# raised and documented by the simulators in this module.
class ConvergenceError(RuntimeError):  # repro-lint: disable=RPR008
    """The reference simulator failed to reach a fixpoint."""


def _is_secure_path(path: tuple[int, ...], node_secure: np.ndarray) -> bool:
    return all(bool(node_secure[v]) for v in path)


def simulate_bgp(
    graph: ASGraph,
    dest: int,
    node_secure: np.ndarray | None = None,
    breaks_ties: np.ndarray | None = None,
    max_sweeps: int = 10_000,
    policy: "str | RoutingPolicy" = "security_3rd",
) -> dict[int, SelectedRoute]:
    """Run the fixpoint simulation toward ``dest`` (dense node index).

    Returns ``{node: SelectedRoute}`` for every node with a route.
    ``node_secure`` / ``breaks_ties`` default to all-insecure.
    ``policy`` selects the preference ranking; export is GR2 always.
    """
    n = graph.n
    pol = get_policy(policy)
    if node_secure is None:
        node_secure = np.zeros(n, dtype=bool)
    if breaks_ties is None:
        breaks_ties = np.zeros(n, dtype=bool)

    selected: dict[int, SelectedRoute] = {
        dest: SelectedRoute(RouteClass.SELF, (dest,))
    }

    def offered_class(neighbor: int, kind: RouteClass) -> SelectedRoute | None:
        """Route neighbor offers me, if export rules allow, as class `kind`."""
        route = selected.get(neighbor)
        if route is None:
            return None
        if kind is not RouteClass.PROVIDER:
            # exporting to a peer or to a provider: route must be a
            # customer route or the neighbor's own prefix (GR2)
            if route.route_class not in (RouteClass.CUSTOMER, RouteClass.SELF):
                return None
        return route

    def rank_key(i: int, cand_route: SelectedRoute, kind: RouteClass) -> tuple:
        path = (i,) + cand_route.path
        applies_secp = bool(node_secure[i]) and bool(breaks_ties[i])
        return pol.rank_key(
            route_class=int(kind),
            length=len(path) - 1,
            secure=_is_secure_path(cand_route.path, node_secure),
            applies_secp=applies_secp,
            node=i,
            next_hop=path[1],
        )

    for _ in range(max_sweeps):
        changed = False
        for i in range(n):
            if i == dest:
                continue
            best: tuple | None = None
            best_route: SelectedRoute | None = None
            for kind, neighbors in (
                (RouteClass.CUSTOMER, graph.customers[i]),
                (RouteClass.PEER, graph.peers[i]),
                (RouteClass.PROVIDER, graph.providers[i]),
            ):
                for j in neighbors:
                    offer = offered_class(j, kind)
                    if offer is None or i in offer.path:
                        continue
                    key = rank_key(i, offer, kind)
                    if best is None or key < best:
                        best = key
                        best_route = SelectedRoute(kind, (i,) + offer.path)
            if best_route is None:
                if i in selected:
                    del selected[i]
                    changed = True
            elif selected.get(i) != best_route:
                selected[i] = best_route
                changed = True
        if not changed:
            return selected
    raise ConvergenceError(f"no fixpoint after {max_sweeps} sweeps")


def secure_flags_from_selection(
    selection: dict[int, SelectedRoute], node_secure: np.ndarray, n: int
) -> np.ndarray:
    """bool[n]: is each node's selected full path entirely secure?"""
    out = np.zeros(n, dtype=bool)
    for i, route in selection.items():
        out[i] = _is_secure_path(route.path, node_secure)
    return out
