"""The DIAMOND gadget must reproduce the Fig-2 / §5.5 competition story."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation, Outcome
from repro.gadgets.diamond import build_diamond
from repro.routing.cache import RoutingCache


@pytest.fixture(scope="module")
def played():
    net = build_diamond()
    cfg = SimulationConfig(theta=0.02, utility_model=UtilityModel.OUTGOING)
    sim = DeploymentSimulation(net.graph, [net.source], cfg)
    return net, sim.run()


class TestCompetition:
    def test_both_competitors_deploy(self, played):
        net, result = played
        g = net.graph
        assert result.outcome is Outcome.STABLE
        assert result.final_node_secure[g.index(net.left)]
        assert result.final_node_secure[g.index(net.right)]

    def test_stub_secured_by_simplex(self, played):
        net, result = played
        assert result.final_node_secure[net.graph.index(net.stub)]

    def test_steal_then_regain(self, played):
        """One ISP steals in round 1; the other deploys to regain."""
        net, result = played
        g = net.graph
        first = result.rounds[0].turned_on
        second = result.rounds[1].turned_on
        competitors = {g.index(net.left), g.index(net.right)}
        assert len(first) == 1 and set(first) <= competitors
        assert len(second) == 1 and set(second) <= competitors
        assert set(first) | set(second) == competitors

    def test_stealer_utility_spike_is_temporary(self, played):
        """§5.5: the stealer's gain disappears once the rival deploys."""
        net, result = played
        g = net.graph
        stealer = result.rounds[0].turned_on[0]
        history = result.utility_history(stealer)
        start = result.starting_utilities[stealer]
        assert max(history) > start  # the spike
        assert history[-1] == pytest.approx(start)  # gone at the end

    def test_victim_recovers_traffic(self, played):
        """The paper's tie-break rule lets the original carrier regain
        its traffic once both routes are secure."""
        net, result = played
        g = net.graph
        victim = result.rounds[1].turned_on[0]
        history = result.utility_history(victim)
        start = result.starting_utilities[victim]
        assert min(history) < start       # it lost traffic mid-game
        assert history[-1] == pytest.approx(start)  # and got it back
