"""The paper's Figure-1 example network, reconstructed.

Figure 1 annotates the model walkthrough of Section 3: ISPs 8866, 8928
and 25076, stubs 34376 and 31420, content providers 15169 (Google) and
22822 (Limelight), with 8866 and 22822 as early adopters.  The worked
utility example: five sources (two CPs and three ASes) transit traffic
through ``n = 8866`` to destination ``d = 31420``, contributing
``2*w_CP + 3`` outgoing utility, and ``T_8866(22822, S)`` contains ASes
31420, 25076 and 34376.

Unit tests pin both facts against this construction.
"""

from __future__ import annotations

import dataclasses

from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class Fig1Network:
    """Figure 1's cast, with the paper's AS numbers."""

    graph: ASGraph
    isp_8866: int = 8866
    isp_8928: int = 8928
    isp_25076: int = 25076
    stub_34376: int = 34376
    stub_31420: int = 31420
    cp_google: int = 15169
    cp_limelight: int = 22822

    @property
    def early_adopters(self) -> tuple[int, ...]:
        """Per the caption: ISP 8866 and CP 22822 are the adopters."""
        return (self.isp_8866, self.cp_limelight)


def build_fig1(w_cp: float = 821.0) -> Fig1Network:
    """Construct the Figure-1 topology.

    ``w_cp`` is the CP weight (821 matches x = 10% at paper scale).
    """
    g = ASGraph(cp_asns=[15169, 22822])
    for asn in (8866, 8928, 25076, 34376, 31420, 15169, 22822):
        g.add_as(asn)

    # provider hierarchy under 8866
    g.add_customer_provider(provider=8866, customer=31420)
    g.add_customer_provider(provider=8866, customer=25076)
    g.add_customer_provider(provider=25076, customer=34376)

    # peerings: the competing ISP and the CPs (CPs peer at IXPs)
    g.add_peering(8866, 8928)
    g.add_peering(8866, 15169)
    g.add_peering(8866, 22822)
    g.add_peering(8928, 15169)
    g.add_peering(8928, 22822)

    g.validate()
    g.set_weight(15169, w_cp)
    g.set_weight(22822, w_cp)
    return Fig1Network(graph=g)
