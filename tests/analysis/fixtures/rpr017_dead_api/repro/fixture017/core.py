"""Public symbols in every liveness class the dead-API pass knows."""

USED_CONST = 3


def used_helper() -> int:
    return USED_CONST


def dead_helper() -> int:  # expect: RPR017
    return 0


def dead_export() -> int:  # expect: RPR017 -- re-exported by __init__ but consumed nowhere
    return 1


class DeadClass:  # expect: RPR017
    def method(self) -> None:
        return None


class UsedBase:
    pass


class _Internal(UsedBase):
    # subclassing in this same file is a load of UsedBase: alive
    pass


def main() -> int:
    # console-script entry points are wired via pyproject: never flagged
    return 0


def _private_helper() -> int:
    return 2
