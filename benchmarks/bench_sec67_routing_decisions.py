"""§6.7: how few routing decisions security needs to influence.

Paper: only ISPs (15% of ASes) need apply SecP, and only ~23% of their
tiebreak sets offer a real choice, so deployment progresses with just
``0.15 x 0.23 ~= 3.5%`` of routing decisions affected by security.
"""

from __future__ import annotations

from repro.routing.tiebreak import (
    collect_tiebreak_stats,
    security_sensitive_decision_fraction,
)


def test_sec67_security_sensitive_fraction(benchmark, env, capsys):
    def measure():
        stats = collect_tiebreak_stats(
            env.graph, dest_routing=env.cache.dest_routing
        )
        return stats, security_sensitive_decision_fraction(env.graph, stats)

    stats, fraction = benchmark.pedantic(measure, rounds=1, iterations=1)
    isp_share = len(env.graph.isp_indices) / env.graph.n
    with capsys.disabled():
        print()
        print("Sec 6.7: routing decisions affected by security")
        print(f"  ISP share of ASes          : {isp_share:.1%} (paper: 15%)")
        print(f"  ISP multi-path tiebreak    : "
              f"{stats.multi_path_fraction_isp:.1%} (paper: ~23%)")
        print(f"  security-sensitive decisions: {fraction:.2%} (paper: 3.5%)")
    assert 0.0 < fraction < 0.15
