"""Spec validation and the three digest scopes (work, env, cell)."""

from __future__ import annotations

import pytest

from repro.service.errors import SpecError
from repro.service.specs import (
    cell_scope_digest,
    env_digest,
    parse_spec,
    spec_digest,
    spec_to_dict,
)


class TestParsing:
    def test_empty_payload_gets_defaults(self):
        spec = parse_spec({})
        assert spec.kind == "sweep"
        assert spec.n == 1000
        assert spec.policy == "security_3rd"
        assert spec.thetas == (0.0, 0.05, 0.10, 0.20, 0.30, 0.50)
        assert spec.adopter_sets == ()
        assert spec.priority == 0

    def test_round_trips_through_dict(self):
        spec = parse_spec({"n": 80, "thetas": [0.0, 0.1], "priority": 3})
        assert parse_spec(spec_to_dict(spec)) == spec

    def test_non_object_rejected(self):
        with pytest.raises(SpecError):
            parse_spec([1, 2, 3])

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec fields: theta_grid"):
            parse_spec({"theta_grid": [0.0]})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            parse_spec({"kind": "projection"})

    def test_bad_types_rejected(self):
        with pytest.raises(SpecError):
            parse_spec({"n": "many"})
        with pytest.raises(SpecError):
            parse_spec({"thetas": "0.0,0.1"})
        with pytest.raises(SpecError):
            parse_spec({"thetas": [0.0, "x"]})
        with pytest.raises(SpecError):
            parse_spec({"adopter_sets": [1, 2]})

    def test_ranges_enforced(self):
        with pytest.raises(SpecError):
            parse_spec({"x": 1.5})
        with pytest.raises(SpecError):
            parse_spec({"priority": 10})
        with pytest.raises(SpecError):
            parse_spec({"deadline": 0})
        with pytest.raises(SpecError):
            parse_spec({"thetas": [0.0, 0.0]})

    def test_oversized_grid_rejected_at_submit(self):
        with pytest.raises(SpecError, match="cell limit"):
            parse_spec({"thetas": [i / 10000 for i in range(2000)]})

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecError):
            parse_spec({"policy": "shortest_path_first"})

    def test_policy_aliases_canonicalise(self):
        a = parse_spec({"policy": "security_3rd"})
        b = parse_spec({"policy": "gao-rexford"})
        assert b.policy == "security_3rd"
        assert spec_digest(a) == spec_digest(b)


class TestDigests:
    def test_scheduling_metadata_excluded_from_work_identity(self):
        base = parse_spec({"n": 80})
        tweaked = parse_spec({"n": 80, "priority": 5, "deadline": 60.0})
        assert spec_digest(base) == spec_digest(tweaked)

    def test_work_identity_tracks_the_grid(self):
        assert spec_digest(parse_spec({"thetas": [0.0]})) != spec_digest(
            parse_spec({"thetas": [0.0, 0.1]})
        )

    def test_env_digest_ignores_the_grid(self):
        a = parse_spec({"n": 80, "thetas": [0.0]})
        b = parse_spec({"n": 80, "thetas": [0.0, 0.1, 0.2]})
        assert env_digest(a) == env_digest(b)
        assert env_digest(a) != env_digest(parse_spec({"n": 81, "thetas": [0.0]}))

    def test_cell_scope_shared_across_overlapping_grids(self):
        # the property the ResultCache depends on: two different sweeps
        # on one environment share a cell scope...
        a = parse_spec({"n": 80, "thetas": [0.0, 0.05]})
        b = parse_spec({"n": 80, "thetas": [0.05, 0.30], "adopter_sets": ["top-5"]})
        assert cell_scope_digest(a) == cell_scope_digest(b)

    def test_cell_scope_splits_on_cell_value_inputs(self):
        # ...but never across anything that changes a cell's value
        base = parse_spec({"n": 80})
        assert cell_scope_digest(base) != cell_scope_digest(
            parse_spec({"n": 80, "stub_breaks_ties": False})
        )
        assert cell_scope_digest(base) != cell_scope_digest(
            parse_spec({"n": 80, "max_rounds": 50})
        )
        assert cell_scope_digest(base) != cell_scope_digest(
            parse_spec({"n": 80, "policy": "security_1st"})
        )


class TestAttackMatrixSpecs:
    def test_defaults(self):
        spec = parse_spec({"kind": "attack-matrix"})
        assert spec.scenarios == ()       # () = all registered
        assert spec.strategies == ()
        assert spec.policies == ()
        assert spec.levels == (0.0, 0.5, 1.0)
        assert spec.attack_samples == 12
        assert spec.attack_seed == 0

    def test_round_trips_through_dict(self):
        spec = parse_spec({
            "kind": "attack-matrix", "n": 80,
            "scenarios": ["origin_hijack"], "strategies": ["stub_first"],
            "policies": ["security_3rd"], "levels": [0.0, 1.0],
        })
        assert parse_spec(spec_to_dict(spec)) == spec

    def test_scenario_aliases_coalesce_digests(self):
        a = parse_spec({"kind": "attack-matrix", "scenarios": ["hijack", "leak"]})
        b = parse_spec({
            "kind": "attack-matrix", "scenarios": ["origin_hijack", "route_leak"]
        })
        assert a.scenarios == ("origin_hijack", "route_leak")
        assert spec_digest(a) == spec_digest(b)

    def test_unknown_names_rejected(self):
        with pytest.raises(SpecError, match="scenarios"):
            parse_spec({"kind": "attack-matrix", "scenarios": ["nope"]})
        with pytest.raises(SpecError, match="strategies"):
            parse_spec({"kind": "attack-matrix", "strategies": ["nope"]})
        with pytest.raises(SpecError, match="policies"):
            parse_spec({"kind": "attack-matrix", "policies": ["nope"]})

    def test_repeats_rejected(self):
        # aliases count as repeats: they resolve to the same canonical name
        with pytest.raises(SpecError, match="repeat"):
            parse_spec({
                "kind": "attack-matrix", "scenarios": ["hijack", "origin_hijack"]
            })

    def test_levels_validated(self):
        with pytest.raises(SpecError, match=r"\[0, 1\]"):
            parse_spec({"kind": "attack-matrix", "levels": [0.0, 1.5]})
        with pytest.raises(SpecError, match="repeat"):
            parse_spec({"kind": "attack-matrix", "levels": [0.5, 0.5]})
        with pytest.raises(SpecError, match="non-empty"):
            parse_spec({"kind": "attack-matrix", "levels": []})

    def test_oversized_matrix_rejected(self):
        # all 4 scenarios x 5 policies x 4 strategies = 80 cells per level;
        # 52 levels puts the grid over the 4096-cell limit
        levels = [i / 100 for i in range(52)]
        with pytest.raises(SpecError, match="cell limit"):
            parse_spec({"kind": "attack-matrix", "levels": levels})

    def test_attack_fields_are_work_identity(self):
        base = parse_spec({"kind": "attack-matrix"})
        assert spec_digest(base) != spec_digest(
            parse_spec({"kind": "attack-matrix", "attack_seed": 1})
        )
        assert spec_digest(base) != spec_digest(
            parse_spec({"kind": "attack-matrix", "attack_samples": 13})
        )
        # scheduling metadata still excluded
        assert spec_digest(base) == spec_digest(
            parse_spec({"kind": "attack-matrix", "priority": 4})
        )
