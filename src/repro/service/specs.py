"""Job specifications: the JSON contract of ``POST /v1/jobs``.

A spec is a plain dict the daemon validates into a :class:`JobSpec`.
Three kinds exist today — ``sweep`` (the theta x adopter-set grid of
Figures 8/9), ``case-study`` (the Section-5 run), and
``attack-matrix`` (the scenario × policy × deployment-strategy grid of
:mod:`repro.experiments.attack_matrix`).  Everything that affects the
result is part of the spec; everything else (priority, deadline) is
scheduling metadata and excluded from the digests.

Digests are the service's identity scheme:

- :func:`spec_digest` identifies the *work* — two submissions with the
  same digest are the same job, so the scheduler coalesces them onto
  one execution and the store keys the job's sweep journal by it (a
  resubmitted job resumes its predecessor's cells after a restart);
- :func:`env_digest` identifies the *environment* (graph + traffic +
  policy) — the :class:`~repro.service.cache.ResultCache` scopes warmed
  arenas by it;
- :func:`cell_scope_digest` identifies everything that pins a sweep
  cell's value except ``(adopter set, theta)`` — the cache scopes
  shared cells by it, so overlapping grids share cells only when they
  would compute bit-identical ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

from repro.routing import backends as kernel_backends
from repro.routing.policy import available_policies, get_policy
from repro.security import scenarios as scenario_registry
from repro.service.errors import SpecError

#: spec kinds the executor knows how to run
JOB_KINDS = ("sweep", "case-study", "attack-matrix")

#: hard cap on submitted grid size (cells = thetas x adopter sets);
#: the daemon is a shared resource and a fat-fingered grid should be
#: rejected at submit time, not discovered hours later
MAX_CELLS = 4096

#: priority range (higher runs first; FIFO within a priority)
MIN_PRIORITY, MAX_PRIORITY = 0, 9


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """A validated, canonicalised job submission."""

    kind: str
    n: int
    seed: int
    x: float
    policy: str
    augmented: bool
    theta: float                     # case-study only
    thetas: tuple[float, ...]        # sweep only
    adopter_sets: tuple[str, ...]    # sweep only ((), i.e. all, by default)
    stub_breaks_ties: bool
    max_rounds: int
    scenarios: tuple[str, ...]       # attack-matrix only (() = all registered)
    strategies: tuple[str, ...]      # attack-matrix only (() = all registered)
    policies: tuple[str, ...]        # attack-matrix only (() = all registered)
    levels: tuple[float, ...]        # attack-matrix deployment-level ladder
    attack_samples: int              # attack-matrix (victim, attacker) pairs
    attack_seed: int                 # attack-matrix pair-sample seed
    priority: int
    deadline: float | None           # per-job wall-clock budget (seconds)
    memory_budget: int | None        # per-job budget (bytes)
    kernel_backend: str | None       # execution detail: results bit-identical


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _coerce_number(payload: Mapping[str, Any], key: str, kind: type, default):
    value = payload.get(key, default)
    try:
        return kind(value)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"spec field {key!r} must be a {kind.__name__}: {value!r}") from exc


def _canonical_names(
    payload: Mapping[str, Any], key: str, resolve
) -> tuple[str, ...]:
    """A tuple of registry names, aliases canonicalised via ``resolve``.

    Canonicalising at submit time keeps the digests — and hence
    coalescing and journal reuse — blind to spelling (``"hijack"`` and
    ``"origin_hijack"`` are the same work).  Unknown names raise
    :class:`~repro.service.errors.SpecError` here, not hours later.
    """
    raw = payload.get(key, ())
    _require(
        isinstance(raw, (list, tuple)) and all(isinstance(s, str) for s in raw),
        f"{key} must be an array of names",
    )
    try:
        names = tuple(resolve(name) for name in raw)
    except ValueError as exc:
        raise SpecError(f"{key}: {exc}") from exc
    _require(len(set(names)) == len(names), f"{key} must not repeat")
    return names


def parse_spec(payload: object) -> JobSpec:
    """Validate a submitted JSON payload into a :class:`JobSpec`.

    Raises :class:`~repro.service.errors.SpecError` (HTTP 400) on any
    unknown field, bad type, out-of-range value, or oversized grid —
    the submit path is the only place bad input can be rejected cheaply.
    """
    _require(isinstance(payload, Mapping), "job spec must be a JSON object")
    assert isinstance(payload, Mapping)  # for the type-checker
    known = {f.name for f in dataclasses.fields(JobSpec)}
    unknown = sorted(set(payload) - known)
    _require(not unknown, f"unknown spec fields: {', '.join(unknown)}")

    kind = payload.get("kind", "sweep")
    _require(kind in JOB_KINDS, f"spec kind must be one of {JOB_KINDS}, got {kind!r}")

    n = _coerce_number(payload, "n", int, 1000)
    _require(4 <= n <= 100_000, f"n must be in [4, 100000], got {n}")
    seed = _coerce_number(payload, "seed", int, 2011)
    x = _coerce_number(payload, "x", float, 0.10)
    _require(0.0 <= x <= 1.0, f"x must be in [0, 1], got {x}")

    policy = payload.get("policy", "security_3rd")
    _require(isinstance(policy, str), "policy must be a string")
    try:
        # canonicalise aliases ("gao-rexford" == "security_3rd") so the
        # digests — and hence coalescing and cache sharing — see one name
        policy = get_policy(policy).name
    except ValueError as exc:
        raise SpecError(str(exc)) from exc

    augmented = bool(payload.get("augmented", False))
    stub_breaks_ties = bool(payload.get("stub_breaks_ties", True))
    theta = _coerce_number(payload, "theta", float, 0.05)
    _require(theta >= 0.0, f"theta must be >= 0, got {theta}")

    raw_thetas = payload.get("thetas", (0.0, 0.05, 0.10, 0.20, 0.30, 0.50))
    _require(
        isinstance(raw_thetas, (list, tuple)) and len(raw_thetas) > 0,
        "thetas must be a non-empty array of numbers",
    )
    try:
        thetas = tuple(float(t) for t in raw_thetas)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"thetas must all be numbers: {raw_thetas!r}") from exc
    _require(all(t >= 0.0 for t in thetas), "thetas must all be >= 0")
    _require(len(set(thetas)) == len(thetas), "thetas must not repeat")

    raw_sets = payload.get("adopter_sets", ())
    _require(
        isinstance(raw_sets, (list, tuple))
        and all(isinstance(s, str) for s in raw_sets),
        "adopter_sets must be an array of adopter-set names",
    )
    adopter_sets = tuple(raw_sets)
    _require(
        len(set(adopter_sets)) == len(adopter_sets),
        "adopter_sets must not repeat",
    )

    scenarios = _canonical_names(
        payload, "scenarios", lambda name: scenario_registry.get_scenario(name).name
    )
    strategies = _canonical_names(
        payload, "strategies", lambda name: scenario_registry.get_strategy(name).name
    )
    policies = _canonical_names(
        payload, "policies", lambda name: get_policy(name).name
    )

    raw_levels = payload.get("levels", (0.0, 0.5, 1.0))
    _require(
        isinstance(raw_levels, (list, tuple)) and len(raw_levels) > 0,
        "levels must be a non-empty array of numbers",
    )
    try:
        levels = tuple(float(f) for f in raw_levels)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"levels must all be numbers: {raw_levels!r}") from exc
    _require(
        all(0.0 <= f <= 1.0 for f in levels), "levels must all be in [0, 1]"
    )
    _require(len(set(levels)) == len(levels), "levels must not repeat")

    attack_samples = _coerce_number(payload, "attack_samples", int, 12)
    _require(
        1 <= attack_samples <= 10_000,
        f"attack_samples must be in [1, 10000], got {attack_samples}",
    )
    attack_seed = _coerce_number(payload, "attack_seed", int, 0)

    if kind == "sweep":
        cells = len(thetas) * max(len(adopter_sets), 7)  # 7 = the full menu
        _require(
            cells <= MAX_CELLS,
            f"grid of {cells} cells exceeds the {MAX_CELLS}-cell limit",
        )
    if kind == "attack-matrix":
        cells = (
            (len(scenarios) or len(scenario_registry.available_scenarios()))
            * (len(strategies) or len(scenario_registry.available_strategies()))
            * (len(policies) or len(available_policies()))
            * len(levels)
        )
        _require(
            cells <= MAX_CELLS,
            f"matrix of {cells} cells exceeds the {MAX_CELLS}-cell limit",
        )

    max_rounds = _coerce_number(payload, "max_rounds", int, 100)
    _require(1 <= max_rounds <= 10_000, f"max_rounds must be in [1, 10000], got {max_rounds}")

    priority = _coerce_number(payload, "priority", int, 0)
    _require(
        MIN_PRIORITY <= priority <= MAX_PRIORITY,
        f"priority must be in [{MIN_PRIORITY}, {MAX_PRIORITY}], got {priority}",
    )

    deadline = payload.get("deadline")
    if deadline is not None:
        deadline = _coerce_number(payload, "deadline", float, None)
        _require(deadline > 0, f"deadline must be > 0 seconds, got {deadline}")
    memory_budget = payload.get("memory_budget")
    if memory_budget is not None:
        memory_budget = _coerce_number(payload, "memory_budget", int, None)
        _require(memory_budget > 0, f"memory_budget must be > 0 bytes, got {memory_budget}")

    kernel_backend = payload.get("kernel_backend")
    if kernel_backend is not None:
        _require(isinstance(kernel_backend, str), "kernel_backend must be a string")
        try:
            # reject unknown names at submit time; *unusable* known
            # backends are fine — the executor degrades to numpy
            kernel_backends.get_backend(kernel_backend)
        except ValueError as exc:
            raise SpecError(str(exc)) from exc

    return JobSpec(
        kind=kind, n=n, seed=seed, x=x, policy=policy, augmented=augmented,
        theta=theta, thetas=thetas, adopter_sets=adopter_sets,
        stub_breaks_ties=stub_breaks_ties, max_rounds=max_rounds,
        scenarios=scenarios, strategies=strategies, policies=policies,
        levels=levels, attack_samples=attack_samples, attack_seed=attack_seed,
        priority=priority, deadline=deadline, memory_budget=memory_budget,
        kernel_backend=kernel_backend,
    )


def spec_to_dict(spec: JobSpec) -> dict[str, Any]:
    """JSON form of a spec (round-trips through :func:`parse_spec`)."""
    payload = dataclasses.asdict(spec)
    payload["thetas"] = list(spec.thetas)
    payload["adopter_sets"] = list(spec.adopter_sets)
    payload["scenarios"] = list(spec.scenarios)
    payload["strategies"] = list(spec.strategies)
    payload["policies"] = list(spec.policies)
    payload["levels"] = list(spec.levels)
    return payload


def _digest(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: spec fields that are scheduling/execution metadata, not work identity
#: (kernel_backend is excluded because backends are bit-identical — the
#: same submission on a different backend is the same work and must
#: coalesce and share cached cells)
_NON_IDENTITY_FIELDS = ("priority", "deadline", "memory_budget", "kernel_backend")


def spec_digest(spec: JobSpec) -> str:
    """Identity of the *work*: everything except scheduling metadata.

    Two submissions differing only in priority/deadline coalesce onto
    one execution (the store keys sweep journals by this digest, so a
    resubmission after a crash resumes the first run's cells).
    """
    payload = spec_to_dict(spec)
    for field in _NON_IDENTITY_FIELDS:
        payload.pop(field, None)
    return _digest(payload)


def env_digest(spec: JobSpec) -> str:
    """Identity of the simulation environment (graph, traffic, policy)."""
    return _digest({
        "n": spec.n, "seed": spec.seed, "x": spec.x,
        "augmented": spec.augmented, "policy": spec.policy,
    })


def cell_scope_digest(spec: JobSpec) -> str:
    """Identity of everything pinning a sweep cell except (set, theta).

    Cells from two jobs may be shared exactly when this digest matches:
    same environment, same tie-break behaviour, same round cap.  The
    theta grid and adopter-set menu are deliberately *excluded* — that
    is the point of sharing across overlapping grids.
    """
    return _digest({
        "env": env_digest(spec),
        "stub_breaks_ties": spec.stub_breaks_ties,
        "max_rounds": spec.max_rounds,
    })
