"""CLI smoke tests (fast, tiny graphs)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("case-study", "sweep", "tiebreak", "cp-vs-tier1",
                    "turnoff", "graph-stats"):
            args = parser.parse_args([cmd, "--n", "50"])
            assert args.command == cmd
            assert args.n == 50

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_graph_stats(self, capsys):
        assert main(["graph-stats", "--n", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_tiebreak(self, capsys):
        assert main(["tiebreak", "--n", "60"]) == 0
        assert "tiebreak" in capsys.readouterr().out

    def test_case_study(self, capsys):
        assert main(["case-study", "--n", "60", "--theta", "0.05"]) == 0
        assert "early adopters" in capsys.readouterr().out
