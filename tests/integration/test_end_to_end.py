"""End-to-end integration: generate -> simulate -> measure -> compare.

These tests tie all the subsystems together the way the paper's
evaluation does, and pin the qualitative claims of §1.4:

1. market pressure can drive deployment (low theta -> mass adoption);
2. simplex S*BGP dominates at high theta;
3. well-connected early adopters beat random ones;
4. incoming-model turn-off incentives exist;
5. deployment never reaches 100%.
"""

from __future__ import annotations

import pytest

from repro.core.adopters import random_isps, top_degree_isps
from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import run_deployment
from repro.core.metrics import deployment_outcome
from repro.experiments.setup import build_environment
from repro.experiments.sweeps import run_sweep


@pytest.fixture(scope="module")
def env():
    return build_environment(n=400, seed=23, x=0.10)


class TestKeyInsights:
    def test_market_pressure_drives_deployment(self, env):
        result = run_deployment(
            env.graph, env.case_study_adopters(),
            SimulationConfig(theta=0.05), env.cache,
        )
        out = deployment_outcome(result)
        assert out.fraction_secure_ases > 0.5
        assert out.fraction_isps_by_market > 0.3

    def test_simplex_dominates_at_high_theta(self, env):
        result = run_deployment(
            env.graph, top_degree_isps(env.graph, 5),
            SimulationConfig(theta=0.50), env.cache,
        )
        secure = result.final_node_secure
        roles = env.graph.roles
        stub_secure = sum(
            1 for i in env.graph.stub_indices if secure[i]
        )
        isp_secure = sum(1 for i in env.graph.isp_indices if secure[i])
        if stub_secure + isp_secure > 0:
            # §6.5: the vast majority of secure ASes are simplex stubs
            assert stub_secure >= isp_secure

    def test_connected_adopters_beat_random(self, env):
        """Fig. 8 at moderate theta: top-degree sets out-recruit random
        sets of the same size."""
        k = 5
        cfg = SimulationConfig(theta=0.10)
        top = run_deployment(env.graph, top_degree_isps(env.graph, k), cfg, env.cache)
        rnd = run_deployment(env.graph, random_isps(env.graph, k, seed=3), cfg, env.cache)
        assert (
            top.final_node_secure.sum() >= rnd.final_node_secure.sum()
        )

    def test_never_total_deployment(self, env):
        """§1.4(5): 100% of ASes never become secure — BGP and S*BGP
        coexist.  Some ISPs (providers of exclusively single-homed
        stubs) face no competition and stay insecure at any theta > 0."""
        result = run_deployment(
            env.graph, env.case_study_adopters(),
            SimulationConfig(theta=0.05), env.cache,
        )
        assert result.final_node_secure.sum() < env.graph.n

    def test_incoming_model_terminates_or_oscillates(self, env):
        result = run_deployment(
            env.graph, env.case_study_adopters(),
            SimulationConfig(
                theta=0.05, utility_model=UtilityModel.INCOMING, max_rounds=40
            ),
            env.cache,
        )
        assert result.outcome.value in ("stable", "oscillation", "max-rounds")

    def test_sweep_is_reproducible(self, env):
        sets = {"top-3": top_degree_isps(env.graph, 3)}
        a = run_sweep(env, thetas=(0.05,), adopter_sets=sets)
        b = run_sweep(env, thetas=(0.05,), adopter_sets=sets)
        assert a[0].fraction_secure_ases == b[0].fraction_secure_ases
        assert a[0].num_rounds == b[0].num_rounds
