"""Tests for the policy model primitives."""

from __future__ import annotations

import numpy as np

from repro.routing.policy import (
    RouteClass,
    exportable_to,
    tie_hash,
    tie_hash_array,
)


class TestRouteClass:
    def test_local_preference_order(self):
        # LP: customer > peer > provider; SELF beats everything
        assert RouteClass.SELF > RouteClass.CUSTOMER > RouteClass.PEER > RouteClass.PROVIDER
        assert RouteClass.UNREACHABLE < RouteClass.PROVIDER


class TestTieHash:
    def test_deterministic(self):
        assert tie_hash(3, 7) == tie_hash(3, 7)

    def test_asymmetric(self):
        assert tie_hash(3, 7) != tie_hash(7, 3)

    def test_array_matches_scalar(self):
        nodes = np.array([1, 2, 3], dtype=np.uint64)
        cands = np.array([9, 8, 7], dtype=np.uint64)
        arr = tie_hash_array(nodes, cands)
        for n, c, h in zip(nodes, cands, arr):
            assert tie_hash(int(n), int(c)) == int(h)

    def test_spread(self):
        """Hashes should look uniform: no obvious collisions or order bias."""
        values = [tie_hash(0, c) for c in range(1000)]
        assert len(set(values)) == 1000
        low = sum(1 for a, b in zip(values, values[1:]) if a < b)
        assert 400 < low < 600


class TestExportRule:
    def test_everything_exports_to_customers(self):
        for rc in (RouteClass.CUSTOMER, RouteClass.PEER, RouteClass.PROVIDER, RouteClass.SELF):
            assert exportable_to(rc, neighbor_is_customer=True)

    def test_unreachable_never_exports(self):
        assert not exportable_to(RouteClass.UNREACHABLE, True)
        assert not exportable_to(RouteClass.UNREACHABLE, False)

    def test_gr2_to_peers_and_providers(self):
        assert exportable_to(RouteClass.CUSTOMER, False)
        assert exportable_to(RouteClass.SELF, False)
        assert not exportable_to(RouteClass.PEER, False)
        assert not exportable_to(RouteClass.PROVIDER, False)
