"""§8.3 / Theorem J.1: per-link deployment is a real (hard) choice.

The DILEMMA gadget gives a focal ISP one contested link: active, it
carries flow B's customer revenue; disabled, it triggers the Fig-13
remorse fallback and flow A pays instead.  Brute force over link
subsets shows the optimum flips with the flow weights — the interaction
that makes the general problem NP-hard — while under outgoing utility
full deployment is optimal (Theorem J.2).
"""

from __future__ import annotations

from repro.core.config import UtilityModel
from repro.core.perlink import best_link_deployment, utility_with_links
from repro.core.state import DeploymentState, StateDeriver
from repro.experiments.report import format_table
from repro.gadgets.dilemma import build_dilemma


def _evaluate(w_a: float, w_b: float):
    net = build_dilemma(w_a=w_a, w_b=w_b)
    g = net.graph
    deriver = StateDeriver(g, stub_breaks_ties=True)
    state = DeploymentState.initial(frozenset(g.index(a) for a in net.secure_asns))
    sec = deriver.node_secure(state)
    brk = deriver.breaks_ties(sec)
    x, up = g.index(net.x), g.index(net.up)
    u_on = utility_with_links(g, sec, brk, x, None, UtilityModel.INCOMING)
    u_off = utility_with_links(g, sec, brk, x, {x: {up}}, UtilityModel.INCOMING)
    best = best_link_deployment(g, sec, brk, x, UtilityModel.INCOMING)
    return net, u_on, u_off, (g.index(net.up) in best.disabled)


def test_perlink_dilemma(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: [_evaluate(100.0, 60.0), _evaluate(60.0, 400.0)],
        rounds=1, iterations=1,
    )
    rows = []
    for net, u_on, u_off, disables_up in results:
        rows.append([
            f"w_a={net.w_a:.0f} w_b={net.w_b:.0f}",
            f"{u_on:.0f}", f"{u_off:.0f}",
            "disable it" if disables_up else "keep it",
        ])
    with capsys.disabled():
        print()
        print(format_table(
            ["weights", "link on", "link off", "optimal for the x-up link"],
            rows, title="Per-link dilemma: one link, two flows, opposite pulls",
        ))
        print("  outgoing utility: Theorem J.2 says secure everything "
              "(asserted in tests/core/test_perlink.py)")

    (_, on1, off1, d1), (_, on2, off2, d2) = results
    assert off1 > on1 and d1        # remorse-heavy weights: turn it off
    assert on2 > off2 and not d2    # flow-B-heavy weights: keep it on
