"""Golden fixture for RPR008 (exception hierarchy rooted outside errors.py)."""


class BadRootError(Exception):  # expect: RPR008
    pass


class BadRuntimeRoot(RuntimeError):  # expect: RPR008
    pass


class WaivedError(Exception):  # repro-lint: disable=RPR008 -- fixture waiver
    pass


class CleanDerived(BadRootError):
    """Extending a project exception is fine anywhere."""


class CleanMixedBases(ValueError, BadRootError):
    """A builtin base is fine when a project exception anchors the class."""


class CleanPlain:
    pass
