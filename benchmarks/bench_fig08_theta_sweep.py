"""Figure 8: fraction of ASes (a) and ISPs (b) secure vs theta, per
early-adopter set (§6.3, §6.5).

Paper shapes to reproduce:

- theta <= 5%: ~85% of ASes secure for almost any adopter set;
- theta >= 10%: high-degree adopter sets clearly beat random/none;
- theta >= 30%: ISP adoption collapses (Fig 8b) and what security
  remains is mostly simplex stubs;
- some ISPs never deploy at any theta (~20% of ISPs in the paper).
"""

from __future__ import annotations

from benchmarks.conftest import sweep_cells
from repro.experiments.report import format_table


def test_fig08_theta_sweep(benchmark, env, capsys):
    cells = benchmark.pedantic(lambda: sweep_cells(env), rounds=1, iterations=1)

    rows = [
        [c.adopters, f"{c.theta:.2f}", f"{c.fraction_secure_ases:.3f}",
         f"{c.fraction_secure_isps:.3f}", f"{c.fraction_isps_by_market:.3f}",
         c.num_rounds]
        for c in cells
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["adopters", "theta", "frac ASes (8a)", "frac ISPs (8b)",
             "ISPs by market", "rounds"],
            rows, title="Fig 8: adoption vs theta and early-adopter set",
        ))

    by = {(c.adopters, c.theta): c for c in cells}
    low = [c for c in cells if c.theta <= 0.05 and c.adopters != "none"]
    assert max(c.fraction_secure_ases for c in low) > 0.5
    # adoption is non-increasing in theta for each adopter set
    for name in {c.adopters for c in cells}:
        series = [c.fraction_secure_ases for c in cells if c.adopters == name]
        assert series[0] >= series[-1] - 1e-9
    # ISP (8b) adoption collapses harder than AS (8a) adoption at high theta
    for c in cells:
        if c.theta >= 0.30:
            assert c.fraction_isps_by_market <= c.fraction_secure_ases + 1e-9
