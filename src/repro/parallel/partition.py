"""Destination partitioning for the map step (Appendix C.3).

The paper parallelised its simulations by mapping per-destination
routing-tree computations across a 200-node DryadLINQ cluster and
reducing the subtrees into per-ISP utilities.  These helpers split a
destination list into balanced partitions for the same decomposition.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def partition(items: Sequence[T], num_partitions: int) -> list[list[T]]:
    """Split ``items`` into ``num_partitions`` round-robin partitions.

    Round-robin (rather than contiguous chunks) balances load when work
    per item correlates with position, e.g. destinations sorted by
    degree.  Empty partitions are dropped.
    """
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    buckets: list[list[T]] = [[] for _ in range(num_partitions)]
    for k, item in enumerate(items):
        buckets[k % num_partitions].append(item)
    return [b for b in buckets if b]


def chunk(items: Sequence[T], chunk_size: int) -> list[list[T]]:
    """Split ``items`` into contiguous chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [list(items[i:i + chunk_size]) for i in range(0, len(items), chunk_size)]


def partitions_for_budget(
    num_items: int,
    default_partitions: int,
    per_item_bytes: int,
    budget_bytes: int | None,
) -> int:
    """Partition count whose per-partition working set fits the budget.

    The shared-memory warm path materialises one partition's structures
    per worker at a time; with ``budget_bytes`` set (the guard's memory
    share for in-flight partitions), the count grows above
    ``default_partitions`` until ``ceil(num_items / count) *
    per_item_bytes <= budget_bytes``.  Capped at one item per partition
    — below that there is nothing left to shrink.  ``None`` (no budget)
    returns the default unchanged.
    """
    if default_partitions < 1:
        raise ValueError(f"default_partitions must be >= 1, got {default_partitions}")
    if budget_bytes is None or num_items <= 0 or per_item_bytes <= 0:
        return default_partitions
    items_per_partition = max(1, budget_bytes // per_item_bytes)
    needed = -(-num_items // items_per_partition)  # ceil division
    return min(max(default_partitions, needed), num_items)
