"""Table 4 (Appendix D): Tier-1 vs CP degrees, original vs augmented.

Paper: on the augmented graph the five CPs' degrees rival or exceed the
largest Tier-1s, but (unlike Tier-1s) almost all their edges are
peerings and they provide no transit.  Shape: CP degree multiplies
under augmentation and is peering-dominated.
"""

from __future__ import annotations

from repro.experiments.report import format_table


def test_table4_degree_comparison(benchmark, env, env_augmented, capsys):
    def measure():
        tier1 = [(a, env.graph.degree(a), env_augmented.graph.degree(a))
                 for a in env.tier1_asns[:5]]
        cps = [(a, env.graph.degree(a), env_augmented.graph.degree(a))
               for a in env.cp_asns]
        return tier1, cps

    tier1, cps = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [["tier1", a, b, c] for a, b, c in tier1]
    rows += [["cp", a, b, c] for a, b, c in cps]
    with capsys.disabled():
        print()
        print(format_table(
            ["kind", "AS", "deg original", "deg augmented"],
            rows, title="Table 4: Tier-1 vs CP degrees",
        ))

    for asn, before, after in cps:
        assert after >= before  # augmentation only adds CP edges
        assert env_augmented.graph.customers_of(asn) == []  # no transit
    grew = sum(1 for _, before, after in cps if after >= 3 * max(1, before))
    assert grew >= 3  # most CPs gain several-fold connectivity
