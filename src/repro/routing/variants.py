"""Alternative routing policies (§8.3).

The paper's results hinge on the Appendix-A policy model and §8.3
speculates about two deviations:

- **shortest-path-first** ("we speculate that considering shortest path
  routing policy would lead to overly optimistic results; shortest-path
  routing certainly leads to shorter AS paths, and possibly also to
  larger tiebreak sets"): ranking ``SP > LP > SecP > TB`` instead of
  ``LP > SP > SecP > TB``; export still follows GR2 against the
  *selected* route;
- **sticky primaries** ("if a large fraction of multihomed ASes always
  use one provider as primary ... our current analysis is likely to be
  overly optimistic"): a fraction of ASes never exercise their
  equally-good alternatives, shrinking their tiebreak sets to a single
  fixed choice.

Both produce standard :class:`DestRouting` structures, so the entire
deployment game runs unchanged on top of them; the ablation benches
compare adoption under each.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.routing.compiled import CompiledGraph
from repro.routing.policy import POSITION_BITS, RouteClass, tie_hash_array
from repro.routing.tree import DestRouting
from repro.topology.graph import ASGraph

_SELF = int(RouteClass.SELF)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)
_UNREACHABLE = int(RouteClass.UNREACHABLE)


def compute_dest_routing_sp_first(
    graph: ASGraph, dest: int, compiled: CompiledGraph | None = None
) -> DestRouting:
    """Per-destination routing with ``SP > LP`` ranking (GR2 export).

    Selected routes are found by bucketed Dijkstra over unit weights:
    when a node is finalised, its selected class determines what it may
    export (everything to customers; only customer routes across
    peerings and to providers).  Among the minimum-length candidates a
    node prefers customer over peer over provider next hops (LP as the
    second criterion), and its tiebreak set is the candidates matching
    that (length, class) optimum.
    """
    n = graph.n
    dist = np.full(n, -1, dtype=np.int32)
    cls = np.full(n, _UNREACHABLE, dtype=np.int8)
    dist[dest] = 0
    cls[dest] = _SELF

    # candidates[v] -> list of (next_hop, class_at_v)
    candidates: dict[int, list[tuple[int, int]]] = defaultdict(list)
    buckets: dict[int, list[int]] = {0: [dest]}
    finalized = np.zeros(n, dtype=bool)
    level = 0
    max_level = 0
    while level <= max_level:
        for u in buckets.pop(level, ()):  # noqa: B909 - buckets mutated below
            if finalized[u]:
                continue
            finalized[u] = True
            if u != dest:
                # LP as the second criterion: the selected class is the
                # best among the minimum-length candidates, fixed now so
                # export decisions below can use it
                cls[u] = max(c for _, c in candidates[u])
            exports_everywhere = cls[u] in (_CUSTOMER, _SELF)
            du = int(dist[u])
            for v, class_at_v in _neighbor_views(graph, u):
                # GR2: u announces to v iff v is u's customer, or u's
                # selected route is a customer route / its own prefix
                v_is_customer_of_u = class_at_v == _PROVIDER
                if not (v_is_customer_of_u or exports_everywhere):
                    continue
                if finalized[v]:
                    continue
                cand = du + 1
                if dist[v] == -1 or cand < dist[v]:
                    dist[v] = cand
                    candidates[v] = [(u, class_at_v)]
                    buckets.setdefault(cand, []).append(v)
                    max_level = max(max_level, cand)
                elif cand == dist[v]:
                    candidates[v].append((u, class_at_v))
        level += 1

    order = np.flatnonzero(dist != -1).astype(np.int32)
    sort = np.lexsort((order, dist[order]))
    order = order[sort]
    row_of = np.full(n, -1, dtype=np.int32)
    row_of[order] = np.arange(len(order), dtype=np.int32)

    max_len = int(dist[order[-1]]) if len(order) else 0
    level_starts = np.searchsorted(
        dist[order], np.arange(max_len + 2), side="left"
    ).astype(np.int32)

    indptr = np.zeros(len(order) + 1, dtype=np.int64)
    flat: list[int] = []
    for row, v in enumerate(order):
        v = int(v)
        if v == dest:
            indptr[row + 1] = indptr[row]
            continue
        best_class = cls[v]
        chosen = sorted(u for u, c in candidates[v] if c == best_class)
        flat.extend(chosen)
        indptr[row + 1] = indptr[row] + len(chosen)

    return DestRouting(
        dest=dest,
        cls=cls,
        lengths=dist,
        order=order,
        row_of=row_of,
        level_starts=level_starts,
        indptr=indptr,
        cands=np.asarray(flat, dtype=np.int32),
    )


def _neighbor_views(graph: ASGraph, u: int):
    """Yield ``(neighbor, neighbor's class for a route via u)``."""
    for v in graph.customers[u]:
        yield v, _PROVIDER   # v reaches u as its provider
    for v in graph.providers[u]:
        yield v, _CUSTOMER   # v reaches u as its customer
    for v in graph.peers[u]:
        yield v, _PEER


def restrict_to_primary(
    dr: DestRouting, sticky: np.ndarray
) -> DestRouting:
    """Collapse sticky nodes' tiebreak sets to their fixed primary.

    ``sticky`` is a bool[n] mask.  The primary is the candidate the
    node's hash tie-break would pick in a security-free world, so the
    restriction never changes insecure routing — it only removes the
    competition SecP could have exploited.
    """
    order, indptr, cands = dr.order, dr.indptr, dr.cands
    new_cands: list[int] = []
    new_indptr = np.zeros(len(order) + 1, dtype=np.int64)
    for row, node in enumerate(order):
        node = int(node)
        cs = cands[indptr[row]:indptr[row + 1]]
        if len(cs) > 1 and sticky[node]:
            keys = tie_hash_array(
                np.full(len(cs), node, dtype=np.uint64), cs.astype(np.uint64)
            )
            keys = (keys & ~np.uint64((1 << POSITION_BITS) - 1)) | np.arange(
                len(cs), dtype=np.uint64
            )
            cs = cs[int(np.argmin(keys)):][:1]
        new_cands.extend(int(c) for c in cs)
        new_indptr[row + 1] = new_indptr[row] + len(cs)
    return DestRouting(
        dest=dr.dest,
        cls=dr.cls,
        lengths=dr.lengths,
        order=order,
        row_of=dr.row_of,
        level_starts=dr.level_starts,
        indptr=new_indptr,
        cands=np.asarray(new_cands, dtype=np.int32),
    )
