"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry model is deliberately two-tier:

- :data:`NULL_REGISTRY` (the default) hands out shared no-op
  instruments.  Instrumented hot paths — ``_play_round``, the routing
  cache hit path — pay one attribute lookup and one no-op call per
  event, which is within noise of un-instrumented code (asserted by
  ``tests/telemetry/test_overhead.py``).
- :class:`MetricsRegistry` (installed via :func:`set_registry` /
  :func:`use_registry`, e.g. by ``sbgp-sim --metrics-out``) records for
  real and snapshots to plain dicts, which merge across processes
  (counters sum, histograms add bucket-wise — see
  :mod:`repro.telemetry.export`) the same way the paper's cluster
  reduced per-machine partials.

Instruments are identified by dotted names (``routing.cache.hits``);
asking a registry twice for the same name returns the same instrument,
so call sites may re-resolve freely or cache handles, whichever reads
better.
"""

from __future__ import annotations

import contextlib
import math
import time
from typing import Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: default histogram bucket upper bounds, in seconds: sub-millisecond
#: cache hits through multi-minute sweep cells (last bucket is +inf).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, live workers)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram of observations (durations, sizes).

    ``bounds`` are inclusive upper bounds of the finite buckets; one
    implicit +inf bucket catches the rest, so ``counts`` has
    ``len(bounds) + 1`` slots.  Bucket-wise addition of two histograms
    with equal bounds is exact, which is what makes cross-process
    merging lossless.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name}: bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @contextlib.contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall time of a ``with`` block, in seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan


class MetricsRegistry:
    """A process-local, name-keyed collection of instruments.

    ``enabled`` is True; call sites that want to skip even the cost of
    a ``perf_counter`` pair in disabled mode branch on it.
    """

    enabled = True

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        elif metric.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name} re-registered with different bounds"
            )
        return metric

    def snapshot(self) -> dict:
        """Plain-dict snapshot (JSON-serialisable, mergeable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins — gauges describe a moment, not a total).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, data["bounds"])
            if list(hist.bounds) != [float(b) for b in data["bounds"]]:
                raise ValueError(f"histogram {name}: bucket bounds differ; cannot merge")
            for i, c in enumerate(data["counts"]):
                hist.counts[i] += c
            hist.total += data["sum"]
            hist.count += data["count"]


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram (the disabled mode)."""

    __slots__ = ()
    name = "<null>"
    value = 0.0
    bounds: tuple[float, ...] = ()
    counts: list[int] = []
    total = 0.0
    count = 0
    mean = math.nan

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self):
        return _NULL_CONTEXT


_NULL_CONTEXT = contextlib.nullcontext()
_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The default registry: every instrument is a shared no-op."""

    enabled = False

    def __init__(self):
        super().__init__()

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide active registry (no-op unless one was installed)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (None restores the no-op); returns the previous."""
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY  # repro-lint: disable=RPR016 -- single reference swap, atomic under the GIL; installed at process/worker startup before kernels run
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry` for tests and embedded callers."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
