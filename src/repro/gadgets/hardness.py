"""The set-cover reduction behind Theorem 6.1 (Appendix E, Figure 16).

Choosing the optimal early-adopter set is NP-hard — even to approximate
within a constant factor — by reduction from SET-COVER.  Given subsets
``S_1..S_m`` of a universe ``U`` and budget ``k``, the reduction builds:

- a destination stub ``d``, customer of every *gate* ISP ``s_i1``;
- per subset ``S_i``, the gate ``s_i1`` buying transit from a *carrier*
  ISP ``s_i2`` whose stub customers are the element stubs of ``S_i``;
- per element ``u``, a disjoint private fallback chain
  ``u <- f_u <- x_u -> d`` providing the equally-good default route the
  paper assumes is "preferable to all other routes".

Seeding gate ``s_i1`` secures ``d`` (simplex) and hands its carrier
``s_i2`` a secure route to sell: deploying secures the covered element
stubs, whose ``d``-bound traffic (parked on the fallback by default)
moves to the fully secure route — a guaranteed strict gain.  Unchosen
columns never gain, so the number of secure ASes at termination is
exactly ``1 + 2k + |covered elements|``: maximising adoption *is*
maximising coverage, and approximating it inherits SET-COVER's
inapproximability.

Two engineering notes, mirroring the paper's own assumptions:

- the paper pins default tie-breaks ("lowest AS number"); our engine
  hashes, so the builder pads the node-index space until every element
  stub's default choice is its fallback route;
- the count formula needs elements not to compete with each other
  through shared carriers, so instances should be *linear* hypergraphs
  (no two elements share more than one subset) — e.g. edge covers.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, Sequence

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation
from repro.routing.cache import RoutingCache
from repro.routing.policy import tie_hash
from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class SetCoverInstance:
    """A SET-COVER instance: cover ``universe`` using ``k`` subsets."""

    universe: tuple[int, ...]
    subsets: tuple[frozenset[int], ...]
    k: int

    def is_linear(self) -> bool:
        """True if no two elements co-occur in more than one subset."""
        seen: set[tuple[int, int]] = set()
        for subset in self.subsets:
            for a, b in itertools.combinations(sorted(subset), 2):
                if (a, b) in seen:
                    return False
                seen.add((a, b))
        return True

    def coverage(self, chosen: Iterable[int]) -> int:
        """Number of elements covered by the chosen subset indices."""
        covered: set[int] = set()
        for idx in chosen:
            covered |= self.subsets[idx]
        return len(covered & set(self.universe))

    def best_cover(self) -> tuple[tuple[int, ...], int]:
        """Brute-force optimal ``k``-subset cover (exponential)."""
        best: tuple[int, ...] = ()
        best_cov = -1
        for combo in itertools.combinations(range(len(self.subsets)), self.k):
            cov = self.coverage(combo)
            if cov > best_cov:
                best, best_cov = combo, cov
        return best, best_cov

    def greedy_cover(self) -> tuple[tuple[int, ...], int]:
        """Classic greedy set cover (the ln-n approximation)."""
        chosen: list[int] = []
        covered: set[int] = set()
        for _ in range(self.k):
            best_idx, best_gain = None, 0
            for idx, subset in enumerate(self.subsets):
                if idx in chosen:
                    continue
                gain = len((subset - covered) & set(self.universe))
                if gain > best_gain:
                    best_idx, best_gain = idx, gain
            if best_idx is None:
                break
            chosen.append(best_idx)
            covered |= self.subsets[best_idx]
        return tuple(chosen), len(covered & set(self.universe))


@dataclasses.dataclass(frozen=True)
class SetCoverNetwork:
    """The reduction graph plus the bookkeeping to read results back."""

    graph: ASGraph
    instance: SetCoverInstance
    dest: int                      # the shared destination stub (AS number)
    gates: tuple[int, ...]         # s_i1 per subset
    carriers: tuple[int, ...]      # s_i2 per subset
    elements: dict[int, int]       # universe element -> stub AS number

    def gate_for(self, subset_idx: int) -> int:
        return self.gates[subset_idx]

    def expected_secure_count(self, chosen_subsets: Sequence[int]) -> int:
        """The reduction's arithmetic: ``1 + 2k + covered``."""
        return 1 + 2 * len(set(chosen_subsets)) + self.instance.coverage(chosen_subsets)

    def secure_count_for(
        self,
        chosen_subsets: Sequence[int],
        cache: RoutingCache | None = None,
        theta: float = 0.0,
    ) -> int:
        """Run the deployment process seeded with the chosen gates and
        return the number of secure ASes at termination."""
        adopters = [self.gates[i] for i in chosen_subsets]
        config = SimulationConfig(
            theta=theta, utility_model=UtilityModel.OUTGOING, max_rounds=20
        )
        sim = DeploymentSimulation(self.graph, adopters, config, cache)
        return int(sim.run().final_node_secure.sum())


def build_set_cover_network(instance: SetCoverInstance) -> SetCoverNetwork:
    """Materialise the Appendix-E reduction for ``instance``."""
    graph = ASGraph()
    next_asn = [0]

    def new_as() -> int:
        next_asn[0] += 1
        graph.add_as(next_asn[0])
        return next_asn[0]

    dest = new_as()
    gates: list[int] = []
    carriers: list[int] = []
    for _ in instance.subsets:
        gates.append(new_as())
        carriers.append(new_as())
    for gate, carrier in zip(gates, carriers):
        graph.add_customer_provider(provider=gate, customer=dest)
        graph.add_customer_provider(provider=carrier, customer=gate)

    elements: dict[int, int] = {}
    for u in instance.universe:
        covering = [
            carriers[i] for i, subset in enumerate(instance.subsets) if u in subset
        ]
        fallback = new_as()   # f_u: the element's private default provider
        relay = new_as()      # x_u: links the fallback chain to d
        graph.add_customer_provider(provider=relay, customer=fallback)
        graph.add_customer_provider(provider=relay, customer=dest)

        # Pad the index space until the element's hash tie-break parks
        # its default d-route on the fallback (the paper instead pins
        # tie-breaks by AS number).
        fallback_idx = graph.index(fallback)
        covering_idx = [graph.index(c) for c in covering]
        for _ in range(512):
            candidate_idx = graph.n  # index the element stub would get
            h_fallback = tie_hash(candidate_idx, fallback_idx)
            if all(h_fallback < tie_hash(candidate_idx, ci) for ci in covering_idx):
                break
            new_as()  # pad: an isolated AS shifts the next index
        else:  # pragma: no cover - probabilistically unreachable
            raise RuntimeError(f"could not steer tie-break for element {u}")

        stub = new_as()
        elements[u] = stub
        graph.add_customer_provider(provider=fallback, customer=stub)
        for carrier in covering:
            graph.add_customer_provider(provider=carrier, customer=stub)

    graph.validate()
    return SetCoverNetwork(
        graph=graph,
        instance=instance,
        dest=dest,
        gates=tuple(gates),
        carriers=tuple(carriers),
        elements=elements,
    )
