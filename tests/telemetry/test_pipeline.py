"""Telemetry threaded through the pipeline: sim, sweep, cache, engine."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.dynamics import DeploymentSimulation
from repro.experiments.setup import build_environment
from repro.experiments.sweeps import run_sweep
from repro.parallel.engine import ProcessEngine, parallel_warm_cache
from repro.routing.cache import RoutingCache
from repro.telemetry.metrics import MetricsRegistry, use_registry
from repro.telemetry.spans import Tracer, use_tracer


@pytest.fixture
def registry():
    with use_registry(MetricsRegistry()) as reg:
        yield reg


@pytest.fixture
def tracer():
    with use_tracer(Tracer()) as t:
        yield t


class TestSimulationInstrumentation:
    def test_round_metrics_and_spans(self, medium_env, registry, tracer):
        config = SimulationConfig(theta=0.05, max_rounds=20)
        sim = DeploymentSimulation(
            medium_env.graph, medium_env.case_study_adopters(), config,
            medium_env.cache,
        )
        result = sim.run()
        snap = registry.snapshot()
        assert snap["counters"]["sim.rounds"] == result.num_rounds
        assert snap["counters"]["sim.flips_on"] == sum(
            len(r.turned_on) for r in result.rounds
        )
        assert snap["counters"]["sim.decision_makers_evaluated"] == sum(
            len(r.projections) for r in result.rounds
        )
        assert snap["histograms"]["sim.round_seconds"]["count"] == result.num_rounds
        assert snap["histograms"]["sim.projection_seconds"]["count"] == result.num_rounds
        names = [e.name for e in tracer.events()]
        assert names.count("round") == result.num_rounds
        assert names.count("simulation") == 1

    def test_cache_hit_counters_flow(self, medium_env, registry):
        config = SimulationConfig(theta=0.05, max_rounds=5)
        DeploymentSimulation(
            medium_env.graph, medium_env.case_study_adopters(), config,
            medium_env.cache,
        ).run()
        snap = registry.snapshot()
        assert snap["counters"]["routing.cache.hits"] > 0


class TestSweepInstrumentation:
    def test_sweep_cell_round_span_nesting(self, medium_env, registry, tracer):
        cells = run_sweep(
            medium_env, thetas=(0.0, 0.5),
            adopter_sets={"top-5": medium_env.adopter_sets()["top-5"]},
        )
        snap = registry.snapshot()
        assert snap["counters"]["sweep.cells"] == len(cells) == 2
        assert snap["histograms"]["sweep.cell_seconds"]["count"] == 2
        events = {e.name: e for e in tracer.events()}
        sweep, cell, round_ = events["sweep"], events["cell"], events["round"]
        # spans nest by interval containment: sweep > cell > round
        for outer, inner in ((sweep, cell), (cell, round_)):
            assert outer.start_us <= inner.start_us
            assert (outer.start_us + outer.duration_us
                    >= inner.start_us + inner.duration_us)
        assert cell.args["adopters"] == "top-5"


class TestCacheStats:
    def test_stats_counts_hits_misses_and_builds(self, small_graph):
        cache = RoutingCache(small_graph)
        cache.dest_routing(0)
        cache.dest_routing(0)
        cache.dest_routing(1)
        stats = cache.stats()
        assert stats.misses == stats.builds == 2
        assert stats.hits == 1
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.warm_seconds > 0
        assert stats.cached == 2
        assert stats.total == small_graph.n
        assert stats.cached_fraction == pytest.approx(2 / small_graph.n)

    def test_parallel_warm_counts_installs(self, small_graph):
        cache = RoutingCache(small_graph, destinations=list(range(6)))
        parallel_warm_cache(cache, workers=2)
        stats = cache.stats()
        assert stats.installs == 6
        assert stats.cached_fraction == 1.0
        assert stats.warm_seconds > 0


class TestCrossProcessMerge:
    def test_worker_counters_merge_into_parent(self, registry):
        env = build_environment(n=120, seed=9, warm=False, workers=1)
        parallel_warm_cache(env.cache, workers=2)
        snap = registry.snapshot()
        # every tree was built in a worker, yet the parent registry has them
        assert snap["counters"]["routing.tree_builds"] == env.graph.n
        assert snap["histograms"]["routing.tree_build_seconds"]["count"] == env.graph.n
        assert snap["counters"]["engine.maps"] == 1
        assert snap["counters"]["engine.dispatched"] >= 1
        assert "engine.partition_queue_wait_seconds" in snap["histograms"]

    def test_disabled_parent_ships_no_snapshots(self):
        # without an active registry the engine must not fabricate metrics
        engine = ProcessEngine(workers=2)
        assert engine.map(lambda x: x * 2, list(range(8))) == [
            0, 2, 4, 6, 8, 10, 12, 14,
        ]
