"""Cross-cutting hypothesis properties over random AS graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import DeploymentState, StateDeriver
from repro.routing.fast_tree import compute_tree, subtree_weights
from repro.routing.tree import compute_dest_routing
from repro.topology.serialization import dumps_as_rel, loads_as_rel

from tests.strategies import as_graphs, graphs_with_security


@given(as_graphs(with_cps=True))
@settings(max_examples=60, deadline=None)
def test_as_rel_roundtrip(graph):
    """Serialisation preserves edges, relationships and CP markers."""
    restored = loads_as_rel(dumps_as_rel(graph))
    assert sorted(restored.edges()) == sorted(graph.edges())
    assert restored.cp_asns & set(restored.asns) == graph.cp_asns & set(graph.asns)


@given(graphs_with_security())
@settings(max_examples=50, deadline=None)
def test_subtree_weight_conservation(graph_and_secure):
    """W[v] equals the sum of children subtrees plus their own weights,
    and W[dest] equals all reachable weight except the destination's."""
    graph, secure_list = graph_and_secure
    secure = np.zeros(graph.n, dtype=bool)
    secure[secure_list] = True
    for dest in range(0, graph.n, max(1, graph.n // 3)):
        dr = compute_dest_routing(graph, dest)
        tree = compute_tree(dr, secure, secure)
        w = subtree_weights(dr, tree, graph.weights)

        reachable = [int(v) for v in dr.order if v != dest]
        expected_root = sum(float(graph.weights[v]) for v in reachable)
        assert w[dest] == pytest.approx(expected_root)

        children: dict[int, list[int]] = {}
        for v in reachable:
            children.setdefault(int(tree.choice[v]), []).append(v)
        for v in dr.order:
            v = int(v)
            expected = sum(w[c] + float(graph.weights[c]) for c in children.get(v, []))
            assert w[v] == pytest.approx(expected)


@given(graphs_with_security(), st.integers(0, 10 ** 6))
@settings(max_examples=50, deadline=None)
def test_security_is_monotone_in_deployment(graph_and_secure, extra_seed):
    """Making one more node secure never shrinks the set of secure
    (source, destination) pairs — the engine of Theorem H.1's Case III."""
    graph, secure_list = graph_and_secure
    secure = np.zeros(graph.n, dtype=bool)
    secure[secure_list] = True
    insecure_nodes = np.flatnonzero(~secure)
    if not len(insecure_nodes):
        return
    newly = int(insecure_nodes[extra_seed % len(insecure_nodes)])
    more = secure.copy()
    more[newly] = True

    for dest in range(0, graph.n, max(1, graph.n // 3)):
        dr = compute_dest_routing(graph, dest)
        before = compute_tree(dr, secure, secure)
        after = compute_tree(dr, more, more)
        assert (after.secure | ~before.secure).all(), (
            f"dest {dest}: securing node {newly} broke a secure pair"
        )


@given(as_graphs(min_nodes=5), st.data())
@settings(max_examples=40, deadline=None)
def test_simplex_stub_derivation_monotone(graph, data):
    """More deployers can only secure more nodes."""
    deriver = StateDeriver(graph)
    candidates = list(range(graph.n))
    some = data.draw(
        st.lists(st.sampled_from(candidates), max_size=graph.n, unique=True)
    )
    fewer = DeploymentState(frozenset(some[: len(some) // 2]), frozenset())
    more = DeploymentState(frozenset(some), frozenset())
    sec_fewer = deriver.node_secure(fewer)
    sec_more = deriver.node_secure(more)
    assert (sec_more | ~sec_fewer).all()


@given(graphs_with_security())
@settings(max_examples=30, deadline=None)
def test_tree_has_no_cycles(graph_and_secure):
    """Every resolved routing tree is acyclic with paths ending at the
    destination."""
    graph, secure_list = graph_and_secure
    secure = np.zeros(graph.n, dtype=bool)
    secure[secure_list] = True
    for dest in range(0, graph.n, max(1, graph.n // 4)):
        dr = compute_dest_routing(graph, dest)
        tree = compute_tree(dr, secure, secure)
        for src in dr.order:
            path = tree.path_from(int(src))  # raises on a cycle
            if path:
                assert path[-1] == dest
