"""Journal-backed job store: the daemon's durable state.

Layout under one *store directory* (``--store``)::

    store/
      jobs.jsonl            # lifecycle journal (repro.run-journal/1)
      journals/<digest>.jsonl   # per-spec sweep journals (cell resume)
      results/<job-id>.json # completed results (atomic writes)
      endpoint.json         # actual bound host/port (written by daemon)
      metrics.json          # final snapshot flushed at shutdown

Every lifecycle transition (submitted, running, done, failed,
cancelled) is one fsynced append to ``jobs.jsonl``; on startup the
store replays it and *recovers*: jobs that were ``running`` or
``queued`` when the process died come back as ``queued``, and because
each job's sweep journal is keyed by its **spec digest** (not its job
id), the re-run replays every cell the dead run finished.  SIGKILL the
daemon mid-sweep, restart it, and the job completes with only the
interrupted cell recomputed — the same contract ``--resume`` gives the
CLI, lifted to the service.

Progress events are deliberately *not* journaled: the sweep journal
already holds the durable form of progress (the cells themselves), so
``jobs.jsonl`` stays small and the event ring stays an in-memory,
per-process view.
"""

from __future__ import annotations

import logging
import threading
import time
from pathlib import Path
from typing import Any

from repro.runtime.atomic import atomic_write_json, load_checked_json
from repro.runtime.journal import RunJournal
from repro.service.errors import JobNotFoundError, JobStateError
from repro.service.specs import JobSpec, parse_spec, spec_digest, spec_to_dict
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

#: journal ``kind`` of ``jobs.jsonl``
JOBS_JOURNAL_KIND = "service-jobs"

#: ``format`` marker of per-job result files
RESULT_FORMAT = "repro.service-result/1"

#: states a job moves through (terminal: done/failed/cancelled)
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
ACTIVE_STATES = frozenset({"queued", "running"})
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: per-job event ring size (events older than this are dropped from the
#: stream; their effects survive in the job record itself)
MAX_EVENTS = 1000


class Job:
    """One submitted job: spec + lifecycle + progress + event ring."""

    def __init__(self, job_id: str, seq: int, spec: JobSpec, digest: str):
        self.id = job_id
        self.seq = seq
        self.spec = spec
        self.digest = digest
        self.state = "queued"
        self.error: str | None = None
        self.progress_done = 0
        self.progress_total = 0
        self.coalesced = 0          # extra submissions folded onto this job
        self.events: list[dict[str, Any]] = []
        self._event_seq = 0

    def add_event(self, kind: str, **fields: Any) -> None:
        self._event_seq += 1
        event = {"seq": self._event_seq, "event": kind, "ts": time.time(), **fields}
        self.events.append(event)
        if len(self.events) > MAX_EVENTS:
            del self.events[: len(self.events) - MAX_EVENTS]

    def events_since(self, since: int) -> list[dict[str, Any]]:
        """Events with seq > ``since`` (the /events polling contract)."""
        return [e for e in self.events if e["seq"] > since]

    def to_dict(self) -> dict[str, Any]:
        """The JSON form ``GET /v1/jobs/{id}`` returns."""
        return {
            "id": self.id,
            "state": self.state,
            "digest": self.digest,
            "kind": self.spec.kind,
            "priority": self.spec.priority,
            "spec": spec_to_dict(self.spec),
            "error": self.error,
            "progress": {"done": self.progress_done, "total": self.progress_total},
            "coalesced": self.coalesced,
        }


class JobStore:
    """Durable job table over one store directory (thread-safe)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "journals").mkdir(exist_ok=True)
        (self.root / "results").mkdir(exist_ok=True)
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._by_digest: dict[str, str] = {}   # digest -> active job id
        self._next_seq = 1
        self._journal = RunJournal(self.root / "jobs.jsonl")
        self._journal.ensure_header(JOBS_JOURNAL_KIND, {})
        self._replay()

    # -- startup recovery ---------------------------------------------

    def _replay(self) -> None:
        recovered = 0
        for record in self._journal.iter_records():
            kind = record.get("type")
            if kind == "submitted":
                spec = parse_spec(record["spec"])
                job = Job(record["id"], int(record["seq"]), spec, record["digest"])
                self._jobs[job.id] = job
                self._next_seq = max(self._next_seq, job.seq + 1)
            elif kind == "state":
                job = self._jobs.get(record.get("id", ""))
                if job is not None:
                    job.state = record["state"]
                    job.error = record.get("error")
        for job in self._jobs.values():
            if job.state == "running":
                # the previous process died mid-job; its finished cells
                # are in the spec-digest journal, so re-running resumes
                job.state = "queued"
                job.add_event("recovered", note="daemon restarted mid-job")
                recovered += 1
            if job.state in ACTIVE_STATES:
                self._by_digest[job.digest] = job.id
        if recovered:
            log.warning("recovered %d in-flight job(s) from a previous daemon run", recovered)
            get_registry().counter("service.store.recovered_jobs").inc(recovered)

    # -- submission ----------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Register a job; returns ``(job, created)``.

        An *active* (queued/running) job with the same spec digest
        absorbs the submission instead — both submitters poll the same
        job id and the work runs once.  Terminal jobs do not coalesce:
        resubmitting a finished spec makes a fresh job (which will still
        resume the finished journal and complete near-instantly).
        """
        digest = spec_digest(spec)
        with self._lock:
            existing_id = self._by_digest.get(digest)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                existing.coalesced += 1
                existing.add_event("coalesced", submissions=existing.coalesced)
                get_registry().counter("service.store.coalesced").inc()
                return existing, False
            seq = self._next_seq
            self._next_seq += 1
            job = Job(f"j{seq:06d}-{digest[:8]}", seq, spec, digest)
            self._journal.append({
                "type": "submitted", "id": job.id, "seq": seq,
                "digest": digest, "spec": spec_to_dict(spec),
            })
            self._jobs[job.id] = job
            self._by_digest[digest] = job.id
            job.add_event("submitted", state="queued")
            get_registry().counter("service.store.submitted").inc()
            return job, True

    # -- lookups -------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(job_id)
            return job

    def jobs(self) -> list[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def resumable(self) -> list[Job]:
        """Queued jobs in scheduling order (priority desc, then FIFO)."""
        with self._lock:
            queued = [j for j in self._jobs.values() if j.state == "queued"]
            return sorted(queued, key=lambda j: (-j.spec.priority, j.seq))

    # -- lifecycle -----------------------------------------------------

    def set_state(self, job_id: str, state: str, error: str | None = None) -> Job:
        """Record one lifecycle transition (journaled, fsynced)."""
        if state not in JOB_STATES:
            raise JobStateError(f"unknown job state {state!r}")
        with self._lock:
            job = self.get(job_id)
            if job.state in TERMINAL_STATES:
                raise JobStateError(
                    f"job {job_id} is already {job.state}; cannot move to {state}"
                )
            self._journal.append({
                "type": "state", "id": job_id, "state": state, "error": error,
            })
            job.state = state
            job.error = error
            job.add_event("state", state=state, error=error)
            if state in TERMINAL_STATES:
                self._by_digest.pop(job.digest, None)
            get_registry().counter(f"service.jobs.{state}").inc()
            return job

    def record_progress(self, job_id: str, done: int, total: int, source: str) -> None:
        """Note cell-level progress (in-memory; cells are the durable form)."""
        with self._lock:
            job = self.get(job_id)
            job.progress_done = done
            job.progress_total = total
            job.add_event("progress", done=done, total=total, source=source)

    # -- artifacts -----------------------------------------------------

    def sweep_journal_path(self, job: Job) -> Path:
        """The per-spec sweep journal (digest-keyed, so restarts resume)."""
        return self.root / "journals" / f"{job.digest}.jsonl"

    def result_path(self, job: Job) -> Path:
        return self.root / "results" / f"{job.id}.json"

    def write_result(self, job: Job, payload: dict[str, Any]) -> Path:
        """Atomically persist a finished job's result document."""
        path = self.result_path(job)
        atomic_write_json(path, {"format": RESULT_FORMAT, "id": job.id, **payload})
        return path

    def load_result(self, job: Job) -> dict[str, Any]:
        """A finished job's result document (409 via JobStateError else)."""
        if job.state != "done":
            raise JobStateError(f"job {job.id} is {job.state}, not done; no result yet")
        return load_checked_json(self.result_path(job), expected_format=RESULT_FORMAT)
