"""Kernel benchmark: one full map-reduce round over all destinations.

The paper's equivalent ("one round typically completed in 10-35
minutes" on a 200-node cluster at 36K ASes) is the unit of simulation
cost; everything else is projections on top of it.
"""

from __future__ import annotations

import pytest

from repro.core.config import UtilityModel
from repro.core.engine import compute_round_data
from repro.core.state import DeploymentState, StateDeriver


@pytest.fixture(scope="module")
def round_inputs(env):
    deriver = StateDeriver(env.graph, compiled=env.cache.compiled)
    adopters = frozenset(env.graph.index(a) for a in env.case_study_adopters())
    return deriver, DeploymentState.initial(adopters)


def test_kernel_round_outgoing(benchmark, env, round_inputs):
    deriver, state = round_inputs
    rd = benchmark(
        lambda: compute_round_data(env.cache, deriver, state, UtilityModel.OUTGOING)
    )
    assert rd.utilities.sum() > 0


def test_kernel_round_incoming(benchmark, env, round_inputs):
    deriver, state = round_inputs
    rd = benchmark(
        lambda: compute_round_data(env.cache, deriver, state, UtilityModel.INCOMING)
    )
    assert rd.utilities.sum() > 0
