"""Typed errors for the simulation service.

The HTTP layer maps these onto status codes (``SpecError`` -> 400,
``JobNotFoundError`` -> 404, ``JobStateError`` -> 409) so handler code
never invents ad-hoc status logic, and the scheduler distinguishes "the
job asked to stop" (:class:`JobCancelled`) from a genuine failure.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for simulation-service failures."""


class SpecError(ServiceError, ValueError):
    """A submitted job spec is malformed or out of range.

    Subclasses :class:`ValueError` so spec validation helpers compose
    with plain ``float()``/``int()`` coercion failures.
    """


class JobNotFoundError(ServiceError, KeyError):
    """No job with the requested id exists in the store."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(f"no such job: {job_id!r}")


class JobStateError(ServiceError):
    """A job operation is invalid in the job's current state.

    Cancelling a finished job, or fetching the result of one that has
    not completed, lands here — a conflict, not a missing resource.
    """


class JobCancelled(ServiceError):
    """Raised inside a running job at its next cell boundary.

    Cooperative, like :class:`~repro.runtime.errors.DeadlineExceeded`:
    the executor's progress callback raises this between cells, so every
    finished cell is already journaled and a *suspended* (as opposed to
    cancelled) job resumes losslessly on daemon restart.
    """

    def __init__(self, job_id: str, reason: str = "cancelled"):
        self.job_id = job_id
        self.reason = reason
        super().__init__(f"job {job_id} {reason}")
