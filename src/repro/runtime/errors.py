"""Typed errors for the resilience layer.

Every recoverable failure in persistence, journaling, and the parallel
engine surfaces as one of these instead of a raw ``json.JSONDecodeError``
or a dead process pool, so callers can distinguish "the file is damaged"
from "the file is from a different run" from "this one input is bad".
"""

from __future__ import annotations


class PersistenceError(Exception):
    """Base class for result/journal persistence failures."""


class CorruptFileError(PersistenceError):
    """A file exists but its bytes are damaged.

    Raised for truncated JSON, undecodable text, and checksum
    mismatches.  The original cause (if any) is chained as
    ``__cause__``.
    """

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")


class SchemaError(PersistenceError, ValueError):
    """A file parsed cleanly but does not match the expected format.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old untyped format check keep working.
    """


class JournalError(PersistenceError):
    """Base class for run-journal failures."""


class JournalCorruptError(JournalError):
    """A journal line (other than a torn final line) failed validation."""

    def __init__(self, path, lineno: int, reason: str):
        self.path = str(path)
        self.lineno = lineno
        self.reason = reason
        super().__init__(f"{self.path}:{lineno}: {reason}")


class JournalMismatchError(JournalError):
    """An existing journal belongs to a different run configuration.

    Resuming into a journal whose header metadata differs from the
    current run would silently mix incompatible cells; this error names
    the first differing key instead.
    """


class ItemFailedError(Exception):
    """One mapped item kept failing even in the serial fallback.

    The parallel engine retries a failing partition at finer and finer
    granularity; once a single item has exhausted its retries it is run
    in-process, and if it *still* raises, that exception is chained here
    with the item identified — one poisoned input is reported, not
    silently dropped or blamed on the pool.
    """

    def __init__(self, index: int, item: object, cause: BaseException | str):
        self.index = index
        self.item = item
        detail = cause if isinstance(cause, str) else f"{type(cause).__name__}: {cause}"
        super().__init__(f"item {index} ({item!r}) failed after retries: {detail}")
