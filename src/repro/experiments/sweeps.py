"""Theta sweeps over early-adopter sets (Figures 8, 9, 11, 14).

One sweep = run the deployment game to termination for every
(early-adopter set, theta) pair and record adoption and security
outcomes.  The cache is shared across all runs on the same graph, so
each extra cell costs only the game rounds.

Sweeps are the repo's longest computations (the paper reran this grid
for every parameterisation, hours per run), so they checkpoint: pass a
:class:`~repro.runtime.journal.RunJournal` (or a path) as ``journal``
and every finished cell is durably appended; a rerun with the same
journal — ``sbgp-sim sweep --journal runs/fig8.jsonl --resume`` —
replays completed cells instead of recomputing them, yielding the same
cell list an uninterrupted run would have produced.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Iterable, Protocol, Sequence

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation
from repro.core.engine import compute_round_data
from repro.core.metrics import (
    deployment_outcome,
    projection_accuracy,
    security_snapshot,
)
from repro.core.state import StateDeriver
from repro.experiments.setup import ExperimentEnv
from repro.runtime.errors import SchemaError
from repro.runtime.guard import current_guard
from repro.runtime.journal import RunJournal, coerce_journal
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer

#: the theta grid of Fig. 8
DEFAULT_THETAS: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20, 0.30, 0.50)

#: journal ``kind`` for sweep checkpoints
SWEEP_JOURNAL_KIND = "sweep"


class CellCache(Protocol):
    """Cross-run cell store consulted before computing a sweep cell.

    The simulation service binds one of these to its
    :class:`~repro.service.cache.ResultCache` so two users sweeping
    overlapping grids share finished cells.  Implementations own the
    key scope (the service keys by environment + grid digests); the
    sweep only contributes ``(adopter-set name, theta)``.
    """

    def get(self, adopters: str, theta: float) -> "SweepCell | None": ...

    def put(self, adopters: str, theta: float, cell: "SweepCell") -> None: ...


#: progress callback: ``(cell, source)`` with source one of
#: ``"computed"`` / ``"replayed"`` (from this run's journal) /
#: ``"cache"`` (from a cross-run CellCache).  Raising from the callback
#: aborts the sweep at a cell boundary — everything finished is already
#: journaled, which is exactly how the service implements cooperative
#: job cancellation and graceful suspend.
CellCallback = Callable[["SweepCell", str], None]


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """Outcome of one (adopter set, theta) simulation."""

    adopters: str
    theta: float
    stub_breaks_ties: bool
    fraction_secure_ases: float    # Fig. 8a
    fraction_secure_isps: float    # Fig. 8b
    fraction_isps_by_market: float  # §6.5 market-vs-simplex split
    fraction_secure_paths: float   # Fig. 9
    f_squared: float               # Fig. 9 reference
    num_rounds: int
    outcome: str
    projection_ratios: tuple[float, ...] = ()  # Fig. 14 (theta = 0 runs)
    #: attack impact at the final state, one ``(scenario, mean fooled,
    #: max fooled)`` triple per requested scenario (empty when the
    #: sweep's attack axis is off)
    attack: tuple[tuple[str, float, float], ...] = ()


def cell_to_dict(cell: SweepCell) -> dict:
    """JSON-serialisable form of a cell (for the sweep journal)."""
    payload = dataclasses.asdict(cell)
    payload["projection_ratios"] = list(cell.projection_ratios)
    payload["attack"] = [list(t) for t in cell.attack]
    return payload


def cell_from_dict(payload: dict) -> SweepCell:
    """Inverse of :func:`cell_to_dict`."""
    fields = {f.name for f in dataclasses.fields(SweepCell)}
    kwargs = {k: v for k, v in payload.items() if k in fields}
    kwargs["projection_ratios"] = tuple(kwargs.get("projection_ratios", ()))
    kwargs["attack"] = tuple(
        (str(s), float(mean), float(peak))
        for s, mean, peak in kwargs.get("attack", ())
    )
    return SweepCell(**kwargs)


def _sweep_meta(
    env: ExperimentEnv,
    thetas: Sequence[float],
    adopter_sets: dict[str, list[int]],
    stub_breaks_ties: bool,
    utility_model: UtilityModel,
    collect_projection_accuracy: bool,
    max_rounds: int,
    attack_scenarios: Sequence[str] = (),
    attack_samples: int = 0,
    attack_seed: int = 0,
) -> dict:
    """Header metadata identifying one sweep grid.

    Resuming a journal whose metadata differs raises
    :class:`~repro.runtime.errors.JournalMismatchError` — mixing cells
    from different grids would silently corrupt figures.  The attack
    keys appear only when the attack axis is on, so journals from
    before the axis existed still resume byte-identically.
    """
    meta = {
        "num_ases": env.graph.n,
        "policy": env.cache.policy_name,
        "thetas": [float(t) for t in thetas],
        "adopter_sets": {
            name: sorted(asns) for name, asns in sorted(adopter_sets.items())
        },
        "stub_breaks_ties": stub_breaks_ties,
        "utility_model": utility_model.value,
        "collect_projection_accuracy": collect_projection_accuracy,
        "max_rounds": max_rounds,
    }
    if attack_scenarios:
        meta["attack_scenarios"] = sorted(attack_scenarios)
        meta["attack_samples"] = int(attack_samples)
        meta["attack_seed"] = int(attack_seed)
    return meta


def _run_cell(
    env: ExperimentEnv,
    name: str,
    adopters: list[int],
    theta: float,
    stub_breaks_ties: bool,
    utility_model: UtilityModel,
    collect_projection_accuracy: bool,
    max_rounds: int,
    attack_scenarios: Sequence[str] = (),
    attack_samples: int = 8,
    attack_seed: int = 0,
) -> SweepCell:
    """Simulate one (adopter set, theta) pair to termination."""
    config = SimulationConfig(
        theta=theta,
        utility_model=utility_model,
        stub_breaks_ties=stub_breaks_ties,
        max_rounds=max_rounds,
        policy=env.cache.policy_name,
    )
    sim = DeploymentSimulation(env.graph, adopters, config, env.cache)
    result = sim.run()
    outcome = deployment_outcome(result)
    deriver = StateDeriver(env.graph, stub_breaks_ties, env.cache.compiled)
    final_rd = compute_round_data(
        env.cache,
        deriver,
        result.final_state,
        utility_model,
    )
    snapshot = security_snapshot(env.graph, final_rd)
    ratios: tuple[float, ...] = ()
    if collect_projection_accuracy:
        ratios = tuple(projection_accuracy(result))
    attack: tuple[tuple[str, float, float], ...] = ()
    if attack_scenarios:
        from repro.security.metrics import impact_for_state

        impacts = []
        for scenario in attack_scenarios:
            impact = impact_for_state(
                env.graph, deriver, result.final_state,
                samples=attack_samples, seed=attack_seed,
                scenario=scenario, policy=env.cache.policy_name,
            )
            impacts.append(
                (scenario, impact.mean_fraction_fooled, impact.max_fraction_fooled)
            )
        attack = tuple(impacts)
    return SweepCell(
        adopters=name,
        theta=theta,
        stub_breaks_ties=stub_breaks_ties,
        fraction_secure_ases=outcome.fraction_secure_ases,
        fraction_secure_isps=outcome.fraction_secure_isps,
        fraction_isps_by_market=outcome.fraction_isps_by_market,
        fraction_secure_paths=snapshot.fraction_secure_paths,
        f_squared=snapshot.f_squared,
        num_rounds=outcome.num_rounds,
        outcome=outcome.outcome,
        projection_ratios=ratios,
        attack=attack,
    )


def _check_journal_policy(journal: RunJournal, policy: str) -> None:
    """Refuse to resume a sweep journal recorded under another policy.

    Cells computed under different routing policies are not comparable;
    replaying them into one grid would silently corrupt every figure.
    Raised *before* the generic header check so the error names the two
    policies instead of a bag of mismatched metadata keys.
    """
    if not journal.exists():
        return
    header = journal.header()
    if header is None or header.get("kind") != SWEEP_JOURNAL_KIND:
        return  # kind mismatch is ensure_header's to report
    recorded = (header.get("meta") or {}).get("policy", "security_3rd")
    if recorded != policy:
        raise SchemaError(
            f"{journal.path}: sweep journal was recorded under routing "
            f"policy {recorded!r} but this run uses {policy!r}; resuming "
            "would mix cells from incompatible rankings — use a fresh "
            "journal path (or rebuild the environment with the recorded "
            "policy)"
        )


def run_sweep(
    env: ExperimentEnv,
    thetas: Sequence[float] = DEFAULT_THETAS,
    adopter_sets: dict[str, list[int]] | None = None,
    stub_breaks_ties: bool = True,
    utility_model: UtilityModel = UtilityModel.OUTGOING,
    collect_projection_accuracy: bool = False,
    max_rounds: int = 100,
    journal: RunJournal | str | Path | None = None,
    cell_cache: CellCache | None = None,
    on_cell: CellCallback | None = None,
    attack_scenarios: Sequence[str] = (),
    attack_samples: int = 8,
    attack_seed: int = 0,
) -> list[SweepCell]:
    """Run the full (adopter set x theta) grid and return its cells.

    With a ``journal``, each completed cell is durably appended as it
    finishes, and cells already present (from an interrupted earlier
    run) are replayed instead of recomputed — the returned list is
    identical to an uninterrupted run's.

    A ``cell_cache`` (see :class:`CellCache`) is consulted before each
    computation: hits are adopted verbatim (and still journaled, so
    resume stays complete) and misses are published after computing.
    ``on_cell`` observes every finished cell with its provenance.

    ``attack_scenarios`` turns on the sweep's attack axis: each cell's
    final state is additionally attacked under every named scenario
    (``attack_samples`` seeded pairs, batched kernel) and the impacts
    land in :attr:`SweepCell.attack`.  The axis participates in the
    journal header, so a journal recorded with a different axis refuses
    to resume.
    """
    if attack_scenarios:
        from repro.security.scenarios import get_scenario

        attack_scenarios = [get_scenario(s).name for s in attack_scenarios]
    adopter_sets = adopter_sets or env.adopter_sets()
    journal = coerce_journal(journal)
    done: dict[tuple[str, float], SweepCell] = {}
    if journal is not None:
        _check_journal_policy(journal, env.cache.policy_name)
        journal.ensure_header(
            SWEEP_JOURNAL_KIND,
            _sweep_meta(
                env, thetas, adopter_sets, stub_breaks_ties,
                utility_model, collect_projection_accuracy, max_rounds,
                attack_scenarios, attack_samples, attack_seed,
            ),
        )
        for record in journal.iter_records():
            if record.get("type") == "cell":
                cell = cell_from_dict(record["cell"])
                done[(cell.adopters, cell.theta)] = cell

    registry = get_registry()
    tracer = get_tracer()
    guard = current_guard()
    cell_timer = registry.histogram("sweep.cell_seconds")
    cells: list[SweepCell] = []
    with tracer.span("sweep", cells=len(adopter_sets) * len(thetas)):
        for name, adopters in adopter_sets.items():
            for theta in thetas:
                replayed = done.get((name, float(theta)))
                if replayed is not None:
                    registry.counter("sweep.cells_replayed").inc()
                    cells.append(replayed)
                    if on_cell is not None:
                        on_cell(replayed, "replayed")
                    continue
                # cell boundary: everything finished so far is in the
                # journal, so DeadlineExceeded here resumes losslessly
                guard.check_deadline(f"sweep cell ({name}, theta={float(theta):g})")
                shared = (
                    cell_cache.get(name, float(theta))
                    if cell_cache is not None else None
                )
                if shared is not None:
                    # a cross-run hit is journaled like a computed cell,
                    # so this run's journal stays a complete resume record
                    registry.counter("sweep.cells_from_cache").inc()
                    if journal is not None:
                        journal.append({"type": "cell", "cell": cell_to_dict(shared)})
                    cells.append(shared)
                    if on_cell is not None:
                        on_cell(shared, "cache")
                    continue
                with tracer.span("cell", adopters=name, theta=float(theta)), \
                        cell_timer.time():
                    cell = _run_cell(
                        env, name, adopters, theta, stub_breaks_ties,
                        utility_model, collect_projection_accuracy, max_rounds,
                        attack_scenarios, attack_samples, attack_seed,
                    )
                registry.counter("sweep.cells").inc()
                if journal is not None:
                    journal.append({"type": "cell", "cell": cell_to_dict(cell)})
                if cell_cache is not None:
                    cell_cache.put(name, float(theta), cell)
                cells.append(cell)
                if on_cell is not None:
                    on_cell(cell, "computed")
    return cells


def stub_tiebreak_comparison(
    env: ExperimentEnv,
    thetas: Sequence[float] = DEFAULT_THETAS,
    adopter_sets: dict[str, list[int]] | None = None,
) -> dict[bool, list[SweepCell]]:
    """Fig. 11: the same sweep with stubs breaking ties or ignoring
    security — the paper finds the outcomes nearly identical."""
    return {
        breaks: run_sweep(env, thetas, adopter_sets, stub_breaks_ties=breaks)
        for breaks in (True, False)
    }


def cells_to_rows(cells: Iterable[SweepCell]) -> list[list[object]]:
    """Rows for :func:`repro.experiments.report.format_table`."""
    return [
        [
            c.adopters,
            f"{c.theta:.2f}",
            f"{c.fraction_secure_ases:.3f}",
            f"{c.fraction_secure_isps:.3f}",
            f"{c.fraction_secure_paths:.3f}",
            f"{c.f_squared:.3f}",
            c.num_rounds,
            c.outcome,
        ]
        for c in cells
    ]
