"""Layer-2 package: importing layer 1 downward is fine."""

from repro.base import FOUNDATION


def helper() -> int:
    return FOUNDATION


def late_helper() -> int:
    return FOUNDATION + 1


TypeOnly = int
