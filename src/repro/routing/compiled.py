"""Compiled (CSR) form of the AS graph for vectorised routing.

:class:`CompiledGraph` freezes an :class:`~repro.topology.graph.ASGraph`
into flat numpy arrays so that the per-destination route computation
(three passes + tiebreak-set construction) runs as a handful of numpy
operations over edge arrays instead of Python loops.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from repro.topology.graph import ASGraph


def _csr(adjacency: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    counts = np.fromiter((len(a) for a in adjacency), dtype=np.int64, count=len(adjacency))
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    idx = np.fromiter(
        itertools.chain.from_iterable(adjacency), dtype=np.int32, count=total
    )
    return indptr, idx


def _flat_src(indptr: np.ndarray) -> np.ndarray:
    """Source node per CSR entry (np.repeat over row sizes)."""
    return np.repeat(
        np.arange(len(indptr) - 1, dtype=np.int32), np.diff(indptr)
    )


@dataclasses.dataclass(frozen=True)
class CompiledGraph:
    """Immutable CSR view of an AS graph (see module docstring)."""

    n: int
    cust_indptr: np.ndarray
    cust_idx: np.ndarray
    prov_indptr: np.ndarray
    prov_idx: np.ndarray
    peer_indptr: np.ndarray
    peer_idx: np.ndarray
    cust_src: np.ndarray  # owner per customer-CSR entry
    prov_src: np.ndarray
    peer_src: np.ndarray

    @classmethod
    def from_graph(cls, graph: ASGraph) -> "CompiledGraph":
        cust_indptr, cust_idx = _csr(graph.customers)
        prov_indptr, prov_idx = _csr(graph.providers)
        peer_indptr, peer_idx = _csr(graph.peers)
        return cls(
            n=graph.n,
            cust_indptr=cust_indptr,
            cust_idx=cust_idx,
            prov_indptr=prov_indptr,
            prov_idx=prov_idx,
            peer_indptr=peer_indptr,
            peer_idx=peer_idx,
            cust_src=_flat_src(cust_indptr),
            prov_src=_flat_src(prov_indptr),
            peer_src=_flat_src(peer_indptr),
        )


def gather_neighbors(indptr: np.ndarray, idx: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Concatenate ``idx[indptr[v]:indptr[v+1]]`` for every ``v`` in ``nodes``."""
    counts = (indptr[nodes + 1] - indptr[nodes]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return idx[0:0]
    starts = indptr[nodes].astype(np.int64)
    base = np.repeat(starts, counts)
    cum = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cum, counts)
    return idx[base + offsets]
