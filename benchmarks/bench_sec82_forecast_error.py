"""§8.2: how good are *local* utility projections?

The paper proposes that ISPs forecast deployment gains by listening to
neighbors' S*BGP messages or running "shadow configurations" with
cooperative neighbors, and says estimation error eps should be folded
into the threshold (theta ± eps).  The bench measures eps as a function
of the shadow-cooperation horizon: 0 = the ISP alone, 1 = immediate
neighbors re-decide, 2 = neighbors-of-neighbors, etc.

Shape to report: error decays rapidly with horizon — a one-hop shadow
configuration already estimates within a few percent, consistent with
the paper's observation (§8.1/Fig 14) that projections are excellent.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import UtilityModel
from repro.core.engine import compute_round_data
from repro.core.forecast import forecast_error_study
from repro.core.state import DeploymentState, StateDeriver
from repro.experiments.report import format_table

HORIZONS = (0, 1, 2, 4)
NUM_ISPS = 25


def test_sec82_forecast_error(benchmark, env, capsys):
    def measure():
        deriver = StateDeriver(env.graph, compiled=env.cache.compiled)
        adopters = frozenset(
            env.graph.index(a) for a in env.case_study_adopters()
        )
        state = DeploymentState.initial(adopters)
        rd = compute_round_data(env.cache, deriver, state, UtilityModel.OUTGOING)
        isps = [i for i in env.graph.isp_indices if i not in adopters][:NUM_ISPS]
        rows = []
        for horizon in HORIZONS:
            fcs = forecast_error_study(env.cache, deriver, rd, isps, horizon=horizon)
            eps = np.array([abs(f.epsilon) for f in fcs])
            rows.append((horizon, float(eps.mean()), float(eps.max())))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["shadow horizon", "mean |eps|", "max |eps|"],
            [[h, f"{m:.4f}", f"{x:.4f}"] for h, m, x in rows],
            title="Sec 8.2: local-forecast error vs shadow-configuration depth",
        ))
        print("  fold eps into theta: a 1-hop shadow config costs a few "
              "percent of threshold accuracy")

    by = {h: m for h, m, _ in rows}
    assert by[HORIZONS[-1]] <= by[0] + 1e-9       # deeper shadows, less error
    assert by[HORIZONS[-1]] < 0.02                # near-exact at depth 4
