"""The repo must satisfy its own invariants: src/scripts/benchmarks lint clean.

This is the acceptance criterion for the analysis subsystem and the
regression guard for every invariant from PRs 1-4: a new raw write, an
unseeded RNG draw, a cache poke or a stale waiver anywhere in the
production tree fails this test (and the CI lint job) immediately.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_production_tree_lints_clean():
    roots = [REPO_ROOT / "src", REPO_ROOT / "scripts", REPO_ROOT / "benchmarks"]
    result = lint_paths(roots)
    assert result.files_checked > 100  # sanity: the walk really covered the tree
    report = "\n".join(f.format_text() for f in result.findings)
    assert not result.findings, f"project invariants violated:\n{report}"
