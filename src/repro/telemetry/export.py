"""Snapshot export: merge, Prometheus text, files, summary tables.

A *snapshot* is the plain-dict form produced by
:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`::

    {"counters": {...}, "gauges": {...},
     "histograms": {name: {"bounds": [...], "counts": [...],
                           "sum": s, "count": n}}}

Snapshots are the unit of cross-process flow: each
:class:`~repro.parallel.engine.ProcessEngine` worker snapshots its own
registry and ships it back with its partition results; the parent folds
them in with :func:`merge_snapshots` semantics (counters and histogram
buckets sum, gauges last-write-wins) — the same reduce the paper's
cluster applied to per-machine partials.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable

from repro.runtime.atomic import atomic_write_json, load_checked_json

__all__ = [
    "METRICS_FORMAT",
    "merge_snapshots",
    "render_prometheus",
    "write_metrics",
    "load_metrics",
    "summary_rows",
]

#: ``format`` marker embedded in metrics files (validated on load).
METRICS_FORMAT = "repro.metrics/1"


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold snapshots into one: counters sum, histograms add bucket-wise.

    Gauges take the last snapshot's value.  Histograms under the same
    name must share bucket bounds (they do, by construction: both sides
    run the same instrumentation); differing bounds raise ``ValueError``
    rather than merging lossily.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, data in snap.get("histograms", {}).items():
            into = merged["histograms"].get(name)
            if into is None:
                merged["histograms"][name] = {
                    "bounds": list(data["bounds"]),
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
                continue
            if into["bounds"] != list(data["bounds"]):
                raise ValueError(
                    f"histogram {name}: bucket bounds differ across snapshots"
                )
            into["counts"] = [a + b for a, b in zip(into["counts"], data["counts"])]
            into["sum"] += data["sum"]
            into["count"] += data["count"]
    return merged


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    return repr(value) if isinstance(value, float) and value % 1 else str(int(value))


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Dotted metric names become underscore-separated
    (``routing.cache.hits`` -> ``repro_routing_cache_hits``); histogram
    buckets render cumulatively with the standard ``le`` label.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        full = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full}_total {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        full = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_prom_value(value)}")
    for name, data in snapshot.get("histograms", {}).items():
        full = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {full} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append(f'{full}_bucket{{le="{_prom_value(float(bound))}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{full}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{full}_sum {data['sum']}")
        lines.append(f"{full}_count {data['count']}")
    return "\n".join(lines) + "\n"


def write_metrics(path: str | Path, snapshot: dict) -> None:
    """Atomically write a snapshot as checksummed JSON (loadable back)."""
    atomic_write_json(path, {"format": METRICS_FORMAT, **snapshot})


def load_metrics(path: str | Path) -> dict:
    """Load a :func:`write_metrics` file back into snapshot form."""
    payload = load_checked_json(path, expected_format=METRICS_FORMAT)
    return {
        "counters": payload.get("counters", {}),
        "gauges": payload.get("gauges", {}),
        "histograms": payload.get("histograms", {}),
    }


def summary_rows(snapshot: dict) -> list[list[object]]:
    """Rows for :func:`repro.experiments.report.format_table`.

    One row per instrument: counters show their total, gauges their
    value, histograms count/mean/max-bucket — the one-screen view the
    CLI prints after a telemetry-enabled run.
    """
    rows: list[list[object]] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append([name, "counter", _prom_value(value), ""])
    for name, value in snapshot.get("gauges", {}).items():
        rows.append([name, "gauge", _prom_value(value), ""])
    for name, data in snapshot.get("histograms", {}).items():
        count = data["count"]
        mean = data["sum"] / count if count else 0.0
        rows.append([name, "histogram", str(count), f"mean {mean:.4f}s"])
    return rows
