"""Buyer's remorse: an ISP with an incentive to disable S*BGP (Fig. 13).

Reconstruction of the paper's AS-4755 example under the incoming
utility model.  A content provider (Akamai) reaches the focal ISP's
stub customers two ways:

- through the ISP's *provider* (NTT) — fully secure when the ISP runs
  S*BGP, so the secure CP prefers it; traffic arrives on a provider
  edge and earns the ISP nothing;
- through one of the ISP's *customers* — insecure, but when the ISP
  turns S*BGP off the CP's ordinary tie-break falls back to it, and the
  same traffic now arrives on a customer edge and pays.

Turning S*BGP *off* therefore raises the ISP's incoming utility — the
paper's strongest warning about requiring security to influence route
selection.
"""

from __future__ import annotations

import dataclasses

from repro.routing.policy import tie_hash
from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class BuyersRemorseNetwork:
    """The Figure-13 construction.

    - ``cp``: secure content provider (Akamai, weight ``w_cp``);
    - ``upstream``: secure transit provider of the focal ISP (NTT);
    - ``focal``: the ISP with the turn-off incentive (AS 4755);
    - ``fallback``: the focal ISP's customer carrying the insecure
      alternative (AS 9498);
    - ``stubs``: the focal ISP's stub customers (the 24 destinations).
    """

    graph: ASGraph
    cp: int
    upstream: int
    focal: int
    fallback: int
    stubs: tuple[int, ...]


def build_buyers_remorse(num_stubs: int = 24, cp_weight: float = 821.0) -> BuyersRemorseNetwork:
    """Construct the AS-4755 scenario.

    ``cp_weight=821`` matches the paper's Akamai weight at ``x = 10%``.

    The CP is multihomed to ``upstream`` and ``fallback`` so that both
     3-hop provider routes to each stub are equally good; the ordinary
    tie-break must favour the ``fallback`` route, so AS numbers are
    chosen (searched) to satisfy that hash ordering, mirroring the
    paper's "Akamai will run his usual tie break algorithms, which in
    our simulation came up in favor of AS 9498".
    """
    # indices after insertion: cp=0, upstream=1, focal=2, fallback=3.
    # tie-break uses dense indices; require H(cp, fallback) < H(cp, upstream).
    if not tie_hash(0, 3) < tie_hash(0, 1):  # pragma: no cover - fixed hashes
        raise AssertionError(
            "tie-break hash no longer favours the fallback route; "
            "swap the insertion order of upstream/fallback"
        )
    cp, upstream, focal, fallback = 20940, 2914, 4755, 9498
    graph = ASGraph(cp_asns=[cp])
    for asn in (cp, upstream, focal, fallback):
        graph.add_as(asn)
    graph.add_customer_provider(provider=upstream, customer=cp)
    graph.add_customer_provider(provider=fallback, customer=cp)
    graph.add_customer_provider(provider=upstream, customer=focal)
    graph.add_customer_provider(provider=focal, customer=fallback)

    stubs = []
    for k in range(num_stubs):
        asn = 45000 + k
        graph.add_as(asn)
        graph.add_customer_provider(provider=focal, customer=asn)
        stubs.append(asn)

    graph.validate()
    graph.set_weight(cp, cp_weight)
    return BuyersRemorseNetwork(
        graph=graph,
        cp=cp,
        upstream=upstream,
        focal=focal,
        fallback=fallback,
        stubs=tuple(stubs),
    )
