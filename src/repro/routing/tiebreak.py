"""Tiebreak-set statistics (Section 6.6, Figure 10).

The tiebreak set of a (source, destination) pair is the set of
equally-good interdomain routes among which the SecP criterion chooses.
Its size measures the competition available to secure ISPs: the paper
finds a mean of ~1.2 across all pairs (1.30 for ISPs, 1.16 for stubs)
and that only ~20% of pairs have more than one candidate — yet that
suffices to drive deployment.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Callable, Iterable

from repro.routing.tree import DestRouting, compute_dest_routing
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole


@dataclasses.dataclass(frozen=True)
class TiebreakStats:
    """Distribution of tiebreak-set sizes across source-destination pairs."""

    histogram: dict[int, int]      # size -> number of (src, dest) pairs
    mean: float
    mean_isp: float
    mean_stub: float
    multi_path_fraction: float     # pairs with more than one candidate
    multi_path_fraction_isp: float

    def ccdf(self) -> list[tuple[int, float]]:
        """Complementary CDF points ``(size, P[size >= s])`` for plotting."""
        total = sum(self.histogram.values())
        if total == 0:
            return []
        out = []
        acc = 0
        for size in sorted(self.histogram, reverse=True):
            acc += self.histogram[size]
            out.append((size, acc / total))
        out.reverse()
        return out


def collect_tiebreak_stats(
    graph: ASGraph,
    destinations: Iterable[int] | None = None,
    dest_routing: Callable[[int], DestRouting] | None = None,
) -> TiebreakStats:
    """Tiebreak-set statistics over all sources and the given destinations.

    ``destinations`` defaults to every node; pass a sample for speed.
    ``dest_routing`` lets callers supply cached :class:`DestRouting`
    structures.
    """
    if destinations is None:
        destinations = range(graph.n)
    if dest_routing is None:
        dest_routing = lambda d: compute_dest_routing(graph, d)  # noqa: E731

    roles = graph.roles
    hist: Counter[int] = Counter()
    total = 0.0
    count = 0
    isp_total = 0.0
    isp_count = 0
    isp_multi = 0
    stub_total = 0.0
    stub_count = 0
    multi = 0

    for dest in destinations:
        dr = dest_routing(dest)
        sizes = dr.tiebreak_sizes()
        src_roles = roles[dr.order]
        for size, role, node in zip(sizes, src_roles, dr.order):
            if node == dest:
                continue
            size = int(size)
            hist[size] += 1
            total += size
            count += 1
            if size > 1:
                multi += 1
            if role == ASRole.ISP:
                isp_total += size
                isp_count += 1
                if size > 1:
                    isp_multi += 1
            elif role == ASRole.STUB:
                stub_total += size
                stub_count += 1

    return TiebreakStats(
        histogram=dict(hist),
        mean=total / count if count else 0.0,
        mean_isp=isp_total / isp_count if isp_count else 0.0,
        mean_stub=stub_total / stub_count if stub_count else 0.0,
        multi_path_fraction=multi / count if count else 0.0,
        multi_path_fraction_isp=isp_multi / isp_count if isp_count else 0.0,
    )


def security_sensitive_decision_fraction(graph: ASGraph, stats: TiebreakStats) -> float:
    """The §6.7 headline number.

    Only ISPs need to apply SecP (15% of ASes) and only their multi-path
    tiebreak sets give SecP anything to do, so the fraction of routing
    decisions that security influences is

        ``(#ISPs / #ASes) * P[ISP tiebreak set > 1]``

    which the paper evaluates to ``0.15 * 0.23 ~= 3.5%``.
    """
    isp_fraction = len(graph.isp_indices) / graph.n if graph.n else 0.0
    return isp_fraction * stats.multi_path_fraction_isp


def mean_path_length(graph: ASGraph, destinations: Iterable[int] | None = None) -> float:
    """Mean selected-route length over all reachable (src, dest) pairs."""
    if destinations is None:
        destinations = range(graph.n)
    total = 0.0
    count = 0
    for dest in destinations:
        dr = compute_dest_routing(graph, dest)
        lengths = dr.lengths[dr.order]
        total += float(lengths.sum())
        count += max(0, len(dr.order) - 1)  # exclude the destination itself
    return total / count if count else 0.0
