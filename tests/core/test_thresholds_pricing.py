"""Tests for heterogeneous thresholds (§8.2) and pricing models (§8.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adopters import cps_plus_top_isps
from repro.core.config import SimulationConfig
from repro.core.dynamics import run_deployment
from repro.core.pricing import LINEAR_PRICING, Pricing, PricingModel
from repro.core.thresholds import (
    degree_scaled_thresholds,
    lognormal_thresholds,
    uniform_thresholds,
)


class TestThresholdGenerators:
    def test_uniform(self, small_graph):
        t = uniform_thresholds(small_graph, 0.1)
        assert (t == 0.1).all()
        with pytest.raises(ValueError):
            uniform_thresholds(small_graph, -1)

    def test_lognormal_median(self, small_graph):
        t = lognormal_thresholds(small_graph, 0.05, sigma=0.5, seed=3)
        assert np.median(t) == pytest.approx(0.05, rel=0.3)
        assert t.std() > 0
        with pytest.raises(ValueError):
            lognormal_thresholds(small_graph, -0.1)

    def test_lognormal_zero_sigma_is_uniform(self, small_graph):
        t = lognormal_thresholds(small_graph, 0.05, sigma=0.0)
        assert np.allclose(t, 0.05)

    def test_degree_scaled_monotone(self, small_graph):
        t = degree_scaled_thresholds(small_graph, 0.05, exponent=0.5)
        degrees = [small_graph.degree_of_index(i) for i in range(small_graph.n)]
        hi = int(np.argmax(degrees))
        lo = int(np.argmin(degrees))
        assert t[hi] >= t[lo]

    def test_deterministic(self, small_graph):
        a = lognormal_thresholds(small_graph, 0.05, seed=1)
        b = lognormal_thresholds(small_graph, 0.05, seed=1)
        assert (a == b).all()


class TestPricing:
    def test_linear_is_identity(self):
        assert LINEAR_PRICING.revenue(123.4) == 123.4

    def test_tiered_steps(self):
        p = Pricing(model=PricingModel.TIERED, tier=10.0)
        assert p.revenue(0.0) == 0.0
        assert p.revenue(0.1) == 10.0
        assert p.revenue(10.0) == 10.0
        assert p.revenue(10.1) == 20.0

    def test_concave(self):
        p = Pricing(model=PricingModel.CONCAVE, alpha=0.5)
        assert p.revenue(100.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Pricing(tier=0)
        with pytest.raises(ValueError):
            Pricing(alpha=0)
        with pytest.raises(ValueError):
            LINEAR_PRICING.revenue(-1)

    def test_improves_rule(self):
        assert LINEAR_PRICING.improves(100, 106, theta=0.05)
        assert not LINEAR_PRICING.improves(100, 105, theta=0.05)
        tier = Pricing(model=PricingModel.TIERED, tier=50.0)
        # a within-tier gain earns no extra revenue
        assert not tier.improves(10, 30, theta=0.0)
        assert tier.improves(10, 60, theta=0.0)


class TestDynamicsIntegration:
    def test_uniform_thresholds_match_scalar_theta(self, small_graph, small_cache):
        adopters = cps_plus_top_isps(small_graph, 3)
        cfg = SimulationConfig(theta=0.05)
        a = run_deployment(small_graph, adopters, cfg, small_cache)
        b = run_deployment(
            small_graph, adopters, cfg, small_cache,
            thresholds=uniform_thresholds(small_graph, 0.05),
        )
        assert a.final_state.deployers == b.final_state.deployers

    def test_threshold_length_validated(self, small_graph, small_cache):
        with pytest.raises(ValueError):
            run_deployment(
                small_graph, [], SimulationConfig(), small_cache,
                thresholds=np.array([0.1]),
            )

    def test_higher_thresholds_less_adoption(self, small_graph, small_cache):
        adopters = cps_plus_top_isps(small_graph, 3)
        lo = run_deployment(
            small_graph, adopters, SimulationConfig(theta=0.0), small_cache,
            thresholds=uniform_thresholds(small_graph, 0.02),
        )
        hi = run_deployment(
            small_graph, adopters, SimulationConfig(theta=0.0), small_cache,
            thresholds=uniform_thresholds(small_graph, 0.60),
        )
        assert hi.final_node_secure.sum() <= lo.final_node_secure.sum()

    def test_tiered_pricing_dampens_adoption(self, small_graph, small_cache):
        """Coarse billing tiers hide small traffic gains, so adoption
        can only shrink relative to linear pricing."""
        adopters = cps_plus_top_isps(small_graph, 3)
        cfg = SimulationConfig(theta=0.05)
        linear = run_deployment(small_graph, adopters, cfg, small_cache)
        tiered = run_deployment(
            small_graph, adopters, cfg, small_cache,
            pricing=Pricing(model=PricingModel.TIERED, tier=200.0),
        )
        assert (
            tiered.final_node_secure.sum() <= linear.final_node_secure.sum()
        )
