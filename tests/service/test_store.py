"""JobStore: journaled lifecycle, coalescing, restart recovery."""

from __future__ import annotations

import pytest

from repro.service.errors import JobNotFoundError, JobStateError
from repro.service.specs import parse_spec
from repro.service.store import JOBS_JOURNAL_KIND, JobStore
from repro.runtime.journal import RunJournal


def spec(**overrides):
    return parse_spec({"n": 80, "thetas": [0.0, 0.05], **overrides})


class TestSubmission:
    def test_submit_creates_a_journaled_job(self, tmp_path):
        store = JobStore(tmp_path)
        job, created = store.submit(spec())
        assert created
        assert job.id == f"j{job.seq:06d}-{job.digest[:8]}"
        assert job.state == "queued"
        journal = RunJournal(tmp_path / "jobs.jsonl")
        assert journal.header()["kind"] == JOBS_JOURNAL_KIND
        records = journal.records()
        assert records[0]["type"] == "submitted"
        assert records[0]["id"] == job.id

    def test_identical_specs_coalesce_while_active(self, tmp_path):
        store = JobStore(tmp_path)
        first, created1 = store.submit(spec())
        second, created2 = store.submit(spec(priority=5))  # same work identity
        assert created1 and not created2
        assert second is first
        assert first.coalesced == 1

    def test_terminal_jobs_do_not_coalesce(self, tmp_path):
        store = JobStore(tmp_path)
        first, _ = store.submit(spec())
        store.set_state(first.id, "running")
        store.set_state(first.id, "done")
        second, created = store.submit(spec())
        assert created and second.id != first.id
        assert second.digest == first.digest  # same sweep journal though

    def test_distinct_specs_get_distinct_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        a, _ = store.submit(spec())
        b, _ = store.submit(spec(thetas=[0.0, 0.30]))
        assert a.id != b.id


class TestLifecycle:
    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(JobNotFoundError):
            JobStore(tmp_path).get("j000099-deadbeef")

    def test_terminal_states_are_final(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(spec())
        store.set_state(job.id, "cancelled")
        with pytest.raises(JobStateError):
            store.set_state(job.id, "running")

    def test_result_roundtrip_and_gating(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(spec())
        with pytest.raises(JobStateError):
            store.load_result(job)  # not done yet -> 409 at the HTTP layer
        store.set_state(job.id, "running")
        store.write_result(job, {"kind": "sweep", "cells": []})
        store.set_state(job.id, "done")
        assert store.load_result(job)["id"] == job.id

    def test_progress_events_stream_incrementally(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(spec())
        store.record_progress(job.id, 1, 4, "computed")
        store.record_progress(job.id, 2, 4, "cache")
        assert (job.progress_done, job.progress_total) == (2, 4)
        seqs = [e["seq"] for e in job.events]
        assert seqs == sorted(seqs)
        tail = job.events_since(seqs[-2])
        assert len(tail) == 1 and tail[0]["source"] == "cache"


class TestRestartRecovery:
    def test_restart_requeues_interrupted_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        running, _ = store.submit(spec())
        store.set_state(running.id, "running")
        queued, _ = store.submit(spec(thetas=[0.0, 0.30]))
        finished, _ = store.submit(spec(thetas=[0.05]))
        store.set_state(finished.id, "running")
        store.set_state(finished.id, "done")

        reborn = JobStore(tmp_path)  # simulates the daemon restarting
        assert reborn.get(running.id).state == "queued"  # recovered
        assert reborn.get(queued.id).state == "queued"
        assert reborn.get(finished.id).state == "done"
        assert any(e["event"] == "recovered" for e in reborn.get(running.id).events)
        resumable = [j.id for j in reborn.resumable()]
        assert set(resumable) == {running.id, queued.id}

    def test_recovered_job_keeps_its_spec_and_digest(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(spec(priority=7))
        reborn = JobStore(tmp_path).get(job.id)
        assert reborn.spec == job.spec
        assert reborn.digest == job.digest
        # the sweep journal is digest-keyed, so the path survives too
        assert JobStore(tmp_path).sweep_journal_path(reborn).name == f"{job.digest}.jsonl"

    def test_recovery_coalesces_resubmissions(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(spec())
        store.set_state(job.id, "running")
        reborn = JobStore(tmp_path)
        again, created = reborn.submit(spec())
        assert not created and again.id == job.id

    def test_priority_orders_resumable_queue(self, tmp_path):
        store = JobStore(tmp_path)
        low, _ = store.submit(spec())
        high, _ = store.submit(spec(thetas=[0.0, 0.30], priority=9))
        assert [j.id for j in store.resumable()] == [high.id, low.id]
