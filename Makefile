# Convenience targets; everything is plain pip + pytest underneath.

.PHONY: install test test-resilience test-chaos test-service serve bench \
	bench-json bench-compare bench-large examples lint lint-fix typecheck \
	import-graph

# Compare the two newest BENCH_*.json snapshots (override with
# BENCH_OLD=... BENCH_NEW=...); fails on >10% kernel regressions.
# Adjacent snapshots share machine conditions, so the diff isolates the
# latest change instead of cumulative day-to-day container drift.
BENCH_ALL := $(sort $(wildcard BENCH_*.json))
BENCH_NEW ?= $(lastword $(BENCH_ALL))
BENCH_OLD ?= $(lastword $(filter-out $(BENCH_NEW),$(BENCH_ALL)))

install:
	pip install -e .

test:
	pytest tests/

# Fault-injection and checkpoint/resume tests only (the resilience layer).
test-resilience:
	pytest tests/runtime tests/parallel/test_faults.py tests/experiments/test_resume.py

# The chaos suite: combined kill+hang+slow faults under deadlines and
# memory budgets, plus the degradation-ladder acceptance tests.
test-chaos:
	pytest tests/runtime/test_guard_chaos.py tests/parallel/test_faults.py -v

# The simulation service: job store, scheduler, result cache, HTTP
# daemon, plus its satellites (journal locking, engine shutdown).
test-service:
	pytest tests/service tests/runtime/test_journal_lock.py \
		tests/parallel/test_engine_shutdown.py -v

# Run the job daemon locally.  SERVE_STORE defaults to ./service-store;
# port 0 picks a free port and writes it to $(SERVE_STORE)/endpoint.json.
SERVE_STORE ?= service-store
SERVE_PORT ?= 0
serve:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro.cli serve --store $(SERVE_STORE) --port $(SERVE_PORT)

bench:
	pytest benchmarks/ --benchmark-only

# Seed/extend the perf trajectory: kernel benches only, machine-readable,
# dated so successive runs line up chronologically at the repo root.
bench-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest $(wildcard benchmarks/bench_kernel_*.py) --benchmark-only \
		--benchmark-json=BENCH_$(shell date +%Y%m%d).json

# --require guards the gate's coverage: the newest snapshot must still
# contain the core kernels, the per-policy kernels (default-policy
# variants included) and the per-backend kernels or the comparison
# fails outright.  --stat min because microsecond benches on shared
# machines have mean runtimes dominated by scheduler outliers; --only
# kernel because the gate is a *kernel* regression gate (artifact
# benches run once and can't clear a 10% bar on shared hardware).
# --speedup pins two headlines in the same snapshot: batched trees on
# the cext backend at least 3x faster than numpy, and the batched
# multi-origin attack kernel at least 3x faster than the per-pair
# scalar reference (it measures ~50-100x; 3x is the do-not-regress bar).
bench-compare:
	python scripts/bench_compare.py $(BENCH_OLD) $(BENCH_NEW) \
		--require kernel --require kernel_policy \
		--require kernel_backend --require kernel_attack \
		--stat min --only kernel \
		--speedup "kernel_backend_trees[cext]:kernel_backend_trees[numpy]:3.0" \
		--speedup "kernel_attack_batched[origin_hijack-numpy]:kernel_attack_scalar:3.0"

bench-large:
	REPRO_BENCH_N=2000 pytest benchmarks/ --benchmark-only

# Static analysis: the project-invariant linter always runs (stdlib
# only) — per-file rules plus the whole-program pass (import layering,
# fork/thread safety, dead public API) — followed by the API-surface
# ratchet; ruff piggybacks when installed, reading its config from
# pyproject.toml so local runs and CI check exactly the same thing.
lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro.analysis --program src scripts benchmarks
	python scripts/api_surface.py
	@if command -v ruff >/dev/null 2>&1; then ruff check src scripts tests benchmarks examples; \
	else echo "ruff not installed (pip install -e '.[dev]'); skipped"; fi

# Regenerate the committed package import graph (docs/import_graph.dot).
# Renders to SVG too when graphviz is installed; CI uploads both.
import-graph:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro.analysis \
		--graph-out docs/import_graph.dot src scripts benchmarks
	@if command -v dot >/dev/null 2>&1; then dot -Tsvg docs/import_graph.dot -o docs/import_graph.svg; \
	else echo "graphviz not installed; wrote docs/import_graph.dot only"; fi

lint-fix:
	@if command -v ruff >/dev/null 2>&1; then ruff check --fix src scripts tests benchmarks examples; \
	else echo "ruff not installed (pip install -e '.[dev]'); nothing to fix with"; fi

# mypy strict modules + per-bucket error-count ratchet; loud no-op
# skip when mypy is absent locally (CI passes --require).
typecheck:
	python scripts/typecheck_ratchet.py

examples:
	python examples/quickstart.py 400
	python examples/early_adopter_comparison.py 300
	python examples/secure_routing_attacks.py
	python examples/buyers_remorse_and_oscillation.py
	python examples/custom_topology.py
	python examples/partial_deployment_security.py 250
	python examples/model_sensitivity.py 250
