"""Tests for topology statistics (Tables 2-4 inputs)."""

from __future__ import annotations

from repro.topology.generator import generate_topology
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole
from repro.topology.stats import (
    degree_array,
    degree_distribution,
    multihomed_stub_fraction,
    stub_customer_counts,
    summarize,
    top_by_degree,
)


def simple_graph() -> ASGraph:
    g = ASGraph(cp_asns=[9])
    for asn in (1, 2, 3, 4, 9):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=2)
    g.add_customer_provider(provider=1, customer=3)
    g.add_customer_provider(provider=2, customer=3)  # stub 3 multihomed
    g.add_customer_provider(provider=1, customer=4)
    g.add_customer_provider(provider=1, customer=9)
    return g


class TestSummary:
    def test_counts(self):
        s = summarize(simple_graph())
        assert s.num_ases == 5
        assert s.num_cps == 1
        assert s.num_isps == 2  # ASes 1, 2
        assert s.num_stubs == 2  # ASes 3, 4
        assert s.num_customer_provider_edges == 5
        assert s.num_peering_edges == 0

    def test_stub_fraction(self):
        assert summarize(simple_graph()).stub_fraction == 0.4

    def test_empty_graph(self):
        s = summarize(ASGraph())
        assert s.num_ases == 0
        assert s.stub_fraction == 0.0


class TestDegrees:
    def test_degree_array_matches_graph(self):
        g = simple_graph()
        degrees = degree_array(g)
        for asn in g.asns:
            assert degrees[g.index(asn)] == g.degree(asn)

    def test_top_by_degree_isps_only(self):
        g = simple_graph()
        assert top_by_degree(g, 2) == [1, 2]

    def test_top_by_degree_any_role(self):
        g = simple_graph()
        assert top_by_degree(g, 1, role=None) == [1]

    def test_top_k_larger_than_population(self):
        g = simple_graph()
        assert len(top_by_degree(g, 100)) == 2

    def test_degree_distribution_sums_to_n(self):
        g = simple_graph()
        assert sum(degree_distribution(g).values()) == g.n


class TestStubStats:
    def test_stub_customer_counts(self):
        counts = stub_customer_counts(simple_graph())
        assert counts[1] == 2  # stubs 3 and 4 (9 is a CP)
        assert counts[2] == 1

    def test_multihomed_fraction(self):
        assert multihomed_stub_fraction(simple_graph()) == 0.5

    def test_paper_stub_claim_shape(self):
        """§2.2.1: most ISPs have few stub customers, a few have many."""
        top = generate_topology(n=500, seed=6)
        counts = sorted(stub_customer_counts(top.graph).values())
        median = counts[len(counts) // 2]
        assert median <= 10
        assert counts[-1] > 3 * max(1, median)
