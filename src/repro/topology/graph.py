"""The annotated AS-level graph (Section 3.1 of the paper).

:class:`ASGraph` stores the interdomain topology as an adjacency
structure annotated with business relationships.  Externally ASes are
identified by their AS number; internally every AS has a dense index in
``range(n)`` so that the routing and game engines can use flat lists and
numpy arrays.

The graph enforces GR1 (no customer-provider cycles) via
:meth:`ASGraph.validate`, and classifies every AS into one of the three
roles of the model (stub / ISP / content provider).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.topology.errors import (
    DuplicateASError,
    DuplicateEdgeError,
    RelationshipCycleError,
    UnknownASError,
)
from repro.topology.relationships import ASRole, Relationship


class ASGraph:
    """A mutable AS-level topology annotated with business relationships.

    Parameters
    ----------
    cp_asns:
        AS numbers that are content providers.  They may be added to the
        graph later; the designation applies as soon as the AS exists.

    Notes
    -----
    The adjacency lists ``customers``, ``providers`` and ``peers`` are
    indexed by the dense node index and contain dense node indices.  They
    are the representation consumed by :mod:`repro.routing`; treat them
    as read-only outside this class.
    """

    def __init__(self, cp_asns: Iterable[int] = ()):  # noqa: D107
        self._asns: list[int] = []
        self._index: dict[int, int] = {}
        self.customers: list[list[int]] = []
        self.providers: list[list[int]] = []
        self.peers: list[list[int]] = []
        self._cp_asns: set[int] = set(cp_asns)
        self._edges: set[tuple[int, int]] = set()
        self._roles: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_as(self, asn: int) -> int:
        """Add an AS and return its dense index.

        Raises :class:`DuplicateASError` if the AS already exists.
        """
        if asn in self._index:
            raise DuplicateASError(asn)
        idx = len(self._asns)
        self._index[asn] = idx
        self._asns.append(asn)
        self.customers.append([])
        self.providers.append([])
        self.peers.append([])
        self._invalidate()
        return idx

    def ensure_as(self, asn: int) -> int:
        """Return the index of ``asn``, adding the AS if it is new."""
        idx = self._index.get(asn)
        if idx is None:
            idx = self.add_as(asn)
        return idx

    def add_customer_provider(self, provider: int, customer: int) -> None:
        """Add a customer-provider edge (``customer`` pays ``provider``)."""
        p, c = self._require(provider), self._require(customer)
        self._claim_edge(provider, customer)
        self.customers[p].append(c)
        self.providers[c].append(p)
        self._invalidate()

    def add_peering(self, a: int, b: int) -> None:
        """Add a settlement-free peer-to-peer edge between ``a`` and ``b``."""
        i, j = self._require(a), self._require(b)
        self._claim_edge(a, b)
        self.peers[i].append(j)
        self.peers[j].append(i)
        self._invalidate()

    def remove_edge(self, a: int, b: int) -> None:
        """Remove whichever edge exists between ``a`` and ``b``."""
        i, j = self._require(a), self._require(b)
        key = (min(a, b), max(a, b))
        if key not in self._edges:
            raise UnknownASError(b if a in self._index else a)
        self._edges.discard(key)
        for adj in (self.customers, self.providers, self.peers):
            if j in adj[i]:
                adj[i].remove(j)
            if i in adj[j]:
                adj[j].remove(i)
        self._invalidate()

    def _claim_edge(self, a: int, b: int) -> None:
        if a == b:
            raise DuplicateEdgeError(a, b)
        key = (min(a, b), max(a, b))
        if key in self._edges:
            raise DuplicateEdgeError(a, b)
        self._edges.add(key)

    def _require(self, asn: int) -> int:
        try:
            return self._index[asn]
        except KeyError:
            raise UnknownASError(asn) from None

    def _invalidate(self) -> None:
        self._roles = None
        self._weights = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of ASes in the graph."""
        return len(self._asns)

    @property
    def asns(self) -> list[int]:
        """AS numbers in dense-index order (do not mutate)."""
        return self._asns

    def index(self, asn: int) -> int:
        """Dense index of ``asn``."""
        return self._require(asn)

    def asn(self, idx: int) -> int:
        """AS number at dense index ``idx``."""
        return self._asns[idx]

    def __contains__(self, asn: int) -> bool:
        return asn in self._index

    def __len__(self) -> int:
        return len(self._asns)

    def has_edge(self, a: int, b: int) -> bool:
        """True if any edge exists between ASes ``a`` and ``b``."""
        return (min(a, b), max(a, b)) in self._edges

    def relationship(self, a: int, b: int) -> Relationship:
        """Relationship of ``b`` as seen from ``a``.

        Raises :class:`UnknownASError` if either AS is missing and
        :class:`KeyError` if no edge exists.
        """
        i, j = self._require(a), self._require(b)
        if j in self.customers[i]:
            return Relationship.CUSTOMER
        if j in self.providers[i]:
            return Relationship.PROVIDER
        if j in self.peers[i]:
            return Relationship.PEER
        raise KeyError(f"no edge between AS {a} and AS {b}")

    def customers_of(self, asn: int) -> list[int]:
        """AS numbers of ``asn``'s customers."""
        return [self._asns[c] for c in self.customers[self._require(asn)]]

    def providers_of(self, asn: int) -> list[int]:
        """AS numbers of ``asn``'s providers."""
        return [self._asns[p] for p in self.providers[self._require(asn)]]

    def peers_of(self, asn: int) -> list[int]:
        """AS numbers of ``asn``'s peers."""
        return [self._asns[p] for p in self.peers[self._require(asn)]]

    def degree(self, asn: int) -> int:
        """Total degree (customers + providers + peers) of ``asn``."""
        i = self._require(asn)
        return len(self.customers[i]) + len(self.providers[i]) + len(self.peers[i])

    def degree_of_index(self, idx: int) -> int:
        """Total degree of the AS at dense index ``idx``."""
        return len(self.customers[idx]) + len(self.providers[idx]) + len(self.peers[idx])

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """Yield each edge once as ``(a, b, relationship-of-b-to-a)``.

        Customer-provider edges are yielded provider-first with
        ``Relationship.CUSTOMER``; peerings with ``Relationship.PEER``.
        """
        for i in range(self.n):
            a = self._asns[i]
            for c in self.customers[i]:
                yield a, self._asns[c], Relationship.CUSTOMER
            for p in self.peers[i]:
                b = self._asns[p]
                if a < b:  # yield each peering once, lower ASN first
                    yield a, b, Relationship.PEER

    def num_customer_provider_edges(self) -> int:
        """Number of customer-provider edges in the graph."""
        return sum(len(cs) for cs in self.customers)

    def num_peering_edges(self) -> int:
        """Number of peer-to-peer edges in the graph."""
        return sum(len(ps) for ps in self.peers) // 2

    # ------------------------------------------------------------------
    # Roles and weights
    # ------------------------------------------------------------------
    @property
    def cp_asns(self) -> set[int]:
        """AS numbers designated as content providers."""
        return set(self._cp_asns)

    def set_content_providers(self, asns: Iterable[int]) -> None:
        """Replace the set of content-provider ASes."""
        self._cp_asns = set(asns)
        self._invalidate()

    @property
    def roles(self) -> np.ndarray:
        """Per-index :class:`ASRole` array (computed lazily, cached)."""
        if self._roles is None:
            roles = np.empty(self.n, dtype=np.int8)
            for i in range(self.n):
                if self._asns[i] in self._cp_asns:
                    roles[i] = ASRole.CP
                elif not self.customers[i]:
                    roles[i] = ASRole.STUB
                else:
                    roles[i] = ASRole.ISP
            self._roles = roles
        return self._roles

    def role(self, asn: int) -> ASRole:
        """Role of AS ``asn``."""
        return ASRole(int(self.roles[self._require(asn)]))

    def indices_with_role(self, role: ASRole) -> list[int]:
        """Dense indices of all ASes with the given role."""
        return [i for i in range(self.n) if self.roles[i] == role]

    @property
    def stub_indices(self) -> list[int]:
        """Dense indices of stub ASes."""
        return self.indices_with_role(ASRole.STUB)

    @property
    def isp_indices(self) -> list[int]:
        """Dense indices of ISP ASes (the players of the game)."""
        return self.indices_with_role(ASRole.ISP)

    @property
    def cp_indices(self) -> list[int]:
        """Dense indices of content-provider ASes."""
        return self.indices_with_role(ASRole.CP)

    @property
    def weights(self) -> np.ndarray:
        """Per-index traffic weight ``w_n`` (unit unless set otherwise)."""
        if self._weights is None:
            self._weights = np.ones(self.n, dtype=np.float64)
        return self._weights

    def set_weight(self, asn: int, weight: float) -> None:
        """Set the traffic weight of a single AS."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.weights[self._require(asn)] = weight

    # ------------------------------------------------------------------
    # Validation and copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check GR1: the customer->provider relation must be acyclic.

        Raises :class:`RelationshipCycleError` with an offending cycle.
        """
        white, grey, black = 0, 1, 2
        color = [white] * self.n
        stack_path: list[int] = []

        for start in range(self.n):
            if color[start] != white:
                continue
            stack: list[tuple[int, int]] = [(start, 0)]
            color[start] = grey
            stack_path.append(start)
            while stack:
                node, edge_pos = stack[-1]
                if edge_pos < len(self.providers[node]):
                    stack[-1] = (node, edge_pos + 1)
                    nxt = self.providers[node][edge_pos]
                    if color[nxt] == grey:
                        at = stack_path.index(nxt)
                        cycle = [self._asns[i] for i in stack_path[at:]] + [self._asns[nxt]]
                        raise RelationshipCycleError(cycle)
                    if color[nxt] == white:
                        color[nxt] = grey
                        stack_path.append(nxt)
                        stack.append((nxt, 0))
                else:
                    color[node] = black
                    stack_path.pop()
                    stack.pop()

    def copy(self) -> "ASGraph":
        """Deep copy of the graph (roles/weights recomputed lazily)."""
        g = ASGraph(self._cp_asns)
        g._asns = list(self._asns)
        g._index = dict(self._index)
        g.customers = [list(c) for c in self.customers]
        g.providers = [list(p) for p in self.providers]
        g.peers = [list(p) for p in self.peers]
        g._edges = set(self._edges)
        if self._weights is not None:
            g._weights = self._weights.copy()
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ASGraph(n={self.n}, cp_edges={self.num_customer_provider_edges()}, "
            f"peerings={self.num_peering_edges()})"
        )
