"""Golden fixture for RPR002 (unseeded RNG): positive + waived + clean."""

import random

import numpy as np
from numpy.random import default_rng


def bad_global_draw() -> float:
    return float(np.random.rand())  # expect: RPR002


def bad_global_seed() -> None:
    np.random.seed(7)  # expect: RPR002


def bad_legacy_state() -> object:
    return np.random.RandomState(0)  # expect: RPR002


def bad_stdlib_draw() -> int:
    return random.randint(0, 10)  # expect: RPR002


def waived_draw() -> float:
    return float(np.random.rand())  # repro-lint: disable=RPR002 -- fixture waiver


def clean_generator(seed: int) -> float:
    rng = default_rng(seed)
    return float(rng.random())


def clean_aliased_generator(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.uniform())


def clean_stdlib_instance(seed: int) -> float:
    return random.Random(seed).random()
