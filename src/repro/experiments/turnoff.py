"""Turn-off incentives in the incoming model (§7, Figure 13).

Two studies:

- :func:`whole_network_turn_off_census` — §7.1/7.3: at a given state,
  which secure ISPs would raise their *total* incoming utility by
  disabling S*BGP entirely (the paper found such cases exist but are
  rare);
- :func:`per_destination_turn_off_census` — §7.3: which ISPs have at
  least one destination for which disabling S*BGP pays (the paper: at
  least 10% of the 5,992 ISPs).
"""

from __future__ import annotations

import dataclasses

from repro.core.config import UtilityModel
from repro.core.engine import RoundData, compute_round_data
from repro.core.projection import per_destination_turn_off_gains, project_flip
from repro.core.state import DeploymentState, StateDeriver
from repro.experiments.setup import ExperimentEnv
from repro.topology.relationships import ASRole


@dataclasses.dataclass(frozen=True)
class TurnOffCensus:
    """Share of secure ISPs with an incentive to disable S*BGP."""

    num_secure_isps: int
    num_with_incentive: int
    examples: tuple[int, ...]  # AS numbers (up to 10)

    @property
    def fraction(self) -> float:
        return (
            self.num_with_incentive / self.num_secure_isps
            if self.num_secure_isps
            else 0.0
        )


def _secure_isps(env: ExperimentEnv, rd: RoundData) -> list[int]:
    roles = env.graph.roles
    return [
        i
        for i in range(env.graph.n)
        if roles[i] == int(ASRole.ISP) and rd.node_secure[i]
    ]


def whole_network_turn_off_census(
    env: ExperimentEnv,
    state: DeploymentState,
    stub_breaks_ties: bool = False,
    theta: float = 0.0,
) -> TurnOffCensus:
    """§7.1: ISPs whose total incoming utility rises by turning off."""
    deriver = StateDeriver(env.graph, stub_breaks_ties, env.cache.compiled)
    rd = compute_round_data(env.cache, deriver, state, UtilityModel.INCOMING)
    hits: list[int] = []
    candidates = [i for i in _secure_isps(env, rd) if i in state.deployers]
    for isp in candidates:
        proj = project_flip(
            env.cache, deriver, rd, isp, turning_on=False, model=UtilityModel.INCOMING
        )
        if proj.utility > (1.0 + theta) * rd.utilities[isp]:
            hits.append(isp)
    return TurnOffCensus(
        num_secure_isps=len(candidates),
        num_with_incentive=len(hits),
        examples=tuple(env.graph.asn(i) for i in hits[:10]),
    )


def per_destination_turn_off_census(
    env: ExperimentEnv,
    state: DeploymentState,
    stub_breaks_ties: bool = False,
) -> TurnOffCensus:
    """§7.3: ISPs with >= 1 destination worth disabling S*BGP for."""
    deriver = StateDeriver(env.graph, stub_breaks_ties, env.cache.compiled)
    rd = compute_round_data(env.cache, deriver, state, UtilityModel.INCOMING)
    hits: list[int] = []
    candidates = [i for i in _secure_isps(env, rd) if i in state.deployers]
    for isp in candidates:
        gains = per_destination_turn_off_gains(env.cache, deriver, rd, isp)
        if gains:
            hits.append(isp)
    return TurnOffCensus(
        num_secure_isps=len(candidates),
        num_with_incentive=len(hits),
        examples=tuple(env.graph.asn(i) for i in hits[:10]),
    )
