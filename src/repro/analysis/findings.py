"""Finding records emitted by the linter.

A :class:`Finding` is one violation at one source location.  Findings
sort by (path, line, col, code) so output is deterministic regardless
of rule registration order, and serialise to a stable JSON shape
(``repro.lint/2``) that the golden tests pin.  Format history:
``repro.lint/1`` had no ``program`` key; ``/2`` adds the optional
whole-program summary emitted under ``--program``.
"""

from __future__ import annotations

import dataclasses

#: Code reported when a file cannot be parsed at all.  Not a Rule —
#: emitted by the engine, but suppressable/selectable like any code.
PARSE_ERROR = "RPR000"

#: Code reported for a ``# repro-lint: disable=`` comment that silenced
#: nothing.  Emitted by the engine after all rules have run.
UNUSED_SUPPRESSION = "RPR010"

#: JSON output format marker (bump on breaking schema changes).
JSON_FORMAT = "repro.lint/2"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location (1-based line/col)."""

    path: str
    line: int
    col: int
    code: str
    message: str
    rule: str

    def to_json(self) -> dict[str, object]:
        """Stable JSON shape; keys are part of the ``repro.lint/2`` schema."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
        }

    def format_text(self) -> str:
        """``path:line:col: CODE message`` — clickable in most terminals."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
