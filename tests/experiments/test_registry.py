"""Tests for the named experiment registry."""

from __future__ import annotations

import pytest

from repro.experiments.registry import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)


class TestRegistry:
    def test_expected_ids(self):
        assert {
            "table1", "fig3", "fig8", "fig10", "sec73", "attack-matrix", "table2",
        } <= set(EXPERIMENTS)

    def test_list_sorted(self):
        ids = [e.id for e in list_experiments()]
        assert ids == sorted(ids)

    def test_unknown_id_hints(self, medium_env):
        with pytest.raises(KeyError, match="known ids"):
            run_experiment("nope", medium_env)

    def test_every_experiment_runs(self, medium_env):
        for experiment in list_experiments():
            text = run_experiment(experiment.id, medium_env)
            assert isinstance(text, str) and text

    def test_table2_mentions_counts(self, medium_env):
        text = run_experiment("table2", medium_env)
        assert str(medium_env.graph.n) in text
