"""Traffic model tests, including the paper's w_CP = 821 pin."""

from __future__ import annotations

import pytest

from repro.topology.generator import generate_topology
from repro.topology.graph import ASGraph
from repro.topology.traffic import (
    apply_traffic_model,
    content_provider_weight,
    traffic_fraction_of,
)


class TestContentProviderWeight:
    def test_paper_number(self):
        """The paper reports w_CP = 821 for x=10% on 36,964 ASes."""
        w = content_provider_weight(36_964 - 5, 0.10, num_cps=5)
        assert round(w) == 821

    def test_zero_x(self):
        assert content_provider_weight(100, 0.0) == 1.0

    def test_half_traffic(self):
        # x = 0.5: CP weight sum equals the rest of the graph
        w = content_provider_weight(1000, 0.5, num_cps=5)
        assert w * 5 == pytest.approx(1000)

    def test_invalid_x(self):
        with pytest.raises(ValueError):
            content_provider_weight(10, 1.0)
        with pytest.raises(ValueError):
            content_provider_weight(10, -0.1)

    def test_invalid_num_cps(self):
        with pytest.raises(ValueError):
            content_provider_weight(10, 0.1, num_cps=0)


class TestApplyTrafficModel:
    def test_fraction_achieved(self):
        top = generate_topology(n=300, seed=2)
        for x in (0.10, 0.20, 0.33, 0.50):
            apply_traffic_model(top.graph, x)
            cps = top.graph.cp_indices
            assert traffic_fraction_of(top.graph, cps) == pytest.approx(x)

    def test_non_cp_weights_reset_to_unit(self):
        top = generate_topology(n=100, seed=2)
        g = top.graph
        g.set_weight(top.tier1_asns[0], 50.0)
        apply_traffic_model(g, 0.10)
        assert g.weights[g.index(top.tier1_asns[0])] == 1.0

    def test_no_cps_and_positive_x_rejected(self):
        g = ASGraph()
        g.add_as(1)
        with pytest.raises(ValueError):
            apply_traffic_model(g, 0.10)

    def test_no_cps_zero_x_ok(self):
        g = ASGraph()
        g.add_as(1)
        assert apply_traffic_model(g, 0.0) == 1.0
