"""Parallel flip projection must be decision-identical to serial."""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.dynamics import DeploymentSimulation
from repro.core.engine import compute_round_data
from repro.parallel.engine import parallel_project_flips

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel projection shares round state copy-on-write via fork",
)


@needs_fork
class TestParallelProjection:
    def test_simulation_agrees_with_serial(self, medium_env):
        adopters = medium_env.case_study_adopters()
        results = []
        for workers in (1, 2):
            config = SimulationConfig(theta=0.02, max_rounds=6, workers=workers)
            sim = DeploymentSimulation(
                medium_env.graph, adopters, config, medium_env.cache
            )
            results.append(sim.run())
        serial, parallel = results
        assert serial.outcome == parallel.outcome
        assert [r.turned_on for r in serial.rounds] == [
            r.turned_on for r in parallel.rounds
        ]
        assert [r.turned_off for r in serial.rounds] == [
            r.turned_off for r in parallel.rounds
        ]
        np.testing.assert_array_equal(
            serial.final_utilities, parallel.final_utilities
        )

    def test_projection_values_identical(self, medium_env):
        cache, graph = medium_env.cache, medium_env.graph
        from repro.core.config import UtilityModel, ProjectionEngine
        from repro.core.state import DeploymentState, StateDeriver

        deriver = StateDeriver(graph, compiled=cache.compiled)
        state = DeploymentState.initial(
            frozenset(graph.index(a) for a in medium_env.case_study_adopters())
        )
        rd = compute_round_data(cache, deriver, state, UtilityModel.OUTGOING)
        jobs = [(int(i), True) for i in graph.isp_indices[:12]]
        serial = parallel_project_flips(
            cache, deriver, rd, jobs,
            model=UtilityModel.OUTGOING, projection=ProjectionEngine.INCREMENTAL,
            workers=1,
        )
        fanned = parallel_project_flips(
            cache, deriver, rd, jobs,
            model=UtilityModel.OUTGOING, projection=ProjectionEngine.INCREMENTAL,
            workers=2,
        )
        assert [p.utility for p in serial] == [p.utility for p in fanned]
        assert [p.flips for p in serial] == [p.flips for p in fanned]
