"""Tests for the round engine: trees, utilities, children CSR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import UtilityModel
from repro.core.engine import (
    compute_round_data,
    incoming_contribution,
    outgoing_contribution,
    utilities_for_state,
)
from repro.core.state import DeploymentState, StateDeriver
from repro.routing.cache import RoutingCache
from repro.topology.graph import ASGraph


@pytest.fixture()
def fig1_graph() -> ASGraph:
    """A small graph mirroring the paper's Figure-1 worked example.

    ISP n transits traffic from two CPs and several unit-weight ASes to
    its stub customer; utility must exclude n itself (the example's
    ``2 w_CP + 3``).
    """
    g = ASGraph(cp_asns=[71, 72])
    for asn in (1, 50, 60, 71, 72, 90, 91):
        g.add_as(asn)
    # n = 50: customer stub 90, provider 1
    g.add_customer_provider(provider=1, customer=50)
    g.add_customer_provider(provider=50, customer=90)
    # the competing leg: 60 also reaches 90? no - 60 is another customer
    # of 1, with its own stub 91; CPs hang off 1
    g.add_customer_provider(provider=1, customer=60)
    g.add_customer_provider(provider=60, customer=91)
    g.add_customer_provider(provider=1, customer=71)
    g.add_customer_provider(provider=1, customer=72)
    g.set_weight(71, 10.0)
    g.set_weight(72, 10.0)
    return g


def empty_state() -> DeploymentState:
    return DeploymentState(frozenset(), frozenset())


class TestOutgoingUtility:
    def test_worked_example(self, fig1_graph):
        g = fig1_graph
        cache = RoutingCache(g)
        deriver = StateDeriver(g)
        rd = compute_round_data(cache, deriver, empty_state(), UtilityModel.OUTGOING)
        n = g.index(50)
        # destination 90: sources 1, 60, 71, 72, 91 route through 50.
        # destination 50 itself: reached via customer? no (self).
        # So outgoing utility = w(1)+w(60)+w(91)+w(71)+w(72) = 1+1+1+10+10
        assert rd.utilities[n] == pytest.approx(23.0)

    def test_stub_has_zero_utility(self, fig1_graph):
        g = fig1_graph
        rd = compute_round_data(
            RoutingCache(g), StateDeriver(g), empty_state(), UtilityModel.OUTGOING
        )
        assert rd.utilities[g.index(90)] == 0.0
        assert rd.utilities[g.index(91)] == 0.0

    def test_tier1_counts_only_customer_destinations(self, fig1_graph):
        g = fig1_graph
        rd = compute_round_data(
            RoutingCache(g), StateDeriver(g), empty_state(), UtilityModel.OUTGOING
        )
        # AS 1 reaches every destination via customer edges; subtree
        # weights: to 90: {71,72,60,91}? no - traffic to 90 from 71,72,60,91
        # passes 1 then 50. Check consistency instead:
        top = g.index(1)
        assert rd.utilities[top] > 0


class TestIncomingUtility:
    def test_customer_edge_only(self, fig1_graph):
        g = fig1_graph
        rd = compute_round_data(
            RoutingCache(g), StateDeriver(g), empty_state(), UtilityModel.INCOMING
        )
        n = g.index(50)
        # incoming for 50: traffic arriving over customer edges: only
        # stub 90's own originated traffic (weight 1) arrives from a
        # customer; everything else arrives from provider 1.
        assert rd.utilities[n] == pytest.approx(1.0 * 6)  # 90 -> all six others

    def test_contribution_helpers_match_totals(self, small_graph, small_cache):
        deriver = StateDeriver(small_graph)
        rd = compute_round_data(small_cache, deriver, empty_state(), UtilityModel.OUTGOING)
        node = small_graph.isp_indices[0]
        total = sum(
            outgoing_contribution(rd.dest_states[k], node)
            for k in range(len(small_cache.destinations))
        )
        assert total == pytest.approx(float(rd.utilities[node]))

    def test_incoming_contribution_helper(self, small_graph, small_cache):
        deriver = StateDeriver(small_graph)
        rd = compute_round_data(small_cache, deriver, empty_state(), UtilityModel.INCOMING)
        node = small_graph.isp_indices[1]
        total = sum(
            incoming_contribution(rd.dest_states[k], node, small_graph.weights)
            for k in range(len(small_cache.destinations))
        )
        assert total == pytest.approx(float(rd.utilities[node]))


class TestRoundData:
    def test_children_csr_inverts_choice(self, small_graph, small_cache):
        deriver = StateDeriver(small_graph)
        rd = compute_round_data(small_cache, deriver, empty_state(), UtilityModel.OUTGOING)
        ds = rd.dest_states[7]
        for child in range(small_graph.n):
            parent = ds.tree.choice[child]
            if parent >= 0:
                assert child in ds.children_of(int(parent))

    def test_secure_dest_positions(self, small_graph, small_cache):
        deriver = StateDeriver(small_graph)
        isp = small_graph.isp_indices[0]
        state = DeploymentState.initial([isp])
        rd = compute_round_data(small_cache, deriver, state, UtilityModel.OUTGOING)
        secure_dests = {small_cache.destinations[k] for k in rd.secure_dest_positions}
        derived = deriver.node_secure(state)
        expected = {d for d in small_cache.destinations if derived[d]}
        assert secure_dests == expected

    def test_utilities_for_state_wrapper(self, small_graph, small_cache):
        deriver = StateDeriver(small_graph)
        u = utilities_for_state(small_cache, deriver, empty_state(), UtilityModel.OUTGOING)
        rd = compute_round_data(small_cache, deriver, empty_state(), UtilityModel.OUTGOING)
        assert np.allclose(u, rd.utilities)
