"""Per-destination route classes, lengths and tiebreak sets.

Observation C.1 of the paper: under the routing policies of Appendix A,
the *length* and *type* (customer / peer / provider) of every node's
selected route to a destination are independent of the deployment state
``S``.  Only the choice *within* the tiebreak set — the set of
equally-good next hops — depends on ``S`` (via the SecP step).

This module computes that state-independent structure once per
destination with the three-pass algorithm of [15] (customer-route BFS,
peer relaxation, provider relaxation by increasing length), and
packages it as a :class:`DestRouting` in CSR form ordered by path
length, ready for the level-synchronous fast routing-tree algorithm of
Appendix C.2 (:mod:`repro.routing.fast_tree`).

All passes are vectorised over the :class:`CompiledGraph` edge arrays;
a straightforward scalar implementation is kept for differential tests.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import deque

import numpy as np

from repro.routing.compiled import CompiledGraph, gather_neighbors
from repro.routing.policy import POSITION_BITS, RouteClass, tie_hash_array
from repro.topology.graph import ASGraph

_UNSET = -1
_HASH_MASK = ~np.uint64((1 << POSITION_BITS) - 1)

_SELF = int(RouteClass.SELF)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)
_UNREACHABLE = int(RouteClass.UNREACHABLE)


@dataclasses.dataclass(frozen=True)
class RouteInfo:
    """Selected-route class and length per node for one destination."""

    dest: int
    cls: np.ndarray      # int8, RouteClass values
    lengths: np.ndarray  # int32, -1 where unreachable


def route_classes_and_lengths(
    graph: ASGraph, dest: int, compiled: CompiledGraph | None = None
) -> RouteInfo:
    """Compute each node's selected-route class and length to ``dest``.

    ``dest`` is a dense node index.  The three passes:

    1. customer routes: BFS from ``dest`` along customer->provider edges
       (every hop of a customer route must itself be a customer route to
       be exportable upward, so these paths descend monotonically);
    2. peer routes: one peer hop onto a customer route;
    3. provider routes: relaxation in order of increasing selected
       length, since a provider exports whatever it selected to its
       customers.
    """
    cg = compiled or CompiledGraph.from_graph(graph)
    n = cg.n
    lengths = np.full(n, _UNSET, dtype=np.int32)
    cls = np.full(n, _UNREACHABLE, dtype=np.int8)
    lengths[dest] = 0
    cls[dest] = _SELF

    # Pass 1: customer routes -- BFS from dest along provider edges.
    frontier = np.array([dest], dtype=np.int32)
    level = 0
    while len(frontier):
        level += 1
        nbrs = gather_neighbors(cg.prov_indptr, cg.prov_idx, frontier)
        if not len(nbrs):
            break
        new = np.unique(nbrs[lengths[nbrs] == _UNSET])
        if not len(new):
            break
        lengths[new] = level
        cls[new] = _CUSTOMER
        frontier = new

    # Pass 2: peer routes -- one peer hop onto a customer route (or dest).
    onto = (cls[cg.peer_idx] == _CUSTOMER) | (cls[cg.peer_idx] == _SELF)
    src = cg.peer_src[onto]
    cand = lengths[cg.peer_idx[onto]] + 1
    no_route = cls[src] == _UNREACHABLE
    src, cand = src[no_route], cand[no_route]
    if len(src):
        best = np.full(n, np.iinfo(np.int32).max, dtype=np.int32)
        np.minimum.at(best, src, cand)
        peer_nodes = np.unique(src)
        lengths[peer_nodes] = best[peer_nodes]
        cls[peer_nodes] = _PEER

    # Pass 3: provider routes -- bucket relaxation by selected length
    # (all hops cost 1, so Dijkstra degenerates to per-length buckets).
    max_len = int(lengths.max(initial=0))
    buckets: dict[int, np.ndarray] = {}
    reached = lengths != _UNSET
    if reached.any():
        have = np.flatnonzero(reached)
        for length in np.unique(lengths[have]):
            buckets[int(length)] = have[lengths[have] == length]
    length = 0
    while length in buckets or length <= max_len:
        sources = buckets.pop(length, None)
        if sources is not None and len(sources):
            custs = gather_neighbors(cg.cust_indptr, cg.cust_idx, sources)
            new = np.unique(custs[cls[custs] == _UNREACHABLE])
            if len(new):
                lengths[new] = length + 1
                cls[new] = _PROVIDER
                existing = buckets.get(length + 1)
                buckets[length + 1] = (
                    new if existing is None else np.concatenate([existing, new])
                )
                max_len = max(max_len, length + 1)
        length += 1
        if length > n:  # pragma: no cover - defensive
            raise RuntimeError("provider relaxation did not terminate")
    return RouteInfo(dest=dest, cls=cls, lengths=lengths)


def route_classes_and_lengths_scalar(graph: ASGraph, dest: int) -> RouteInfo:
    """Scalar reference implementation of :func:`route_classes_and_lengths`."""
    n = graph.n
    dist_cust = np.full(n, _UNSET, dtype=np.int32)
    dist_peer = np.full(n, _UNSET, dtype=np.int32)
    dist_prov = np.full(n, _UNSET, dtype=np.int32)

    dist_cust[dest] = 0
    queue: deque[int] = deque([dest])
    while queue:
        u = queue.popleft()
        for p in graph.providers[u]:
            if dist_cust[p] == _UNSET:
                dist_cust[p] = dist_cust[u] + 1
                queue.append(p)

    for i in range(n):
        if i == dest:
            continue
        best = _UNSET
        for p in graph.peers[i]:
            dp = dist_cust[p]
            if dp != _UNSET and (best == _UNSET or dp + 1 < best):
                best = dp + 1
        dist_peer[i] = best

    selected_len = np.full(n, _UNSET, dtype=np.int32)
    heap: list[tuple[int, int]] = []
    for i in range(n):
        if dist_cust[i] != _UNSET:
            selected_len[i] = dist_cust[i]
        elif dist_peer[i] != _UNSET:
            selected_len[i] = dist_peer[i]
        if selected_len[i] != _UNSET:
            heapq.heappush(heap, (int(selected_len[i]), i))

    done = np.zeros(n, dtype=bool)
    while heap:
        du, u = heapq.heappop(heap)
        if done[u] or du != selected_len[u]:
            continue
        done[u] = True
        for c in graph.customers[u]:
            if dist_cust[c] != _UNSET or dist_peer[c] != _UNSET:
                continue
            cand = du + 1
            if dist_prov[c] == _UNSET or cand < dist_prov[c]:
                dist_prov[c] = cand
                selected_len[c] = cand
                heapq.heappush(heap, (cand, c))

    cls = np.full(n, _UNREACHABLE, dtype=np.int8)
    cls[dest] = _SELF
    for i in range(n):
        if i == dest:
            continue
        if dist_cust[i] != _UNSET:
            cls[i] = _CUSTOMER
        elif dist_peer[i] != _UNSET:
            cls[i] = _PEER
        elif dist_prov[i] != _UNSET:
            cls[i] = _PROVIDER
    return RouteInfo(dest=dest, cls=cls, lengths=selected_len)


@dataclasses.dataclass
class DestRouting:
    """State-independent routing structure for one destination.

    Rows of the tiebreak CSR (``indptr`` / ``cands``) are aligned with
    ``order``, which lists reachable nodes by ascending selected-route
    length (``order[0]`` is the destination).  ``level_starts[L]``
    delimits nodes of length ``L`` within ``order``.
    """

    dest: int
    cls: np.ndarray           # int8[n]
    lengths: np.ndarray       # int32[n]
    order: np.ndarray         # int32[num_reachable]
    row_of: np.ndarray        # int32[n], row in `order`, -1 if unreachable
    level_starts: np.ndarray  # int32[num_levels + 1]
    indptr: np.ndarray        # int64[num_reachable + 1]
    cands: np.ndarray         # int32[nnz], candidate next hops (node indices)
    _rev: tuple[np.ndarray, np.ndarray] | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: uint64[nnz] state-independent tie-break keys, aligned with
    #: ``cands``: hash high bits | within-row position low bits.  The
    #: keys do not depend on the deployment state, so they are computed
    #: once (lazily here, eagerly by the routing arena) instead of on
    #: every ``compute_tree`` call.
    _tie_keys: np.ndarray | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: registry name of the :class:`~repro.routing.policy.RoutingPolicy`
    #: this structure was built under.  Metadata only (the arrays fully
    #: describe routing), so it never participates in equality.
    policy: str = dataclasses.field(default="security_3rd", compare=False)

    @property
    def num_reachable(self) -> int:
        """Number of nodes with a route to the destination (incl. itself)."""
        return len(self.order)

    def tiebreak_set(self, node: int) -> np.ndarray:
        """Candidate next hops of ``node`` (empty if unreachable / dest)."""
        r = self.row_of[node]
        if r < 0:
            return self.cands[0:0]
        return self.cands[self.indptr[r]:self.indptr[r + 1]]

    def tiebreak_sizes(self) -> np.ndarray:
        """Tiebreak-set size per *row* (aligned with ``order``)."""
        return np.diff(self.indptr)

    def reverse_tiebreak(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR (indptr, nodes) mapping node -> nodes that list it as a candidate.

        Indexed by dense node id; used by the incremental projection
        engine to propagate security changes upward.  Built lazily.
        """
        if self._rev is None:
            n = len(self.cls)
            srcs = np.repeat(self.order, np.diff(self.indptr))
            sort = np.argsort(self.cands, kind="stable")
            rev_nodes = srcs[sort].astype(np.int32)
            counts = np.bincount(self.cands, minlength=n)
            rev_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=rev_indptr[1:])
            self._rev = (rev_indptr, rev_nodes)
        return self._rev

    def dependents_of(self, node: int) -> np.ndarray:
        """Nodes whose tiebreak set contains ``node``."""
        rev_indptr, rev_nodes = self.reverse_tiebreak()
        return rev_nodes[rev_indptr[node]:rev_indptr[node + 1]]

    def tie_keys(self) -> np.ndarray:
        """State-independent tie-break keys per CSR entry (see field doc)."""
        if self._tie_keys is None:
            self._tie_keys = compute_tie_keys(self.order, self.indptr, self.cands)
        return self._tie_keys


def compute_tie_keys(
    order: np.ndarray, indptr: np.ndarray, cands: np.ndarray
) -> np.ndarray:
    """Tie-break key per tiebreak-CSR entry: hash high bits | position.

    The ``minimum.reduceat`` in the tree kernels extracts both the
    winning candidate's hash rank and its row position from one uint64,
    so the low :data:`~repro.routing.policy.POSITION_BITS` bits carry
    the candidate's index within its row (also disambiguating hash
    collisions deterministically).
    """
    sizes = np.diff(indptr)
    srcs = np.repeat(order.astype(np.uint64), sizes)
    row_starts = indptr[:-1]
    rel = np.arange(len(cands), dtype=np.uint64) - np.repeat(
        row_starts, sizes
    ).astype(np.uint64)
    keys = tie_hash_array(srcs, cands.astype(np.uint64))
    return (keys & _HASH_MASK) | rel


def compute_dest_routing(
    graph: ASGraph, dest: int, compiled: CompiledGraph | None = None
) -> DestRouting:
    """Build the :class:`DestRouting` structure for ``dest`` (dense index).

    This is the state-independent builder for rankings with SecP last
    (``security_3rd``, the Appendix-A default).  Other rankings go
    through :meth:`repro.routing.policy.RoutingPolicy.build_many`,
    which dispatches to this function, the §8.3 variants, or the
    state-dependent fixpoint builder as appropriate.
    """
    cg = compiled or CompiledGraph.from_graph(graph)
    info = route_classes_and_lengths(graph, dest, cg)
    cls, lengths = info.cls, info.lengths
    n = cg.n

    reachable_mask = lengths != _UNSET
    order = np.flatnonzero(reachable_mask).astype(np.int32)
    # order is already ascending, so a stable single-key sort on length
    # gives the same (length, index) ordering as the previous lexsort
    sort = np.argsort(lengths[order], kind="stable")
    order = order[sort]
    row_of = np.full(n, -1, dtype=np.int32)
    row_of[order] = np.arange(len(order), dtype=np.int32)

    max_len = int(lengths[order[-1]]) if len(order) else 0
    level_starts = np.searchsorted(
        lengths[order], np.arange(max_len + 2), side="left"
    ).astype(np.int32)

    # Tiebreak candidates, per class, over flat edge arrays.
    announces = (cls == _CUSTOMER) | (cls == _SELF)

    c_src, c_dst = cg.cust_src, cg.cust_idx
    c_mask = (
        (cls[c_src] == _CUSTOMER)
        & announces[c_dst]
        & (lengths[c_dst] == lengths[c_src] - 1)
    )
    p_src, p_dst = cg.peer_src, cg.peer_idx
    p_mask = (
        (cls[p_src] == _PEER)
        & announces[p_dst]
        & (lengths[p_dst] == lengths[p_src] - 1)
    )
    v_src, v_dst = cg.prov_src, cg.prov_idx
    v_mask = (
        (cls[v_src] == _PROVIDER)
        & (cls[v_dst] != _UNREACHABLE)
        & (lengths[v_dst] == lengths[v_src] - 1)
    )

    srcs = np.concatenate([c_src[c_mask], p_src[p_mask], v_src[v_mask]])
    dsts = np.concatenate([c_dst[c_mask], p_dst[p_mask], v_dst[v_mask]])
    rows = row_of[srcs]
    # one fused int64 key replaces the two-key lexsort: rows and dsts
    # are both < n, so (row, dst) order == row * n + dst order
    sort = np.argsort(rows.astype(np.int64) * n + dsts, kind="stable")
    rows, cands = rows[sort], dsts[sort].astype(np.int32)

    counts = np.bincount(rows, minlength=len(order))
    indptr = np.zeros(len(order) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    return DestRouting(
        dest=dest,
        cls=cls,
        lengths=lengths,
        order=order,
        row_of=row_of,
        level_starts=level_starts,
        indptr=indptr,
        cands=cands,
    )
