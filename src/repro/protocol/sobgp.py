"""soBGP topology validation (Section 2.1).

soBGP provides a weaker guarantee than S-BGP: an AS validates that a
received path *physically exists*, using a database of link
certificates that neighboring ASes mutually authenticate.  An attacker
can still announce an existing-but-unused path, but cannot fabricate
links.

Simplex soBGP is done entirely offline: a stub certifies its links once
and never touches its routers (§2.2.1).
"""

from __future__ import annotations

import dataclasses

from repro.protocol.messages import Announcement
from repro.protocol.rpki import RPKI


@dataclasses.dataclass(frozen=True)
class LinkCertificate:
    """Mutually-signed certificate that link ``(a, b)`` exists."""

    a: int
    b: int
    signature_a: bytes
    signature_b: bytes

    @staticmethod
    def payload(a: int, b: int) -> bytes:
        lo, hi = sorted((a, b))
        return f"link:{lo}-{hi}".encode()


class TopologyDatabase:
    """The shared soBGP certificate database."""

    def __init__(self, rpki: RPKI):
        self._rpki = rpki
        self._links: dict[tuple[int, int], LinkCertificate] = {}

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        return (min(a, b), max(a, b))

    def certify_link(self, a: int, b: int) -> LinkCertificate:
        """Both endpoints sign the link into the database."""
        payload = LinkCertificate.payload(a, b)
        cert = LinkCertificate(
            a=a,
            b=b,
            signature_a=self._rpki.sign(a, payload),
            signature_b=self._rpki.sign(b, payload),
        )
        self._links[self._key(a, b)] = cert
        return cert

    def add_certificate(self, cert: LinkCertificate) -> bool:
        """Insert an externally-produced certificate after verifying it.

        Returns False (and stores nothing) when either signature is bad
        — this is what stops an attacker fabricating links.
        """
        payload = LinkCertificate.payload(cert.a, cert.b)
        if not (
            self._rpki.verify(cert.a, payload, cert.signature_a)
            and self._rpki.verify(cert.b, payload, cert.signature_b)
        ):
            return False
        self._links[self._key(cert.a, cert.b)] = cert
        return True

    def link_certified(self, a: int, b: int) -> bool:
        """True if a valid certificate for ``(a, b)`` is in the database."""
        return self._key(a, b) in self._links

    def validate_path(self, announcement: Announcement) -> bool:
        """Topology validation: every consecutive link is certified and
        the origin is ROA-authorized for the prefix."""
        path = announcement.path
        if not self._rpki.origin_valid(announcement.prefix, announcement.origin):
            return False
        return all(
            self.link_certified(path[i], path[i + 1]) for i in range(len(path) - 1)
        )
