"""Golden fixture for RPR001 (non-atomic write): positive + waived + clean.

Lines carrying ``expect: CODE`` markers must produce exactly that
finding; every other line must stay silent.  Never executed — parsed
only by tests/analysis/test_fixtures.py.
"""

from pathlib import Path

PATH = "out.txt"


def bad_write() -> None:
    fh = open(PATH, "w", encoding="utf-8")  # expect: RPR001
    fh.close()


def bad_keyword_append() -> None:
    with open(PATH, mode="a") as fh:  # expect: RPR001
        fh.write("x")


def bad_exclusive_create() -> None:
    with open(PATH, "x") as fh:  # expect: RPR001
        fh.write("x")


def bad_path_write_text() -> None:
    Path(PATH).write_text("x", encoding="utf-8")  # expect: RPR001


def bad_path_open_write() -> None:
    with Path(PATH).open("w") as fh:  # expect: RPR001
        fh.write("x")


def waived_write() -> None:
    fh = open(PATH, "w")  # repro-lint: disable=RPR001 -- fixture waiver
    fh.close()


def clean_read() -> str:
    with open(PATH, encoding="utf-8") as fh:
        return fh.read()


def clean_explicit_read_mode() -> str:
    with open(PATH, "r", encoding="utf-8") as fh:
        return fh.read()
