"""Attack-impact metrics over deployment states.

Backs the §2.2.1 comparison:

- *status quo*: a random misbehaving AS attracts about half of all
  ASes' traffic on average;
- *proposed end state* (every ISP full S*BGP, every stub simplex): the
  only remaining vector is an ISP lying to its own simplex stubs, so a
  random attacker's average impact collapses to (roughly) its own stub
  cone — 80% of ISPs have < 7 stub customers.

Sampling is split from simulation so the attack matrix can evaluate
one seeded pair sample across every (scenario, policy, strategy,
level) cell: :func:`sample_pairs` draws the pairs,
:func:`simulate_attacks_batched` runs them on the kernel fast path,
and :func:`impact_from_outcomes` folds the results.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterable, Sequence

import numpy as np

from repro.core.state import DeploymentState, StateDeriver
from repro.routing.policy import DEFAULT_POLICY
from repro.security.hijack import HijackOutcome, simulate_attacks_batched
from repro.security.scenarios import DEFAULT_SCENARIO
from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class AttackImpact:
    """Average hijack impact over sampled (attacker, victim) pairs."""

    samples: int
    mean_fraction_fooled: float
    max_fraction_fooled: float
    per_pair: tuple[tuple[int, int, float], ...]  # (attacker, victim, fraction)


def sample_pairs(
    graph: ASGraph,
    samples: int = 20,
    seed: int = 0,
    attacker_pool: Iterable[int] | None = None,
    victim_pool: Iterable[int] | None = None,
) -> list[tuple[int, int]]:
    """Seeded (victim, attacker) pairs, attacker != victim.

    The draw order (attacker first, then victim, rejecting collisions)
    is pinned: the attack matrix relies on one seed producing the same
    pair sample in every cell, so per-cell differences are pure policy
    / scenario / deployment effects.
    """
    rng = random.Random(seed)
    attackers = (
        list(attacker_pool) if attacker_pool is not None else list(range(graph.n))
    )
    victims = (
        list(victim_pool) if victim_pool is not None else list(range(graph.n))
    )
    pairs: list[tuple[int, int]] = []
    guard = 0
    while len(pairs) < samples and guard < 50 * samples:
        guard += 1
        attacker = rng.choice(attackers)
        victim = rng.choice(victims)
        if attacker == victim:
            continue
        pairs.append((victim, attacker))
    return pairs


def impact_from_outcomes(outcomes: Sequence[HijackOutcome]) -> AttackImpact:
    """Fold per-pair outcomes into the summary statistics."""
    results = [
        (o.attacker, o.victim, o.fraction_fooled()) for o in outcomes
    ]
    fractions = [f for _, _, f in results]
    return AttackImpact(
        samples=len(results),
        mean_fraction_fooled=float(np.mean(fractions)) if fractions else 0.0,
        max_fraction_fooled=float(np.max(fractions)) if fractions else 0.0,
        per_pair=tuple(results),
    )


def sample_attack_impact(
    graph: ASGraph,
    node_secure: np.ndarray,
    breaks_ties: np.ndarray,
    samples: int = 20,
    seed: int = 0,
    attacker_pool: Iterable[int] | None = None,
    victim_pool: Iterable[int] | None = None,
    attacker_convinces_own_stubs: bool | None = None,
    drop_unvalidated: bool = False,
    scenario: str = DEFAULT_SCENARIO,
    policy: str = DEFAULT_POLICY,
    backend: str | None = None,
) -> AttackImpact:
    """Mean fraction of ASes fooled across random attacker/victim pairs.

    Runs on the batched multi-origin kernel (`simulate_attacks_batched`)
    — the scalar reference in :mod:`repro.security.hijack` exists for
    the differential suite, not for sampling at scale.
    """
    pairs = sample_pairs(
        graph, samples=samples, seed=seed,
        attacker_pool=attacker_pool, victim_pool=victim_pool,
    )
    outcomes = simulate_attacks_batched(
        graph, pairs, node_secure, breaks_ties,
        attacker_convinces_own_stubs=attacker_convinces_own_stubs,
        drop_unvalidated=drop_unvalidated,
        scenario=scenario, policy=policy, backend=backend,
    )
    return impact_from_outcomes(outcomes)


def impact_for_state(
    graph: ASGraph,
    deriver: StateDeriver,
    state: DeploymentState,
    samples: int = 20,
    seed: int = 0,
    **kwargs,
) -> AttackImpact:
    """:func:`sample_attack_impact` with flags derived from a game state."""
    node_secure = deriver.node_secure(state)
    return sample_attack_impact(
        graph, node_secure, deriver.breaks_ties(node_secure),
        samples=samples, seed=seed, **kwargs,
    )


def end_state_everyone_secure(graph: ASGraph) -> DeploymentState:
    """The §2.2.1 end state: every ISP and CP deploys (stubs simplex)."""
    from repro.topology.relationships import ASRole

    roles = graph.roles
    deployers = frozenset(
        i for i in range(graph.n)
        if roles[i] in (int(ASRole.ISP), int(ASRole.CP))
    )
    return DeploymentState(deployers, frozenset())
