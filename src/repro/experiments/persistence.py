"""Saving and loading simulation results as JSON.

Long sweeps (hours at paper scale) should survive the process; these
helpers serialise the decision-relevant trace of a
:class:`~repro.core.dynamics.SimulationResult` — per-round adopters,
security counts, utilities of tracked ASes — into plain JSON.  Routing
trees are not persisted (they are recomputable from the graph + state).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.core.dynamics import SimulationResult


def result_to_dict(
    result: SimulationResult, track_asns: list[int] | None = None
) -> dict[str, Any]:
    """Serialisable summary of a finished simulation.

    ``track_asns`` selects ASes whose full utility history is included
    (defaults to the early adopters).
    """
    graph = result.graph
    tracked = track_asns if track_asns is not None else sorted(
        graph.asn(i) for i in result.early_adopters
    )
    histories = {}
    for asn in tracked:
        i = graph.index(asn)
        try:
            histories[str(asn)] = result.utility_history(i)
        except ValueError:  # utilities not recorded
            histories = {}
            break
    return {
        "format": "repro.simulation-result/1",
        "config": {
            "theta": result.config.theta,
            "utility_model": result.config.utility_model.value,
            "stub_breaks_ties": result.config.stub_breaks_ties,
            "max_rounds": result.config.max_rounds,
        },
        "outcome": result.outcome.value,
        "num_ases": graph.n,
        "early_adopters": sorted(graph.asn(i) for i in result.early_adopters),
        "final_deployers": sorted(graph.asn(i) for i in result.final_state.deployers),
        "final_secure_asns": sorted(
            graph.asn(i) for i in range(graph.n) if result.final_node_secure[i]
        ),
        "rounds": [
            {
                "index": record.index,
                "secure_ases": record.num_secure_ases,
                "turned_on": sorted(graph.asn(i) for i in record.turned_on),
                "turned_off": sorted(graph.asn(i) for i in record.turned_off),
            }
            for record in result.rounds
        ],
        "tracked_utilities": histories,
    }


def save_result(
    result: SimulationResult,
    target: str | Path | TextIO,
    track_asns: list[int] | None = None,
) -> None:
    """Write :func:`result_to_dict` as JSON."""
    payload = result_to_dict(result, track_asns)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
    else:
        json.dump(payload, target, indent=1)


def load_result_summary(source: str | Path | TextIO) -> dict[str, Any]:
    """Load a previously saved result summary (with format check)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        payload = json.load(source)
    fmt = payload.get("format")
    if fmt != "repro.simulation-result/1":
        raise ValueError(f"unrecognised result format: {fmt!r}")
    return payload
