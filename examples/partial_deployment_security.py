"""How much security does partial deployment actually buy? (§2.2.1)

Measures origin-hijack impact at four points of the transition:

1. today's insecure Internet — the paper cites ~50% of ASes fooled by
   an average attacker;
2. mid-cascade and at the case-study's final state — security as a
   *tie-break* trims but does not end hijacks, the reason §1.4(5)
   warns that BGP/S*BGP coexistence needs careful engineering;
3. the proposed end state (all ISPs full S*BGP, all stubs simplex,
   validation filtering on) — the only vector left is an ISP lying to
   its own simplex stubs.

Usage::

    python examples/partial_deployment_security.py [num_ases]
"""

from __future__ import annotations

import sys

from repro import build_environment, run_case_study
from repro.core.state import DeploymentState, StateDeriver
from repro.experiments.report import format_table
from repro.security import end_state_everyone_secure, impact_for_state


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    samples = 12
    env = build_environment(n=n, seed=2011, x=0.10)
    deriver = StateDeriver(env.graph, stub_breaks_ties=True,
                          compiled=env.cache.compiled)

    print("running the deployment cascade...")
    report = run_case_study(env, theta=0.05)

    rows = []
    empty = DeploymentState(frozenset(), frozenset())
    imp = impact_for_state(env.graph, deriver, empty, samples=samples)
    rows.append(["insecure internet", "0%", f"{imp.mean_fraction_fooled:.1%}"])

    mid = report.result.rounds[max(0, report.result.num_rounds // 2 - 1)].state
    sec = deriver.node_secure(mid).mean()
    imp = impact_for_state(env.graph, deriver, mid, samples=samples)
    rows.append(["mid-cascade", f"{sec:.0%}", f"{imp.mean_fraction_fooled:.1%}"])

    final = report.result.final_state
    sec = deriver.node_secure(final).mean()
    imp = impact_for_state(env.graph, deriver, final, samples=samples)
    rows.append(["case-study final", f"{sec:.0%}", f"{imp.mean_fraction_fooled:.1%}"])

    end = end_state_everyone_secure(env.graph)
    imp = impact_for_state(env.graph, deriver, end, samples=samples,
                           drop_unvalidated=True)
    rows.append(["end state + filtering", "100%", f"{imp.mean_fraction_fooled:.1%}"])

    print()
    print(format_table(
        ["deployment state", "secure ASes", "mean ASes fooled per hijack"],
        rows, title="Origin-hijack impact across the transition",
    ))
    print()
    print("paper (sec 2.2.1): ~half the Internet fooled today; afterwards an")
    print("attacker reaches only its own simplex stubs (80% of ISPs have <7).")


if __name__ == "__main__":
    main()
