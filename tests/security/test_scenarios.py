"""Tests for the attack-scenario and deployment-strategy registries."""

from __future__ import annotations

import pytest

from repro.security.scenarios import (
    DEFAULT_SCENARIO,
    DEFAULT_STRATEGY,
    ORIGIN_HIJACK,
    AttackScenario,
    DeploymentStrategy,
    available_scenarios,
    available_strategies,
    get_scenario,
    get_strategy,
    register_scenario,
    register_strategy,
    scenario_table,
    strategy_table,
)


class TestScenarioRegistry:
    def test_all_four_registered(self):
        assert available_scenarios() == [
            "forged_origin", "origin_hijack", "route_leak", "subprefix_hijack",
        ]
        assert DEFAULT_SCENARIO in available_scenarios()

    @pytest.mark.parametrize("alias,canonical", [
        ("hijack", "origin_hijack"),
        ("prefix_hijack", "origin_hijack"),
        ("subprefix", "subprefix_hijack"),
        ("leak", "route_leak"),
        ("path_shortening", "forged_origin"),
    ])
    def test_aliases_resolve(self, alias, canonical):
        assert get_scenario(alias).name == canonical

    def test_objects_pass_through(self):
        assert get_scenario(ORIGIN_HIJACK) is ORIGIN_HIJACK

    def test_unknown_names_choices(self):
        with pytest.raises(ValueError, match="origin_hijack"):
            get_scenario("dns_poisoning")

    def test_reregistration_is_idempotent(self):
        assert register_scenario(ORIGIN_HIJACK) is not None
        assert get_scenario("origin_hijack") == ORIGIN_HIJACK

    def test_conflicting_registration_rejected(self):
        clash = AttackScenario(name="origin_hijack", description="different")
        with pytest.raises(ValueError, match="already registered differently"):
            register_scenario(clash)

    def test_alias_conflict_rejected(self):
        other = AttackScenario(name="other_scenario", description="x")
        with pytest.raises(ValueError, match="already points at"):
            register_scenario(other, aliases=("hijack",))

    def test_scenario_must_give_attacker_something_to_do(self):
        with pytest.raises(ValueError, match="nothing to do"):
            AttackScenario(
                name="noop", description="x",
                attacker_originates=False, attacker_leaks=False,
            )

    def test_negative_path_offset_rejected(self):
        with pytest.raises(ValueError, match="attacker_path_offset"):
            AttackScenario(name="x", description="y", attacker_path_offset=-1)

    def test_table_covers_registry(self):
        rows = scenario_table()
        assert [name for name, _, _ in rows] == available_scenarios()
        assert all(desc for _, _, desc in rows)


class TestStrategyRegistry:
    def test_all_four_registered(self):
        assert available_strategies() == [
            "market_rounds", "random", "stub_first", "top_isp_first",
        ]
        assert DEFAULT_STRATEGY in available_strategies()

    def test_unknown_names_choices(self):
        with pytest.raises(ValueError, match="top_isp_first"):
            get_strategy("alphabetical")

    def test_objects_pass_through(self):
        strat = get_strategy("top_isp_first")
        assert get_strategy(strat) is strat

    def test_conflicting_registration_rejected(self):
        clash = DeploymentStrategy(name="top_isp_first", description="different")
        with pytest.raises(ValueError, match="already registered differently"):
            register_strategy(clash)

    def test_table_covers_registry(self):
        rows = strategy_table()
        assert [name for name, _, _ in rows] == available_strategies()

    def test_levels_validated(self, small_graph):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            get_strategy("top_isp_first").states(small_graph, [0.0, 1.5])


class TestStaticOrderings:
    def test_levels_are_nested_prefixes(self, small_graph):
        for name in ("top_isp_first", "random", "stub_first"):
            states = get_strategy(name).states(small_graph, [0.0, 0.3, 1.0])
            assert [level for level, _ in states] == [0.0, 0.3, 1.0]
            deployers = [s.deployers for _, s in states]
            assert deployers[0] == frozenset()
            assert deployers[0] <= deployers[1] <= deployers[2]

    def test_top_isp_first_leads_with_highest_degree(self, small_graph):
        from repro.topology.stats import degree_array

        states = get_strategy("top_isp_first").states(small_graph, [0.05, 1.0])
        first = states[0][1].deployers
        assert first
        degrees = degree_array(small_graph)
        cutoff = min(int(degrees[i]) for i in first)
        left_out = [
            int(i) for i in small_graph.isp_indices if int(i) not in first
        ]
        assert all(int(degrees[i]) <= cutoff for i in left_out)
        # ISPs only: every registered deployer is an ISP index
        assert first <= {int(i) for i in small_graph.isp_indices}

    def test_stub_first_deploys_stubs_before_isps(self, small_graph):
        from repro.topology.relationships import ASRole

        states = get_strategy("stub_first").states(small_graph, [0.2, 1.0])
        early = states[0][1].deployers
        roles = small_graph.roles
        stub_total = int((roles == int(ASRole.STUB)).sum())
        if len(early) <= stub_total:
            assert all(roles[i] == int(ASRole.STUB) for i in early)

    def test_random_is_seeded(self, small_graph):
        strat = get_strategy("random")
        a = strat.states(small_graph, [0.5], seed=3)[0][1].deployers
        b = strat.states(small_graph, [0.5], seed=3)[0][1].deployers
        c = strat.states(small_graph, [0.5], seed=4)[0][1].deployers
        assert a == b
        assert a != c  # 100 ISPs: identical shuffles are astronomically unlikely


class TestMarketRounds:
    def test_replays_dynamics_snapshots(self, small_graph, small_cache):
        states = get_strategy("market_rounds").states(
            small_graph, [0.0, 0.5, 1.0],
            theta=0.05, cache=small_cache, max_rounds=10,
        )
        assert [level for level, _ in states] == [0.0, 0.5, 1.0]
        sizes = [len(s.deployers | s.early_adopters) for _, s in states]
        assert sizes == sorted(sizes)
        # level 1.0 is the final market state, which top-5 adopters grow
        assert sizes[-1] >= sizes[0]
