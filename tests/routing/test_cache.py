"""Tests for the routing cache and compiled graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.cache import RoutingCache
from repro.routing.compiled import CompiledGraph, gather_neighbors
from repro.routing.policy import RouteClass
from repro.topology.generator import generate_topology


class TestCompiledGraph:
    def test_csr_matches_adjacency(self, small_graph):
        cg = CompiledGraph.from_graph(small_graph)
        for i in range(small_graph.n):
            assert list(cg.cust_idx[cg.cust_indptr[i]:cg.cust_indptr[i + 1]]) == small_graph.customers[i]
            assert list(cg.prov_idx[cg.prov_indptr[i]:cg.prov_indptr[i + 1]]) == small_graph.providers[i]
            assert list(cg.peer_idx[cg.peer_indptr[i]:cg.peer_indptr[i + 1]]) == small_graph.peers[i]

    def test_flat_sources_align(self, small_graph):
        cg = CompiledGraph.from_graph(small_graph)
        for k, src in enumerate(cg.cust_src):
            cust = cg.cust_idx[k]
            assert cust in small_graph.customers[src]

    def test_gather_neighbors(self, small_graph):
        cg = CompiledGraph.from_graph(small_graph)
        nodes = np.array([0, 3, 7], dtype=np.int64)
        got = list(gather_neighbors(cg.cust_indptr, cg.cust_idx, nodes))
        want = small_graph.customers[0] + small_graph.customers[3] + small_graph.customers[7]
        assert got == want

    def test_gather_empty(self, small_graph):
        cg = CompiledGraph.from_graph(small_graph)
        out = gather_neighbors(cg.cust_indptr, cg.cust_idx, np.array([], dtype=np.int64))
        assert len(out) == 0


class TestRoutingCache:
    def test_lazy_and_stable(self, small_graph):
        cache = RoutingCache(small_graph)
        a = cache.dest_routing(4)
        b = cache.dest_routing(4)
        assert a is b

    def test_destination_subset(self, small_graph):
        cache = RoutingCache(small_graph, destinations=[1, 5, 9])
        assert cache.destinations == [1, 5, 9]
        assert cache.position_of(5) == 1
        assert cache.position_of(2) is None
        with pytest.raises(KeyError):
            cache.dest_pos(2)

    def test_cls_matrix_rows(self, small_graph):
        cache = RoutingCache(small_graph, destinations=[2, 8])
        mat = cache.cls_matrix
        assert mat.shape == (2, small_graph.n)
        assert mat[0, 2] == int(RouteClass.SELF)
        assert mat[1, 8] == int(RouteClass.SELF)

    def test_warm_fills_everything(self):
        top = generate_topology(n=60, seed=1)
        cache = RoutingCache(top.graph)
        cache.warm()
        assert len(cache._routing) == top.graph.n
