"""Resource governance: deadlines, memory budgets, graceful degradation.

The paper's evaluation ran on a 200-node DryadLINQ cluster whose
scheduler owned the resource problem; at laptop scale *this* module
owns it.  Three cooperating pieces:

- :class:`Deadline` — a cooperative wall-clock budget.  It is checked
  at work-unit boundaries (sweep cells, simulation rounds, the parallel
  map loop) and raises a typed
  :class:`~repro.runtime.errors.DeadlineExceeded` *after* completed
  units were journaled, so an interrupted run resumes exactly where the
  budget ran out.  It also caps blocking timeouts
  (:meth:`Deadline.cap_timeout`) so a hung worker cannot outlive the
  budget.
- :class:`MemoryBudget` — a soft ceiling consulted *before* large
  allocations (the arena size predictor
  :meth:`~repro.routing.arena.RoutingArena.estimate_bytes` supplies the
  forecasts) so the system shrinks its working set instead of meeting
  the OOM killer.
- :class:`DegradationLadder` — the ordered set of fallbacks the system
  may take when resources are short.  Every rung taken emits a WARNING
  and a ``runtime.guard.degraded`` counter (plus a per-rung counter),
  so a degraded run is *visibly* degraded in the metrics snapshot.

:class:`RuntimeGuard` bundles the three and travels ambiently: the CLI
installs one via :func:`use_guard` and every layer reads it back with
:func:`current_guard`.  The default guard is permissive (no deadline,
no budget) and costs a couple of attribute loads per check, so guarded
code needs no ``if guard is not None`` litter.  Fork-started workers
inherit the installed guard; ``time.monotonic`` is comparable across
fork, so a child sees the same remaining budget as its parent.
"""

from __future__ import annotations

import contextlib
import logging
import re
import threading
import time
from typing import Callable, Iterator

from repro.runtime.errors import DeadlineExceeded, MemoryBudgetExceeded
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

#: Injectable time source (tests pass a fake; production uses monotonic).
Clock = Callable[[], float]

#: The rungs of the degradation ladder, in the order a starved run
#: typically descends them.  Names are stable: they key the per-rung
#: ``runtime.guard.degraded.<rung>`` counters and the DESIGN.md table.
LADDER_RUNGS: tuple[str, ...] = (
    "shm_to_pickle",     # shared-memory transport -> pickled trees
    "chunked_batches",   # full-batch kernels -> per-destination-chunk batches
    "reduced_workers",   # N workers -> N/2 (repeatedly)
    "serial_workers",    # ... -> serial in-process execution
    "lazy_warm",         # eager parallel warm -> build-on-first-use
    "compiled_to_numpy",  # compiled kernel backend -> pure-numpy kernels
)


class Deadline:
    """A cooperative wall-clock budget, checked at work-unit boundaries.

    The clock is injectable so chaos tests can expire a deadline at an
    exact, deterministic point (e.g. "after the second journal append")
    instead of racing real time.
    """

    __slots__ = ("budget_seconds", "_clock", "_started")

    def __init__(self, seconds: float, clock: Clock = time.monotonic):
        if seconds < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {seconds}")
        self.budget_seconds = float(seconds)
        self._clock = clock
        self._started = clock()

    @classmethod
    def after(cls, seconds: float, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now (alias for the constructor)."""
        return cls(seconds, clock=clock)

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.budget_seconds - self.elapsed()

    def expired(self) -> bool:
        """True once the budget has run out."""
        return self.remaining() <= 0.0

    def check(self, where: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out.

        ``where`` names the checkpoint (``"sweep cell (top-5, 0.05)"``)
        so the one-line error says how far the run got.
        """
        if self.expired():
            get_registry().counter("runtime.guard.deadline_exceeded").inc()
            raise DeadlineExceeded(where, self.budget_seconds)

    def cap_timeout(self, timeout: float | None) -> float:
        """Tighten a blocking timeout so it never outlives the deadline.

        ``None`` (wait forever) becomes the remaining budget; a finite
        timeout is clamped to it.  Never negative: an expired deadline
        yields ``0.0`` so the caller polls once and reaches its next
        :meth:`check`.
        """
        remaining = max(self.remaining(), 0.0)
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)


_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([kmgt]?)i?b?\s*$", re.IGNORECASE)


def parse_size(text: str | int) -> int:
    """Parse a human-friendly byte size: ``"512MiB"``, ``"2GB"``, ``"750k"``.

    Suffixes are binary (``k``/``M``/``G``/``T`` = 2**10/20/30/40) with
    an optional ``i``/``B``; a bare number is bytes.  Used by the CLI's
    ``--memory-budget`` flag.
    """
    if isinstance(text, int):
        if text <= 0:
            raise ValueError(f"size must be positive, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(
            f"unparseable size {text!r}; expected e.g. 512MiB, 2GB, 750k, or bytes"
        )
    value = float(match.group(1))
    shift = {"": 0, "k": 10, "m": 20, "g": 30, "t": 40}[match.group(2).lower()]
    size = int(value * (1 << shift))
    if size <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return size


class MemoryBudget:
    """A soft memory ceiling consulted before large allocations.

    The budget is advisory by design: call sites ask :meth:`fits` and
    take a degradation rung when the answer is no.  :meth:`require` is
    the hard variant for allocations that have no smaller fallback.
    """

    __slots__ = ("limit_bytes",)

    def __init__(self, limit_bytes: int | str):
        self.limit_bytes = parse_size(limit_bytes)

    def fits(self, nbytes: int) -> bool:
        """True when an allocation of ``nbytes`` fits the budget."""
        return nbytes <= self.limit_bytes

    def headroom(self) -> int:
        """The full budget (the budget tracks limits, not live usage)."""
        return self.limit_bytes

    def require(self, nbytes: int, what: str) -> None:
        """Raise :class:`MemoryBudgetExceeded` unless ``nbytes`` fits."""
        if not self.fits(nbytes):
            raise MemoryBudgetExceeded(what, nbytes, self.limit_bytes)


#: Divisor giving the budget share one kernel working set may claim.
#: The pooled arena stays resident while the kernels run, so their
#: transient gather/scratch arrays get 1/8 of the budget; the rest is
#: headroom for the arena, the round's output matrices, and Python.
KERNEL_BUDGET_FRACTION = 8


class DegradationLadder:
    """Accounting for the graceful-degradation rungs a run has taken.

    Each rung taken logs one WARNING (first time only — a 200-round
    sweep should not warn 200 times) and increments both the total
    ``runtime.guard.degraded`` counter and the per-rung
    ``runtime.guard.degraded.<rung>`` counter on every take, so the
    metrics snapshot shows *which* fallbacks ran and how often.
    """

    def __init__(self) -> None:
        self._taken: dict[str, int] = {}

    def take(self, rung: str, reason: str) -> None:
        """Record one descent onto ``rung`` (see :data:`LADDER_RUNGS`)."""
        if rung not in LADDER_RUNGS:
            raise ValueError(
                f"unknown degradation rung {rung!r}; known: {', '.join(LADDER_RUNGS)}"
            )
        first = rung not in self._taken
        self._taken[rung] = self._taken.get(rung, 0) + 1
        registry = get_registry()
        registry.counter("runtime.guard.degraded").inc()
        registry.counter(f"runtime.guard.degraded.{rung}").inc()
        if first:
            log.warning("degraded (%s): %s", rung, reason)

    def taken(self, rung: str) -> int:
        """How many times ``rung`` has been taken under this ladder."""
        return self._taken.get(rung, 0)

    def rungs_taken(self) -> dict[str, int]:
        """All rungs taken so far, with counts (insertion-ordered)."""
        return dict(self._taken)


class RuntimeGuard:
    """Deadline + memory budget + ladder, bundled for ambient carry.

    A guard with neither deadline nor budget (the default installed
    guard) is permissive: every check is a cheap no-op, every ``fits``
    is True, every plan returns its input unchanged.
    """

    def __init__(
        self,
        deadline: Deadline | None = None,
        memory: MemoryBudget | None = None,
        ladder: DegradationLadder | None = None,
    ):
        self.deadline = deadline
        self.memory = memory
        self.ladder = ladder if ladder is not None else DegradationLadder()

    @property
    def active(self) -> bool:
        """True when the guard enforces anything at all."""
        return self.deadline is not None or self.memory is not None

    # -- deadline ------------------------------------------------------

    def check_deadline(self, where: str) -> None:
        """Checkpoint: raise :class:`DeadlineExceeded` once expired."""
        if self.deadline is not None:
            self.deadline.check(where)

    def cap_timeout(self, timeout: float | None) -> float | None:
        """Clamp a blocking timeout to the remaining deadline budget."""
        if self.deadline is None:
            return timeout
        return self.deadline.cap_timeout(timeout)

    # -- memory --------------------------------------------------------

    def fits_memory(self, nbytes: int) -> bool:
        """True when ``nbytes`` fits the budget (or there is none)."""
        return self.memory is None or self.memory.fits(nbytes)

    def degrade(self, rung: str, reason: str) -> None:
        """Take a ladder rung (warning + counters)."""
        self.ladder.take(rung, reason)

    def plan_workers(
        self, requested: int, per_worker_bytes: int, base_bytes: int = 0, what: str = "map"
    ) -> int:
        """Worker count that fits the budget: N -> N/2 -> ... -> serial.

        ``base_bytes`` is memory needed regardless of worker count (the
        final pooled arena); ``per_worker_bytes`` is the concurrent
        per-worker working set.  Each halving takes the
        ``reduced_workers`` rung; landing on 1 takes ``serial_workers``.
        """
        if self.memory is None or requested <= 1:
            return requested
        workers = requested
        while workers > 1 and not self.memory.fits(
            base_bytes + per_worker_bytes * workers
        ):
            workers = max(1, workers // 2)
            self.degrade(
                "reduced_workers" if workers > 1 else "serial_workers",
                f"{what}: ~{(base_bytes + per_worker_bytes * requested) / 2**20:.0f} "
                f"MiB at {requested} workers exceeds the "
                f"{self.memory.limit_bytes / 2**20:.0f} MiB budget; "
                f"running with {workers}",
            )
        return workers

    def plan_batch_rows(self, rows: int, row_bytes: int, what: str = "kernel") -> int:
        """Rows per kernel batch under the budget (``rows`` = no limit).

        The batched tree kernels materialise ``[rows, n]`` working
        matrices; when that working set would claim more than
        ``1/KERNEL_BUDGET_FRACTION`` of the budget, the batch is split
        into chunks that fit (the ``chunked_batches`` rung).  Outputs
        are stitched back together, so chunking is bit-identical.
        """
        if self.memory is None or rows <= 1 or row_bytes <= 0:
            return rows
        share = self.memory.limit_bytes // KERNEL_BUDGET_FRACTION
        if rows * row_bytes <= share:
            return rows
        chunk_rows = max(1, int(share // row_bytes))
        self.degrade(
            "chunked_batches",
            f"{what}: full batch of {rows} rows needs "
            f"~{rows * row_bytes / 2**20:.0f} MiB working set; running in "
            f"chunks of {chunk_rows} row(s)",
        )
        return chunk_rows


#: The permissive default guard; module-level so :func:`current_guard`
#: never allocates on the hot path.
NULL_GUARD = RuntimeGuard()


class _GuardStack(threading.local):
    """Per-thread stack of installed guards.

    Thread-local so concurrent jobs (the simulation service runs one
    sweep per scheduler worker thread) each see their *own* deadline and
    memory budget — a shared stack would hand thread A the guard thread
    B pushed last.  Fork still inherits correctly: the forking thread
    survives into the child with its thread-local state intact, so a
    worker process sees the same remaining budget as its parent.
    """

    def __init__(self) -> None:
        self.stack: list[RuntimeGuard] = []


_installed = _GuardStack()


def current_guard() -> RuntimeGuard:
    """The ambient guard of this thread (:data:`NULL_GUARD` by default)."""
    stack = _installed.stack
    return stack[-1] if stack else NULL_GUARD


@contextlib.contextmanager
def use_guard(guard: RuntimeGuard) -> Iterator[RuntimeGuard]:
    """Install ``guard`` as this thread's ambient guard for the block.

    Nestable (inner guards shadow outer ones), thread-scoped (each
    scheduler worker governs only its own job), and fork-friendly: a
    worker forked inside the block inherits the installed guard, and
    because ``time.monotonic`` is comparable across fork the child sees
    the same remaining deadline as its parent.
    """
    _installed.stack.append(guard)
    try:
        yield guard
    finally:
        _installed.stack.pop()
