"""Tests for simulation configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import ProjectionEngine, SimulationConfig, UtilityModel


def test_defaults():
    cfg = SimulationConfig()
    assert cfg.theta == 0.05
    assert cfg.utility_model is UtilityModel.OUTGOING
    assert cfg.projection is ProjectionEngine.FULL


def test_negative_theta_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(theta=-0.1)


def test_bad_rounds_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(max_rounds=0)


def test_bad_workers_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(workers=0)


def test_turn_off_only_under_incoming():
    assert not SimulationConfig(utility_model=UtilityModel.OUTGOING).turn_off_enabled
    assert SimulationConfig(utility_model=UtilityModel.INCOMING).turn_off_enabled
    assert not SimulationConfig(
        utility_model=UtilityModel.INCOMING, allow_turn_off=False
    ).turn_off_enabled


def test_frozen():
    cfg = SimulationConfig()
    with pytest.raises(Exception):
        cfg.theta = 0.2  # type: ignore[misc]
