"""The deployment game: states, utilities, projections, dynamics."""

from repro.core.adopters import (
    STRATEGIES,
    content_providers,
    cps_plus_top_isps,
    greedy_early_adopters,
    no_early_adopters,
    random_isps,
    top_degree_isps,
)
from repro.core.config import ProjectionEngine, SimulationConfig, UtilityModel
from repro.core.diamonds import DiamondCensus, diamond_census
from repro.core.dynamics import (
    DeploymentSimulation,
    Outcome,
    RoundRecord,
    SimulationResult,
    run_deployment,
)
from repro.core.engine import (
    DestState,
    RoundData,
    compute_round_data,
    incoming_contribution,
    outgoing_contribution,
    utilities_for_state,
)
from repro.core.metrics import (
    DeploymentOutcome,
    SecuritySnapshot,
    ZeroSumAnalysis,
    deployment_outcome,
    projection_accuracy,
    security_snapshot,
    zero_sum_analysis,
)
from repro.core.forecast import (
    LocalForecast,
    forecast_error_study,
    local_project_flip,
)
from repro.core.perlink import (
    LinkDeploymentResult,
    best_link_deployment,
    utility_with_links,
)
from repro.core.pricing import LINEAR_PRICING, Pricing, PricingModel
from repro.core.projection import Projection, project_flip
from repro.core.state import DeploymentState, StateDeriver
from repro.core.thresholds import (
    degree_scaled_thresholds,
    lognormal_thresholds,
    uniform_thresholds,
)

__all__ = [
    "DeploymentOutcome",
    "DeploymentSimulation",
    "DeploymentState",
    "DestState",
    "DiamondCensus",
    "LINEAR_PRICING",
    "LinkDeploymentResult",
    "LocalForecast",
    "Outcome",
    "Pricing",
    "PricingModel",
    "Projection",
    "ProjectionEngine",
    "RoundData",
    "RoundRecord",
    "STRATEGIES",
    "SecuritySnapshot",
    "SimulationConfig",
    "SimulationResult",
    "StateDeriver",
    "UtilityModel",
    "ZeroSumAnalysis",
    "compute_round_data",
    "content_providers",
    "degree_scaled_thresholds",
    "cps_plus_top_isps",
    "deployment_outcome",
    "diamond_census",
    "forecast_error_study",
    "greedy_early_adopters",
    "incoming_contribution",
    "local_project_flip",
    "lognormal_thresholds",
    "no_early_adopters",
    "outgoing_contribution",
    "project_flip",
    "projection_accuracy",
    "random_isps",
    "run_deployment",
    "security_snapshot",
    "top_degree_isps",
    "uniform_thresholds",
    "utilities_for_state",
    "utility_with_links",
    "zero_sum_analysis",
    "best_link_deployment",
]
