"""Per-round routing state and utilities (the Map-Reduce of App. C.3).

For a deployment state ``S`` the engine resolves the routing tree of
every destination (the *map* step, optionally parallelised across
destinations) and reduces the per-destination subtrees into the
outgoing / incoming utility of every AS (Section 3.3):

- outgoing (Eq. 1): ``u_n = sum over destinations d that n reaches via
  a customer edge of the weight of n's subtree in d's routing tree``;
- incoming (Eq. 2): ``u_n = sum over all destinations of the weights of
  the subtrees hanging off n via customer edges``.

The per-destination results are retained for the round so that the
projection engine can compute deltas against them.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import UtilityModel
from repro.core.state import DeploymentState, StateDeriver
from repro.routing.arena import (
    BatchedTrees,
    RoutingArena,
    compute_trees_batched,
    subtree_weights_batched,
)
from repro.routing.cache import RoutingCache
from repro.routing.fast_tree import RoutingTree  # noqa: F401  (re-export)
from repro.routing.policy import RouteClass
from repro.routing.tree import DestRouting
from repro.runtime.guard import current_guard

_CUSTOMER = int(RouteClass.CUSTOMER)
_PROVIDER = int(RouteClass.PROVIDER)

#: Per-``(dest, node)`` bytes of the batched kernels' working set:
#: ``choice`` int32 + ``secure``/``any_secure`` bool outputs, the
#: float64 subtree weights, and roughly one int32 of scratch.
_KERNEL_ROW_BYTES_PER_NODE = 18

#: The numpy (vectorised) kernels additionally materialise a float64
#: ``bincount`` temporary per weights level, so their working set is
#: one float64 per ``(dest, node)`` larger than the compiled loops'.
_NUMPY_EXTRA_ROW_BYTES_PER_NODE = 8


def _kernel_row_bytes(backend: str) -> int:
    """Per-(dest, node) working-set bytes for the named backend.

    Planning only — probes instead of resolving so an unusable compiled
    backend does not burn a ladder rung here *and* at the kernel call.
    An unusable (or unknown) backend plans with the numpy working set,
    which is the conservative (larger) forecast.
    """
    from repro.routing import backends as kernel_backends

    try:
        spec = kernel_backends.get_backend(backend)
    except ValueError:
        spec = None
    if spec is not None and spec.compiled and kernel_backends.probe(spec.name):
        return _KERNEL_ROW_BYTES_PER_NODE
    return _KERNEL_ROW_BYTES_PER_NODE + _NUMPY_EXTRA_ROW_BYTES_PER_NODE


@dataclasses.dataclass
class DestState:
    """Resolved routing toward one destination in the current state."""

    dr: DestRouting
    tree: RoutingTree
    weights: np.ndarray  # subtree weight per node (excluding the node)
    _children: tuple[np.ndarray, np.ndarray] | None = None

    def children(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR (indptr, idx): children of each node in the routing tree."""
        if self._children is None:
            choice = self.tree.choice
            n = len(choice)
            valid = np.flatnonzero(choice >= 0)
            parents = choice[valid]
            counts = np.bincount(parents, minlength=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            order = np.argsort(parents, kind="stable")
            self._children = (indptr, valid[order].astype(np.int32))
        return self._children

    def children_of(self, node: int) -> np.ndarray:
        """Nodes whose next hop is ``node``."""
        indptr, idx = self.children()
        return idx[indptr[node]:indptr[node + 1]]


def outgoing_contribution(ds: DestState, node: int) -> float:
    """Contribution of this destination to ``node``'s outgoing utility."""
    if ds.dr.cls[node] != _CUSTOMER:
        return 0.0
    return float(ds.weights[node])


def incoming_contribution(ds: DestState, node: int, node_weights: np.ndarray) -> float:
    """Contribution of this destination to ``node``'s incoming utility."""
    kids = ds.children_of(node)
    if not len(kids):
        return 0.0
    customer_kids = kids[ds.dr.cls[kids] == _PROVIDER]
    if not len(customer_kids):
        return 0.0
    return float((ds.weights[customer_kids] + node_weights[customer_kids]).sum())


@dataclasses.dataclass
class RoundData:
    """Everything the decision rule needs about the current round."""

    state: DeploymentState
    node_secure: np.ndarray
    breaks_ties: np.ndarray
    dest_states: list[DestState]
    utilities: np.ndarray          # per node, under the configured model
    sec_matrix: np.ndarray         # bool [num_dests, n]: source path security
    any_sec_matrix: np.ndarray     # bool [num_dests, n]: secure tiebreak cand.
    secure_dest_positions: np.ndarray  # positions k with a secure destination

    def dest_state(self, pos: int) -> DestState:
        """Per-destination state by position in the cache's dest list."""
        return self.dest_states[pos]


def compute_round_data(
    cache: RoutingCache,
    deriver: StateDeriver,
    state: DeploymentState,
    model: UtilityModel,
) -> RoundData:
    """Resolve all routing trees and utilities for ``state``.

    Runs on the pooled :class:`~repro.routing.arena.RoutingArena`
    (built on first use): every destination's tree is resolved by the
    batched level-synchronous kernel in one stacked pass, and the
    security/candidate matrices are the kernel's output buffers —
    no per-destination copies.
    """
    graph = cache.graph
    node_secure = deriver.node_secure(state)
    breaks = deriver.breaks_ties(node_secure)
    w = graph.weights

    # no-op for state-independent policies; rebuilds every structure
    # under (node_secure, breaks) for security_1st / security_2nd
    cache.ensure_state(node_secure, breaks)
    arena = cache.ensure_arena()
    slots = arena.all_slots()
    chunk_rows = current_guard().plan_batch_rows(
        arena.num_dests, _kernel_row_bytes(arena.backend) * graph.n,
        what="round kernel",
    )
    if chunk_rows >= arena.num_dests:
        bt = compute_trees_batched(arena, slots, node_secure, breaks)
        w2d = subtree_weights_batched(arena, slots, bt.choice, w)
    else:
        bt, w2d = _chunked_round_kernels(
            arena, slots, node_secure, breaks, w, chunk_rows
        )
    dest_states = [
        DestState(dr=cache.dest_routing(dest), tree=bt.tree(k), weights=w2d[k])
        for k, dest in enumerate(cache.destinations)
    ]
    utilities = _batched_utilities(arena, bt, w2d, w, model)

    secure_positions = np.flatnonzero(
        node_secure[np.asarray(cache.destinations, dtype=np.int64)]
    )
    return RoundData(
        state=state,
        node_secure=node_secure,
        breaks_ties=breaks,
        dest_states=dest_states,
        utilities=utilities,
        sec_matrix=bt.secure,
        any_sec_matrix=bt.any_secure,
        secure_dest_positions=secure_positions,
    )


def _chunked_round_kernels(
    arena: RoutingArena,
    slots: np.ndarray,
    node_secure: np.ndarray,
    breaks: np.ndarray,
    weights: np.ndarray,
    chunk_rows: int,
) -> tuple[BatchedTrees, np.ndarray]:
    """Run the round kernels over destination chunks (degraded mode).

    The ``chunked_batches`` ladder rung: instead of resolving every
    destination in one stacked pass, the kernels run over ``chunk_rows``
    slots at a time, bounding the transient per-level gather/scratch
    arrays by the chunk size.  The ``[num_dests, n]`` output matrices
    are still materialised (every downstream consumer needs them), and
    because the kernels are independent per destination the stitched
    outputs are bit-identical to the full-batch pass — degraded runs
    stay exact, just slower.
    """
    num = arena.num_dests
    n = arena.graph_n
    choice = np.empty((num, n), dtype=np.int32)
    secure = np.empty((num, n), dtype=bool)
    any_secure = np.empty((num, n), dtype=bool)
    w2d = np.empty((num, n), dtype=np.float64)
    for lo in range(0, num, chunk_rows):
        hi = min(lo + chunk_rows, num)
        sub = slots[lo:hi]
        part = compute_trees_batched(arena, sub, node_secure, breaks)
        choice[lo:hi] = part.choice
        secure[lo:hi] = part.secure
        any_secure[lo:hi] = part.any_secure
        w2d[lo:hi] = subtree_weights_batched(arena, sub, part.choice, weights)
    bt = BatchedTrees(
        dest_ids=arena.dest_ids[slots],
        slots=slots,
        choice=choice,
        secure=secure,
        any_secure=any_secure,
    )
    return bt, w2d


def _batched_utilities(
    arena: RoutingArena,
    bt: BatchedTrees,
    w2d: np.ndarray,
    node_weights: np.ndarray,
    model: UtilityModel,
) -> np.ndarray:
    """Reduce the ``[num_dests, n]`` subtree weights into per-AS utility."""
    n = arena.graph_n
    cls2d = arena.cls
    if model is UtilityModel.OUTGOING:
        return np.where(cls2d == _CUSTOMER, w2d, 0.0).sum(axis=0)
    mask = cls2d == _PROVIDER
    if not mask.any():
        return np.zeros(n, dtype=np.float64)
    _, src_nodes = np.nonzero(mask)
    return np.bincount(
        bt.choice[mask],
        weights=w2d[mask] + node_weights[src_nodes],
        minlength=n,
    )


def utilities_for_state(
    cache: RoutingCache,
    deriver: StateDeriver,
    state: DeploymentState,
    model: UtilityModel,
) -> np.ndarray:
    """Convenience wrapper: utilities of every AS in ``state``."""
    return compute_round_data(cache, deriver, state, model).utilities
