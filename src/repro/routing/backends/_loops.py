"""Pure-Python loop bodies shared by the compiled backends.

Each function here is written in the *nopython* subset: scalar loops,
typed numpy indexing, no Python objects — exactly what
:mod:`repro.routing.backends.numba_impl` passes to ``@njit`` and what
the C translation unit in :mod:`repro.routing.backends.cext_impl`
transliterates line for line.  The module is also registered as the
hidden ``python`` backend so the parity suite can run the compiled
control flow under plain CPython (slow, but it pins the semantics the
JIT and the C code inherit).

Calling convention (all backends):

- outputs are written **in place**; the functions return ``None``;
- dtypes are fixed by the dispatchers: ``nodes``/``cands``/``node_b``/
  ``choice`` int32, ``sizes``/``starts``/``row_of_edge`` int64,
  ``keys``/``tie_key`` uint64, masks bool, weights float64, fixpoint
  labels int8/int32/bool, rank metadata int64 codes + uint32 widths;
- 2-D arrays are C-contiguous ``[batch, n]`` matrices.

Bit-identity with the numpy backend is structural, not accidental:

- tree levels select a per-node *minimum* key — order-independent, and
  candidates live one level below their node, so per-node loops see the
  same already-resolved state the whole-level gather sees;
- subtree weights: every parent receives contributions only while its
  children's level is processed (children sit exactly one level deeper)
  and ``0.0 + x == x`` exactly in IEEE-754, so accumulating child by
  child in stack order reproduces ``bincount``'s left-to-right sum bit
  for bit;
- the fixpoint sweep recomputes each edge's rank key in two passes
  (min, then tie mask) rather than materialising the key row — the key
  is a deterministic pure function of the labels, so both passes agree.
"""

from __future__ import annotations

import numpy as np

from repro.routing.policy import POSITION_BITS, RouteClass

_BLOCKED = np.uint64(2**64 - 1)
_POS_MASK = np.uint64(0xFFFF)       # (1 << POSITION_BITS) - 1
_INVALID_A = np.uint32(0xFFFFFFFF)

# The loop bodies inline these as literals (numba freezes globals at
# compile time; the C code hardcodes them), so pin them to the enum.
_SELF = 3          # RouteClass.SELF
_CUSTOMER = 2      # RouteClass.CUSTOMER
_UNREACHABLE = -1  # RouteClass.UNREACHABLE

if (_SELF, _CUSTOMER, _UNREACHABLE) != (
    int(RouteClass.SELF), int(RouteClass.CUSTOMER), int(RouteClass.UNREACHABLE)
) or int(_POS_MASK) != (1 << POSITION_BITS) - 1:  # pragma: no cover
    raise AssertionError(
        "compiled-kernel constants drifted from repro.routing.policy; "
        "update _loops.py and the C source in cext_impl.py together"
    )


def trees_level(nodes, sizes, starts, row_of_edge, cands, keys, node_b,
                node_secure, breaks_ties, choice, secure, any_secure):
    """Resolve one stacked path-length level, one node at a time."""
    for r in range(nodes.shape[0]):
        u = nodes[r]
        b = node_b[r]
        s = starts[r]
        m = sizes[r]
        if m <= 0:
            continue
        any_sec = False
        min_all = _BLOCKED
        min_sec = _BLOCKED
        for e in range(s, s + m):
            k = keys[e]
            if k < min_all:
                min_all = k
            if secure[b, cands[e]]:
                any_sec = True
                if k < min_sec:
                    min_sec = k
        any_secure[b, u] = any_sec
        if node_secure[u] and breaks_ties[u] and any_sec:
            kmin = min_sec
        else:
            kmin = min_all
        c = cands[s + np.int64(kmin & _POS_MASK)]
        choice[b, u] = c
        secure[b, u] = node_secure[u] and secure[b, c]


def weights_level(nodes, node_b, choice, node_weights, w):
    """Push one level's subtree weights up to the chosen parents."""
    for r in range(nodes.shape[0]):
        u = nodes[r]
        b = node_b[r]
        p = choice[b, u]
        if p >= 0:
            w[b, p] += w[b, u] + node_weights[u]


def fixpoint_sweep(u, v, route_cls, seg_starts, seg_sizes, seg_u, tie_key,
                   lp_field, is_provider_edge, rank_codes, rank_widths,
                   cls, length, sec, applies_edge, node_secure,
                   new_cls, new_len, new_sec, tied):
    """One synchronous best-response step over the segment-sorted edges."""
    for row in range(cls.shape[0]):
        for s in range(seg_starts.shape[0]):
            lo = seg_starts[s]
            m = seg_sizes[s]
            best = _INVALID_A
            for e in range(lo, lo + m):
                k = _edge_key(e, row, v, route_cls, lp_field,
                              is_provider_edge, applies_edge,
                              rank_codes, rank_widths, cls, length, sec)
                if k < best:
                    best = k
            best_tie = _BLOCKED
            for e in range(lo, lo + m):
                k = _edge_key(e, row, v, route_cls, lp_field,
                              is_provider_edge, applies_edge,
                              rank_codes, rank_widths, cls, length, sec)
                t = best != _INVALID_A and k == best
                tied[row, e] = t
                if t and tie_key[e] < best_tie:
                    best_tie = tie_key[e]
            uu = seg_u[s]
            if best != _INVALID_A:
                eidx = lo + np.int64(best_tie & _POS_MASK)
                vv = v[eidx]
                new_cls[row, uu] = route_cls[eidx]
                new_len[row, uu] = length[row, vv] + 1
                new_sec[row, uu] = node_secure[uu] and sec[row, vv]
            else:
                new_cls[row, uu] = _UNREACHABLE
                new_len[row, uu] = -1
                new_sec[row, uu] = False


def _edge_key(e, row, v, route_cls, lp_field, is_provider_edge,
              applies_edge, rank_codes, rank_widths, cls, length, sec):
    """Packed uint32 rank key of one offer; ``_INVALID_A`` if barred."""
    vv = v[e]
    cv = cls[row, vv]
    if cv == _UNREACHABLE:
        return _INVALID_A
    # GR2: only customer routes / the origin's own prefix are exported
    # across peerings and up to providers.
    if not (is_provider_edge[e] or cv == _CUSTOMER or cv == _SELF):
        return _INVALID_A
    lv = length[row, vv]
    if lv < 0:
        lv = 0
    sp = np.uint32(lv + 1)
    if applies_edge[e] and sec[row, vv]:
        secp = np.uint32(0)
    else:
        secp = np.uint32(1)
    key = np.uint32(0)
    for i in range(rank_codes.shape[0]):
        code = rank_codes[i]
        if code == 0:
            field = np.uint32(lp_field[e])
        elif code == 1:
            field = sp
        else:
            field = secp
        key = np.uint32((key << rank_widths[i]) | field)
    return key


def attack_sweep(u, v, route_cls, seg_starts, seg_sizes, seg_u, tie_key,
                 lp_field, is_provider_edge, rank_codes, rank_widths,
                 attacker, gullible_edge, validators, leak, drop,
                 cls, length, sec, att, applies_edge, node_secure,
                 new_cls, new_len, new_sec, new_att):
    """One multi-origin (victim + attacker) best-response step.

    The fixpoint sweep with a per-row adversary: ``att`` tracks which
    labels descend from the attacker's announcement, ``gullible_edge``
    marks the provider edges where a simplex stub would believe the
    attacker's word (§2.2.1), ``validators`` + ``drop`` bar unvalidated
    routes at fully-validating ASes, and ``leak`` lets offers *from*
    the attacker bypass GR2 (a route leak).  The caller pins the
    principals' labels after each step.
    """
    for row in range(cls.shape[0]):
        att_row = attacker[row]
        for s in range(seg_starts.shape[0]):
            lo = seg_starts[s]
            m = seg_sizes[s]
            uu = seg_u[s]
            drop_u = drop and validators[uu]
            best = _INVALID_A
            for e in range(lo, lo + m):
                k = _attack_edge_key(e, row, att_row, drop_u, leak,
                                     v, lp_field, is_provider_edge,
                                     applies_edge, gullible_edge,
                                     rank_codes, rank_widths,
                                     cls, length, sec, att)
                if k < best:
                    best = k
            if best == _INVALID_A:
                new_cls[row, uu] = _UNREACHABLE
                new_len[row, uu] = -1
                new_sec[row, uu] = False
                new_att[row, uu] = False
                continue
            best_tie = _BLOCKED
            for e in range(lo, lo + m):
                k = _attack_edge_key(e, row, att_row, drop_u, leak,
                                     v, lp_field, is_provider_edge,
                                     applies_edge, gullible_edge,
                                     rank_codes, rank_widths,
                                     cls, length, sec, att)
                if k == best and tie_key[e] < best_tie:
                    best_tie = tie_key[e]
            eidx = lo + np.int64(best_tie & _POS_MASK)
            vv = v[eidx]
            seen = sec[row, vv] or (
                gullible_edge[eidx] and vv == att_row and att[row, vv]
            )
            new_cls[row, uu] = route_cls[eidx]
            new_len[row, uu] = length[row, vv] + 1
            new_sec[row, uu] = node_secure[uu] and seen
            new_att[row, uu] = att[row, vv]


def _attack_edge_key(e, row, att_row, drop_u, leak,
                     v, lp_field, is_provider_edge,
                     applies_edge, gullible_edge,
                     rank_codes, rank_widths, cls, length, sec, att):
    """Rank key of one offer under attack; ``_INVALID_A`` if barred."""
    vv = v[e]
    cv = cls[row, vv]
    if cv == _UNREACHABLE:
        return _INVALID_A
    # GR2, with the leak escape hatch: the attacker exports its selected
    # route to every neighbor regardless of class.
    if not (is_provider_edge[e] or cv == _CUSTOMER or cv == _SELF
            or (leak and vv == att_row)):
        return _INVALID_A
    # end-state filtering: validators reject what cannot be validated
    # (genuine security only — gullible belief does not survive ROV).
    if drop_u and not sec[row, vv]:
        return _INVALID_A
    lv = length[row, vv]
    if lv < 0:
        lv = 0
    sp = np.uint32(lv + 1)
    seen = sec[row, vv] or (
        gullible_edge[e] and vv == att_row and att[row, vv]
    )
    if applies_edge[e] and seen:
        secp = np.uint32(0)
    else:
        secp = np.uint32(1)
    key = np.uint32(0)
    for i in range(rank_codes.shape[0]):
        code = rank_codes[i]
        if code == 0:
            field = np.uint32(lp_field[e])
        elif code == 1:
            field = sp
        else:
            field = secp
        key = np.uint32((key << rank_widths[i]) | field)
    return key
