"""Fault injection through ProcessEngine: retry, requeue, fallback.

These are the acceptance tests for the crash-tolerant engine: a worker
that raises, hangs, or is SIGKILLed mid-partition must not fail the
map — the partition is retried (split to isolate the culprit) and the
final result list must equal :class:`SerialEngine`'s output.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.parallel.engine import (
    ItemFailure,
    ProcessEngine,
    SerialEngine,
    choose_start_method,
)
from repro.runtime.errors import ItemFailedError
from repro.runtime.faults import FaultInjected, FaultInjector
from repro.runtime.retry import RetryPolicy

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault tests target the fork start method",
)

ITEMS = list(range(40))
FAST_RETRY = RetryPolicy(max_attempts=5, backoff_base=0.01, backoff_max=0.05)


def square(x: int) -> int:
    return x * x


def expected(items=ITEMS):
    return SerialEngine().map(square, items)


class TestWorkerDeath:
    def test_sigkilled_worker_does_not_fail_the_map(self, tmp_path):
        injector = FaultInjector(
            {7, 23}, mode="kill", fail_times=1, state_dir=tmp_path, fn=square
        )
        engine = ProcessEngine(workers=2, retry=FAST_RETRY)
        assert engine.map(injector, ITEMS) == expected()
        assert engine.last_stats.worker_deaths >= 1
        assert engine.last_stats.retries >= 1

    def test_repeated_kills_survived_by_splitting(self, tmp_path):
        injector = FaultInjector(
            {11}, mode="kill", fail_times=3, state_dir=tmp_path, fn=square
        )
        engine = ProcessEngine(workers=2, retry=FAST_RETRY)
        assert engine.map(injector, ITEMS) == expected()
        assert engine.last_stats.worker_deaths >= 3
        assert engine.last_stats.splits >= 1


class TestHangs:
    def test_hung_worker_reaped_by_timeout(self, tmp_path):
        injector = FaultInjector(
            {5}, mode="hang", fail_times=1, state_dir=tmp_path,
            hang_seconds=60.0, fn=square,
        )
        engine = ProcessEngine(
            workers=2, retry=FAST_RETRY, partition_timeout=0.5
        )
        assert engine.map(injector, ITEMS) == expected()
        assert engine.last_stats.timeouts >= 1


class TestRaises:
    def test_transient_raise_retried(self, tmp_path):
        injector = FaultInjector(
            {3, 17}, mode="raise", fail_times=2, state_dir=tmp_path, fn=square
        )
        engine = ProcessEngine(workers=3, retry=FAST_RETRY)
        assert engine.map(injector, ITEMS) == expected()
        assert engine.last_stats.worker_errors >= 2

    def test_order_preserved_under_faults(self, tmp_path):
        items = list(range(50, 0, -1))
        injector = FaultInjector(
            {50, 25, 1}, mode="raise", fail_times=1, state_dir=tmp_path, fn=square
        )
        engine = ProcessEngine(workers=2, retry=FAST_RETRY)
        assert engine.map(injector, items) == SerialEngine().map(square, items)


class TestSerialFallback:
    def test_worker_only_failure_degrades_to_parent(self):
        injector = FaultInjector({4}, mode="raise", only_in_worker=True, fn=square)
        engine = ProcessEngine(
            workers=2, retry=RetryPolicy(max_attempts=2, backoff_base=0.005)
        )
        assert engine.map(injector, ITEMS) == expected()
        assert engine.last_stats.serial_fallback_items >= 1

    def test_poisoned_item_reported_with_identity(self):
        injector = FaultInjector({13}, mode="raise", fn=square)
        engine = ProcessEngine(
            workers=2, retry=RetryPolicy(max_attempts=2, backoff_base=0.005)
        )
        with pytest.raises(ItemFailedError) as exc_info:
            engine.map(injector, ITEMS)
        assert exc_info.value.index == 13
        assert exc_info.value.item == 13
        assert isinstance(exc_info.value.__cause__, FaultInjected)

    def test_collect_mode_isolates_poisoned_item(self):
        injector = FaultInjector({13}, mode="raise", fn=square)
        engine = ProcessEngine(
            workers=2, on_error="collect",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.005),
        )
        out = engine.map(injector, ITEMS)
        assert isinstance(out[13], ItemFailure)
        assert out[13].index == 13 and not out[13]
        good = expected()
        assert [v for i, v in enumerate(out) if i != 13] == [
            v for i, v in enumerate(good) if i != 13
        ]
        assert engine.last_stats.failed_items == 1


class TestStartMethodFallback:
    def test_spawn_start_method_works(self):
        engine = ProcessEngine(workers=2, start_method="spawn")
        assert engine.map(square, list(range(8))) == [x * x for x in range(8)]

    def test_unavailable_start_method_rejected(self):
        with pytest.raises(ValueError, match="unavailable"):
            ProcessEngine(workers=2, start_method="no-such-method")

    def test_choose_start_method_prefers_fork(self):
        assert choose_start_method() == "fork"


class TestFaultInjector:
    def test_validates_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultInjector({1}, mode="explode")

    def test_fail_times_requires_state_dir(self):
        with pytest.raises(ValueError, match="state_dir"):
            FaultInjector({1}, fail_times=2)

    def test_counter_shared_across_calls(self, tmp_path):
        injector = FaultInjector(
            {1}, mode="raise", fail_times=2, state_dir=tmp_path, fn=square
        )
        for _ in range(2):
            with pytest.raises(FaultInjected):
                injector(1)
        assert injector(1) == 1  # third encounter succeeds
