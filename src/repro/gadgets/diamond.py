"""The DIAMOND scenario (Figure 2, §5.1).

Two ISPs compete for traffic toward a multihomed stub: a traffic
source (e.g. a secure Tier-1 or content provider) has equally-good
routes to the stub through both of them.  When one competitor deploys
S*BGP, the stub becomes simplex-secure, the source's SecP tie-break
moves its traffic onto the fully-secure route, and the other
competitor is pressed to deploy too.
"""

from __future__ import annotations

import dataclasses

from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class DiamondNetwork:
    """A minimal DIAMOND: source Tier-1, two competing ISPs, one stub.

    AS numbers:

    - ``source``: the secure traffic source (early adopter), provider
      of both competitors;
    - ``left`` / ``right``: the competing ISPs;
    - ``stub``: the multihomed stub customer of both;
    - ``feeders``: stubs hanging off the source so that its subtree
      carries weight.
    """

    graph: ASGraph
    source: int
    left: int
    right: int
    stub: int
    feeders: tuple[int, ...]


def build_diamond(num_feeders: int = 4, source_weight: float = 10.0) -> DiamondNetwork:
    """Construct the Figure-2 competition structure.

    ``source_weight`` is the traffic weight of the source AS (the
    paper's sources are Tier-1s transiting large volumes or CPs
    originating them); ``num_feeders`` extra unit-weight stubs behind
    the source add transit volume along whichever route the source
    picks.
    """
    graph = ASGraph()
    source, left, right, stub = 1, 2, 3, 4
    for asn in (source, left, right, stub):
        graph.add_as(asn)
    graph.add_customer_provider(provider=source, customer=left)
    graph.add_customer_provider(provider=source, customer=right)
    graph.add_customer_provider(provider=left, customer=stub)
    graph.add_customer_provider(provider=right, customer=stub)

    feeders = []
    for k in range(num_feeders):
        asn = 100 + k
        graph.add_as(asn)
        graph.add_customer_provider(provider=source, customer=asn)
        feeders.append(asn)

    graph.validate()
    graph.set_weight(source, source_weight)
    return DiamondNetwork(
        graph=graph,
        source=source,
        left=left,
        right=right,
        stub=stub,
        feeders=tuple(feeders),
    )
