"""Round-trip and error tests for the CAIDA as-rel format."""

from __future__ import annotations

import pytest

from repro.topology.errors import GraphFormatError
from repro.topology.generator import generate_topology
from repro.topology.serialization import dumps_as_rel, load_as_rel, loads_as_rel


SAMPLE = """\
# a comment
# cp: 30
1|2|-1
1|3|-1
2|3|0
3|30|-1
"""


class TestLoading:
    def test_parse_sample(self):
        g = loads_as_rel(SAMPLE)
        assert g.n == 4
        assert g.customers_of(1) == [2, 3]
        assert g.peers_of(2) == [3]
        assert g.cp_asns == {30}

    def test_explicit_cps_union_with_markers(self):
        g = loads_as_rel(SAMPLE, cp_asns=[2])
        assert g.cp_asns == {2, 30}

    def test_bad_line_raises_with_lineno(self):
        with pytest.raises(GraphFormatError, match=r"<stream>:1:"):
            loads_as_rel("1|2\n")

    def test_bad_line_is_a_schema_error(self):
        from repro.runtime.errors import SchemaError

        with pytest.raises(SchemaError):
            loads_as_rel("1|2\n")

    def test_bad_line_in_file_names_the_path(self, tmp_path):
        path = tmp_path / "broken.as-rel"
        path.write_text("1|2|-1\n1|2\n")
        with pytest.raises(GraphFormatError, match=r"broken\.as-rel:2:"):
            load_as_rel(path)

    def test_non_integer_field(self):
        with pytest.raises(GraphFormatError, match="non-integer"):
            loads_as_rel("1|x|0\n")

    def test_unknown_relationship_code(self):
        with pytest.raises(GraphFormatError, match="unknown relationship"):
            loads_as_rel("1|2|7\n")

    def test_bad_cp_marker(self):
        with pytest.raises(GraphFormatError, match="bad cp marker"):
            loads_as_rel("# cp: abc\n")

    def test_blank_lines_ignored(self):
        g = loads_as_rel("\n\n1|2|-1\n\n")
        assert g.n == 2

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "graph.as-rel"
        path.write_text(SAMPLE)
        g = load_as_rel(path)
        assert g.n == 4


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self):
        top = generate_topology(n=120, seed=8)
        text = dumps_as_rel(top.graph)
        g2 = loads_as_rel(text)
        assert g2.n == top.graph.n
        assert g2.cp_asns == top.graph.cp_asns
        assert sorted(g2.edges()) == sorted(top.graph.edges())

    def test_dump_to_path(self, tmp_path):
        top = generate_topology(n=60, seed=8)
        path = tmp_path / "out.as-rel"
        from repro.topology.serialization import dump_as_rel

        dump_as_rel(top.graph, path)
        g2 = load_as_rel(path)
        assert g2.n == top.graph.n
