"""Checkpoint/resume: an interrupted sweep must finish where it left off.

Two levels: an in-process interruption (exception mid-grid), and the
acceptance-criterion integration test — a subprocess SIGKILLs itself
mid-grid, the sweep is rerun with the same journal, and the resulting
cell set must be identical to an uninterrupted run with the completed
cells skipped, not recomputed.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.setup import build_environment
from repro.experiments.sweeps import (
    SWEEP_JOURNAL_KIND,
    cell_from_dict,
    run_sweep,
)
from repro.runtime.errors import JournalMismatchError
from repro.runtime.journal import RunJournal

THETAS = (0.0, 0.05)


@pytest.fixture(scope="module")
def tiny_env():
    return build_environment(n=120, seed=11, x=0.10, warm=True)


def adopter_sets(env):
    sets = env.adopter_sets()
    return {"none": [], "top-5": sets["top-5"]}


class _InterruptingJournal(RunJournal):
    """Raises after N appends — a deterministic mid-grid crash."""

    def __init__(self, path, stop_after: int):
        super().__init__(path)
        self.stop_after = stop_after

    def append(self, record):
        super().append(record)
        self.stop_after -= 1
        if self.stop_after == 0:
            raise KeyboardInterrupt("injected interruption")


class TestInProcessResume:
    def test_resume_matches_uninterrupted_run(self, tiny_env, tmp_path):
        sets = adopter_sets(tiny_env)
        clean = run_sweep(tiny_env, thetas=THETAS, adopter_sets=sets)

        path = tmp_path / "sweep.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                tiny_env, thetas=THETAS, adopter_sets=sets,
                journal=_InterruptingJournal(path, stop_after=2),
            )
        journal = RunJournal(path)
        assert len(journal) == 2  # both finished cells survived the crash

        # the resumed run replays those 2 and computes the rest
        before = path.read_text()
        resumed = run_sweep(
            tiny_env, thetas=THETAS, adopter_sets=sets, journal=journal
        )
        assert resumed == clean
        # completed cells were skipped: the journal grew strictly by appends
        assert path.read_text().startswith(before)
        assert len(journal) == len(clean)

    def test_completed_journal_runs_nothing(self, tiny_env, tmp_path):
        sets = adopter_sets(tiny_env)
        path = tmp_path / "sweep.jsonl"
        first = run_sweep(tiny_env, thetas=THETAS, adopter_sets=sets, journal=path)
        snapshot = path.read_text()
        second = run_sweep(tiny_env, thetas=THETAS, adopter_sets=sets, journal=path)
        assert second == first
        assert path.read_text() == snapshot  # fully replayed, nothing appended

    def test_mismatched_grid_rejected(self, tiny_env, tmp_path):
        sets = adopter_sets(tiny_env)
        path = tmp_path / "sweep.jsonl"
        run_sweep(tiny_env, thetas=THETAS, adopter_sets=sets, journal=path)
        with pytest.raises(JournalMismatchError):
            run_sweep(
                tiny_env, thetas=(0.0, 0.30), adopter_sets=sets, journal=path
            )


_VICTIM_SCRIPT = """
import os, signal, sys
from repro.experiments.setup import build_environment
from repro.experiments.sweeps import run_sweep
from repro.runtime.journal import RunJournal

path, kill_after = sys.argv[1], int(sys.argv[2])
env = build_environment(n=120, seed=11, x=0.10, warm=True)
sets = env.adopter_sets()
sets = {"none": [], "top-5": sets["top-5"]}
journal = RunJournal(path)
if kill_after:
    durable_append = journal.append
    seen = [0]
    def append_then_maybe_die(record):
        durable_append(record)
        seen[0] += 1
        if seen[0] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
    journal.append = append_then_maybe_die
cells = run_sweep(env, thetas=(0.0, 0.05), adopter_sets=sets, journal=journal)
print(len(cells))
"""


def _run_victim(journal_path: Path, kill_after: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _VICTIM_SCRIPT, str(journal_path), str(kill_after)],
        env=env, capture_output=True, text=True, timeout=300,
    )


class TestSigkillResume:
    def test_sigkill_mid_grid_then_resume(self, tiny_env, tmp_path):
        """Acceptance: SIGKILL mid-grid + restart == uninterrupted run."""
        path = tmp_path / "sweep.jsonl"
        killed = _run_victim(path, kill_after=2)
        assert killed.returncode == -signal.SIGKILL
        after_crash = path.read_text()
        journal = RunJournal(path)
        assert len(journal) == 2  # completed cells durably journaled

        resumed = _run_victim(path, kill_after=0)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout.strip() == "4"

        # identical cell set to an uninterrupted in-process run
        clean = run_sweep(
            tiny_env, thetas=THETAS, adopter_sets=adopter_sets(tiny_env)
        )
        final = [
            cell_from_dict(r["cell"])
            for r in RunJournal(path).iter_records()
            if r.get("type") == "cell"
        ]
        assert sorted(final, key=lambda c: (c.adopters, c.theta)) == sorted(
            clean, key=lambda c: (c.adopters, c.theta)
        )
        # the two crash-surviving cells were skipped, not recomputed
        assert path.read_text().startswith(after_crash)
        assert RunJournal(path).header()["kind"] == SWEEP_JOURNAL_KIND
