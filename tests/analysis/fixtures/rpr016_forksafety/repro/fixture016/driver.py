"""Dispatches the workers: `.map` first-arg and `Thread(target=...)`."""

import threading

from repro.fixture016.worker import record


class MiniEngine:
    def map(self, fn, items):
        return [fn(item) for item in items]


def run_pool() -> None:
    engine = MiniEngine()
    engine.map(record, ["a", "b"])


def run_thread() -> threading.Thread:
    thread = threading.Thread(target=record, args=("t",))
    thread.start()
    return thread
