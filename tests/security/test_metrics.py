"""Tests for attack-impact metrics over deployment states."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import DeploymentState, StateDeriver
from repro.security.metrics import (
    end_state_everyone_secure,
    impact_for_state,
    sample_attack_impact,
)
from repro.topology.generator import generate_topology
from repro.topology.relationships import ASRole


@pytest.fixture(scope="module")
def world():
    top = generate_topology(n=200, seed=31)
    deriver = StateDeriver(top.graph, stub_breaks_ties=True)
    return top.graph, deriver


class TestSampling:
    def test_deterministic_given_seed(self, world):
        g, deriver = world
        none = np.zeros(g.n, dtype=bool)
        a = sample_attack_impact(g, none, none, samples=5, seed=7)
        b = sample_attack_impact(g, none, none, samples=5, seed=7)
        assert a.per_pair == b.per_pair

    def test_sample_count(self, world):
        g, _ = world
        none = np.zeros(g.n, dtype=bool)
        imp = sample_attack_impact(g, none, none, samples=6, seed=1)
        assert imp.samples == 6
        assert len(imp.per_pair) == 6

    def test_insecure_world_impact_is_large(self, world):
        """§2.2.1: a random attacker fools about half the Internet."""
        g, _ = world
        none = np.zeros(g.n, dtype=bool)
        imp = sample_attack_impact(g, none, none, samples=10, seed=3)
        assert imp.mean_fraction_fooled > 0.2

    def test_pools_respected(self, world):
        g, _ = world
        none = np.zeros(g.n, dtype=bool)
        imp = sample_attack_impact(
            g, none, none, samples=4, seed=2,
            attacker_pool=[0], victim_pool=[5, 6],
        )
        for attacker, victim, _ in imp.per_pair:
            assert attacker == 0
            assert victim in (5, 6)


class TestEndState:
    def test_end_state_marks_everyone(self, world):
        g, deriver = world
        state = end_state_everyone_secure(g)
        secure = deriver.node_secure(state)
        assert secure.all()
        # stubs are simplex-secure, not deliberate deployers
        for i in range(g.n):
            if g.roles[i] == int(ASRole.STUB):
                assert i not in state.deployers

    def test_end_state_nearly_immune_with_filtering(self, world):
        """§2.2.1: the only vector left is the attacker's own stubs."""
        g, deriver = world
        state = end_state_everyone_secure(g)
        imp = impact_for_state(
            g, deriver, state, samples=10, seed=5, drop_unvalidated=True
        )
        assert imp.mean_fraction_fooled < 0.05

    def test_deployment_reduces_impact(self, world):
        """More deployment, less attack surface (tie-break mode)."""
        g, deriver = world
        none_state = DeploymentState(frozenset(), frozenset())
        imp0 = impact_for_state(g, deriver, none_state, samples=10, seed=5)
        imp1 = impact_for_state(
            g, deriver, end_state_everyone_secure(g), samples=10, seed=5
        )
        assert imp1.mean_fraction_fooled <= imp0.mean_fraction_fooled + 0.05
