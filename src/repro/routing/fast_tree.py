"""The fast routing-tree algorithm (Appendix C.2), vectorised.

Given the state-independent :class:`~repro.routing.tree.DestRouting`
structure and the security flags of the current deployment state, this
module resolves each node's actual next hop and whether its chosen path
is fully secure, processing nodes level-by-level in ascending path
length exactly as the paper describes:

    "we start at the destination d and proceed through each node i in
    ascending order of path length.  For each node i we determine (a)
    which AS in i's tiebreak set i chooses as its next hop, and (b)
    whether i has a fully-secure path, by checking if (1) i is secure
    and (2) there are nodes in i's tiebreak set with a secure path."

Within one level all nodes are independent, so each level is resolved
with numpy segment operations; the Python-level loop runs only over the
handful of path-length levels.  A scalar implementation with identical
semantics is kept for differential testing.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.routing.policy import POSITION_BITS, tie_hash_array
from repro.routing.tree import DestRouting

_POS_MASK = np.uint64((1 << POSITION_BITS) - 1)
_HASH_MASK = ~_POS_MASK
_BLOCKED = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclasses.dataclass
class RoutingTree:
    """Resolved routing tree toward one destination in one state."""

    dest: int
    choice: np.ndarray  # int32[n]; next hop, -1 for dest/unreachable
    secure: np.ndarray  # bool[n]; True iff the node's full chosen path is secure
    #: bool[n]; True iff some tiebreak candidate offers a secure path.
    #: This is the signal the projection engine uses to filter
    #: destinations a flip could possibly affect (Appendix C.4).
    any_secure_candidate: np.ndarray

    def path_from(self, source: int, max_hops: int = 64) -> list[int]:
        """Node-index path ``source -> ... -> dest`` (empty if unreachable)."""
        if source != self.dest and self.choice[source] < 0:
            return []
        path = [source]
        node = source
        while node != self.dest:
            node = int(self.choice[node])
            path.append(node)
            if len(path) > max_hops:
                raise RuntimeError("routing tree contains a cycle")
        return path


def compute_tree(
    dr: DestRouting,
    node_secure: np.ndarray,
    breaks_ties: np.ndarray,
) -> RoutingTree:
    """Resolve next hops and path security for every node (vectorised).

    Parameters
    ----------
    dr:
        Precomputed structure for the destination.
    node_secure:
        bool[n]; True where the AS has deployed (full or simplex) S*BGP.
    breaks_ties:
        bool[n]; True where the AS applies the SecP criterion.  Secure
        ISPs always do; stubs only when the simulation assumes so
        (§6.7); insecure ASes never do (callers pass
        ``node_secure & policy``).
    """
    n = len(dr.cls)
    choice = np.full(n, -1, dtype=np.int32)
    secure = np.zeros(n, dtype=bool)
    any_secure = np.zeros(n, dtype=bool)
    order, indptr, cands = dr.order, dr.indptr, dr.cands
    levels = dr.level_starts
    tie_keys = dr.tie_keys()  # state-independent, computed once per dest

    secure[dr.dest] = node_secure[dr.dest]

    for level in range(1, len(levels) - 1):
        lo, hi = int(levels[level]), int(levels[level + 1])
        if lo == hi:
            continue
        nodes = order[lo:hi]
        seg_lo, seg_hi = int(indptr[lo]), int(indptr[hi])
        c = cands[seg_lo:seg_hi]
        starts = (indptr[lo:hi] - seg_lo).astype(np.int64)
        csec = secure[c]

        any_sec = np.logical_or.reduceat(csec, starts)
        any_secure[nodes] = any_sec
        use_sec = node_secure[nodes] & breaks_ties[nodes] & any_sec

        sizes = (indptr[lo + 1:hi + 1] - indptr[lo:hi]).astype(np.int64)
        row_of_edge = np.repeat(np.arange(hi - lo, dtype=np.int64), sizes)

        allowed = csec | ~use_sec[row_of_edge]
        key = np.where(allowed, tie_keys[seg_lo:seg_hi], _BLOCKED)

        kmin = np.minimum.reduceat(key, starts)
        chosen_rel = starts + (kmin & _POS_MASK).astype(np.int64)
        choice[nodes] = c[chosen_rel]
        secure[nodes] = node_secure[nodes] & csec[chosen_rel]

    return RoutingTree(
        dest=dr.dest, choice=choice, secure=secure, any_secure_candidate=any_secure
    )


def compute_tree_scalar(
    dr: DestRouting,
    node_secure: np.ndarray,
    breaks_ties: np.ndarray,
) -> RoutingTree:
    """Reference scalar implementation of :func:`compute_tree`."""
    n = len(dr.cls)
    choice = np.full(n, -1, dtype=np.int32)
    secure = np.zeros(n, dtype=bool)
    any_secure = np.zeros(n, dtype=bool)
    secure[dr.dest] = node_secure[dr.dest]
    order, indptr, cands = dr.order, dr.indptr, dr.cands

    for row in range(1, len(order)):
        i = int(order[row])
        cs = cands[indptr[row]:indptr[row + 1]]
        pool = cs
        secure_cs = [c for c in cs if secure[c]]
        any_secure[i] = bool(secure_cs)
        if node_secure[i] and breaks_ties[i] and secure_cs:
            pool = secure_cs
        keys = tie_hash_array(
            np.full(len(pool), i, dtype=np.uint64),
            np.asarray(pool, dtype=np.uint64),
        )
        # replicate the vectorised collision rule: position breaks hash ties
        best_pos = None
        best_key = None
        pos_by_cand = {int(c): p for p, c in enumerate(cs)}
        for c, h in zip(pool, keys):
            k = (int(h) & ~((1 << POSITION_BITS) - 1)) | pos_by_cand[int(c)]
            if best_key is None or k < best_key:
                best_key, best_pos = k, int(c)
        choice[i] = best_pos
        secure[i] = bool(node_secure[i] and secure[best_pos])
    return RoutingTree(
        dest=dr.dest, choice=choice, secure=secure, any_secure_candidate=any_secure
    )


def subtree_weights(dr: DestRouting, tree: RoutingTree, weights: np.ndarray) -> np.ndarray:
    """Weight of the subtree routing *through* each node (excluding itself).

    ``W[v] = sum of w_i over nodes i != v whose path to the destination
    traverses v``, the quantity the paper's utility definitions sum
    (Section 3.3; the worked example excludes the ISP's own weight).
    """
    n = len(dr.cls)
    w = np.zeros(n, dtype=np.float64)
    order, levels = dr.order, dr.level_starts
    for level in range(len(levels) - 2, 0, -1):
        lo, hi = int(levels[level]), int(levels[level + 1])
        if lo == hi:
            continue
        nodes = order[lo:hi]
        parents = tree.choice[nodes]
        # bincount beats np.add.at by ~an order of magnitude for this
        # scattered accumulation (parents repeat heavily within a level)
        w += np.bincount(parents, weights=w[nodes] + weights[nodes], minlength=n)
    return w
