"""Ablation (§8.2): heterogeneous deployment thresholds.

The paper folds estimation error into theta and suggests randomising it
as an extension.  The bench compares uniform theta against lognormal
noise of growing sigma and a degree-scaled profile, all with the same
median.  Expected shape: mild noise barely moves the outcome (the
cascade is robust); penalising exactly the high-degree ISPs that anchor
the cascade hurts the most.
"""

from __future__ import annotations

from repro.core.adopters import cps_plus_top_isps
from repro.core.config import SimulationConfig
from repro.core.dynamics import run_deployment
from repro.core.thresholds import (
    degree_scaled_thresholds,
    lognormal_thresholds,
    uniform_thresholds,
)
from repro.experiments.report import format_table

MEDIAN_THETA = 0.05


def test_ablation_threshold_heterogeneity(benchmark, env, capsys):
    def run_all():
        graph = env.graph
        adopters = cps_plus_top_isps(graph, 5)
        profiles = {
            "uniform": uniform_thresholds(graph, MEDIAN_THETA),
            "lognormal s=0.3": lognormal_thresholds(graph, MEDIAN_THETA, 0.3, seed=1),
            "lognormal s=1.0": lognormal_thresholds(graph, MEDIAN_THETA, 1.0, seed=1),
            "degree-scaled": degree_scaled_thresholds(graph, MEDIAN_THETA, 0.5),
        }
        rows = []
        for name, thresholds in profiles.items():
            result = run_deployment(
                graph, adopters, SimulationConfig(theta=MEDIAN_THETA),
                env.cache, thresholds=thresholds,
            )
            rows.append((name, float(result.final_node_secure.mean()),
                         result.num_rounds))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["threshold profile", "frac secure", "rounds"],
            [[n, f"{s:.3f}", r] for n, s, r in rows],
            title=f"Ablation: theta heterogeneity (median theta={MEDIAN_THETA:.0%})",
        ))

    by = {name: secure for name, secure, _ in rows}
    # mild noise should not collapse the cascade
    assert by["lognormal s=0.3"] > 0.5 * by["uniform"]
