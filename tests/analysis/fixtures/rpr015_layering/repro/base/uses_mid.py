"""Layer-1 module reaching upward into layer 2."""

from typing import TYPE_CHECKING

from repro.mid import helper  # expect: RPR015

if TYPE_CHECKING:
    from repro.mid import TypeOnly  # typing-only: sanctioned, exempt


def eager_use() -> int:
    return helper()


def late_use() -> int:
    from repro.mid import late_helper  # lazy: sanctioned cycle-breaker, exempt

    return late_helper()
