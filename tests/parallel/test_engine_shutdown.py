"""Graceful ProcessEngine shutdown (satellite of the job daemon).

The daemon's SIGTERM path calls :func:`shutdown_active_engines`; a
running ``map`` must stop at its next dispatch cycle, leave no worker
processes behind, and surface the interruption as the typed
:class:`~repro.runtime.errors.EngineShutdownError`.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro import telemetry
from repro.parallel.engine import (
    ProcessEngine,
    shutdown_active_engines,
)
from repro.runtime.errors import EngineShutdownError
from repro.telemetry.metrics import set_registry
from repro.telemetry.spans import set_tracer

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method",
)


def slow_item(seconds: float):
    time.sleep(seconds)
    return seconds


class TestRequestShutdown:
    @needs_fork
    def test_map_raises_typed_error_and_reaps_workers(self):
        engine = ProcessEngine(workers=2, partitions_per_worker=2)
        failure: list[BaseException] = []

        def run_map():
            try:
                engine.map(slow_item, [0.2] * 16)
            except BaseException as exc:  # collected for the assertion below
                failure.append(exc)

        mapper = threading.Thread(target=run_map)
        mapper.start()
        deadline = time.monotonic() + 30
        while not multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.02)
        engine.request_shutdown()
        mapper.join(timeout=120)
        assert not mapper.is_alive()

        assert len(failure) == 1
        exc = failure[0]
        assert isinstance(exc, EngineShutdownError)
        assert exc.pending_items > 0  # it really was interrupted mid-map

        # no leaked worker processes
        deadline = time.monotonic() + 30
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_pre_request_stops_the_next_map(self):
        engine = ProcessEngine(workers=2)
        engine.request_shutdown()
        assert engine.shutdown_requested
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires the fork start method")
        with pytest.raises(EngineShutdownError):
            engine.map(slow_item, [0.0] * 8)

    def test_serial_fallback_is_not_interruptible_but_completes(self):
        # workers=1 short-circuits to SerialEngine: a shutdown request
        # set beforehand must not wedge or corrupt it
        engine = ProcessEngine(workers=1)
        engine.request_shutdown()
        assert engine.map(slow_item, [0.0, 0.0]) == [0.0, 0.0]


class TestShutdownActiveEngines:
    @needs_fork
    def test_signals_every_engine_with_a_live_map(self):
        registry, _ = telemetry.enable()
        try:
            engine = ProcessEngine(workers=2, partitions_per_worker=2)
            failure: list[BaseException] = []

            def run_map():
                try:
                    engine.map(slow_item, [0.2] * 16)
                except BaseException as exc:
                    failure.append(exc)

            mapper = threading.Thread(target=run_map)
            mapper.start()
            deadline = time.monotonic() + 30
            while not multiprocessing.active_children() and time.monotonic() < deadline:
                time.sleep(0.02)
            signalled = shutdown_active_engines()
            assert signalled >= 1
            mapper.join(timeout=120)
            assert failure and isinstance(failure[0], EngineShutdownError)
            counters = registry.snapshot()["counters"]
            assert counters.get("engine.shutdowns", 0) >= 1
        finally:
            set_registry(None)
            set_tracer(None)

    def test_no_live_maps_means_no_signals(self):
        # engines register only while mapping, so an idle process-wide
        # sweep signals nothing (and certainly does not raise)
        assert shutdown_active_engines() == 0
