"""Tests for result serialisation."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.adopters import top_degree_isps
from repro.core.config import SimulationConfig
from repro.core.dynamics import run_deployment
from repro.experiments.persistence import (
    load_result_summary,
    result_to_dict,
    save_result,
)


@pytest.fixture(scope="module")
def result(small_graph, small_cache):
    return run_deployment(
        small_graph, top_degree_isps(small_graph, 3),
        SimulationConfig(theta=0.05), small_cache,
    )


class TestSerialisation:
    def test_dict_shape(self, result):
        payload = result_to_dict(result)
        assert payload["format"] == "repro.simulation-result/1"
        assert payload["outcome"] == "stable"
        assert len(payload["rounds"]) == result.num_rounds
        assert payload["config"]["theta"] == 0.05

    def test_round_counts_consistent(self, result):
        payload = result_to_dict(result)
        assert payload["rounds"][0]["secure_ases"] <= len(
            payload["final_secure_asns"]
        )
        all_on = {a for r in payload["rounds"] for a in r["turned_on"]}
        assert all_on <= set(payload["final_deployers"])

    def test_tracked_utilities(self, result):
        graph = result.graph
        asn = graph.asn(graph.isp_indices[0])
        payload = result_to_dict(result, track_asns=[asn])
        series = payload["tracked_utilities"][str(asn)]
        assert len(series) == result.num_rounds + 1

    def test_json_roundtrip_stringio(self, result):
        buf = io.StringIO()
        save_result(result, buf)
        buf.seek(0)
        loaded = load_result_summary(buf)
        assert loaded == result_to_dict(result)

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        loaded = load_result_summary(path)
        assert loaded["num_ases"] == result.graph.n

    def test_format_check(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="unrecognised"):
            load_result_summary(path)
