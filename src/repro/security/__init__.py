"""Attack-resilience quantification under partial deployment (§2.2.1, §6.4)."""

from repro.security.hijack import (
    HijackOutcome,
    simulate_attacks_batched,
    simulate_hijack,
)
from repro.security.metrics import (
    AttackImpact,
    end_state_everyone_secure,
    impact_for_state,
    impact_from_outcomes,
    sample_attack_impact,
    sample_pairs,
)
from repro.security.scenarios import (
    AttackScenario,
    DeploymentStrategy,
    available_scenarios,
    available_strategies,
    get_scenario,
    get_strategy,
    scenario_table,
    strategy_table,
)

__all__ = [
    "AttackImpact",
    "AttackScenario",
    "DeploymentStrategy",
    "HijackOutcome",
    "available_scenarios",
    "available_strategies",
    "end_state_everyone_secure",
    "get_scenario",
    "get_strategy",
    "impact_for_state",
    "impact_from_outcomes",
    "sample_attack_impact",
    "sample_pairs",
    "scenario_table",
    "simulate_attacks_batched",
    "simulate_hijack",
    "strategy_table",
]
