"""File discovery, per-file linting, and result aggregation."""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Sequence

from repro.analysis.base import FileContext, Rule, Walker
from repro.analysis.findings import PARSE_ERROR, UNUSED_SUPPRESSION, Finding
from repro.analysis.rules import ALL_RULES

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".venv"})


@dataclasses.dataclass(frozen=True)
class LintResult:
    """All findings from one lint run, plus coverage accounting."""

    findings: tuple[Finding, ...]
    files_checked: int

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen.add(sub)
        elif path.suffix == ".py":
            seen.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(seen)


def module_for_path(path: str | Path) -> str | None:
    """Dotted module path when ``path`` sits under a ``repro`` package.

    Package-scoped rule exemptions key off this; files outside the
    package (scripts/, benchmarks/) get None and therefore the strict,
    no-exemption treatment.
    """
    parts = Path(path).resolve().parts
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    mod_parts = list(parts[idx:])
    mod_parts[-1] = mod_parts[-1].removesuffix(".py")
    if mod_parts[-1] == "__init__":
        mod_parts.pop()
    return ".".join(mod_parts)


def lint_source(
    source: str,
    path: str | Path = "<string>",
    rules: list[Rule] | None = None,
    module: str | None = None,
) -> list[Finding]:
    """Lint one source string (the unit the golden fixture tests drive).

    ``module`` overrides the path-derived module identity so fixtures
    can exercise package-scoped exemptions from arbitrary locations.
    """
    active = list(ALL_RULES) if rules is None else rules
    ctx = FileContext(path, source, module)
    try:
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = (getattr(exc, "offset", None) or 0) + 1
        return [
            Finding(
                path=str(path),
                line=line,
                col=col,
                code=PARSE_ERROR,
                message=f"file could not be parsed: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                rule="parse-error",
            )
        ]
    Walker(ctx, active).run(tree)

    active_codes = frozenset(r.code for r in active)
    for line, code in ctx.suppressions.unused(active_codes):
        ctx.findings.append(
            Finding(
                path=str(path),
                line=line,
                col=1,
                code=UNUSED_SUPPRESSION,
                message=(
                    f"unused suppression: {code} does not fire on this line; "
                    "remove the waiver so it cannot mask a future violation"
                ),
                rule="unused-suppression",
            )
        )
    return sorted(ctx.findings)


def lint_file(path: str | Path, rules: list[Rule] | None = None) -> list[Finding]:
    """Lint one file from disk (module identity derived from its path)."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=path, rules=rules, module=module_for_path(path))


def lint_paths(paths: Sequence[str | Path], rules: list[Rule] | None = None) -> LintResult:
    """Lint every .py file reachable from ``paths``."""
    findings: list[Finding] = []
    files = iter_python_files(paths)
    for path in files:
        findings.extend(lint_file(path, rules=rules))
    return LintResult(findings=tuple(sorted(findings)), files_checked=len(files))
