"""C-extension backend: the loop bodies as one translation unit.

A line-for-line transliteration of
:mod:`repro.routing.backends._loops`, compiled at first use with the
system C compiler (``cc``/``gcc`` — no build-time Python dependency)
and bound through ``ctypes``.  The shared object is cached under
``~/.cache/sbgp-kernels`` (override with ``SBGP_KERNEL_CACHE``) keyed
by a digest of the source, so a process pays the compile exactly once
per source revision and workers share the artifact.

Import errors — no compiler, compile failure, dlopen failure — raise
:class:`~repro.routing.backends.BackendUnavailable`; the registry turns
that into a counted ``compiled_to_numpy`` degradation, never a crash.

Why ctypes and not a real extension module: the kernels take flat typed
buffers and return nothing, so the FFI surface is six pointer-and-
stride signatures — not worth a build system.  The Python-side wrappers
enforce dtype and contiguity *loudly* (a silent mismatch would corrupt
memory), which the parity suite exercises.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.routing.backends import BackendUnavailable
from repro.routing.policy import POSITION_BITS, RouteClass
from repro.runtime.atomic import atomic_write_text

if (
    int(RouteClass.SELF),
    int(RouteClass.CUSTOMER),
    int(RouteClass.UNREACHABLE),
    POSITION_BITS,
) != (3, 2, -1, 16):  # pragma: no cover
    raise AssertionError(
        "the C kernels hardcode RouteClass/POSITION_BITS values that "
        "drifted; update _C_SOURCE together with repro.routing.policy"
    )

_C_SOURCE = r"""
#include <stdint.h>

/* Constants mirrored from repro.routing: POSITION_BITS=16 (tie-key low
 * bits hold the candidate's position in its segment), RouteClass
 * CUSTOMER=2 / SELF=3 / UNREACHABLE=-1. */
#define POS_MASK 0xFFFFu
#define INVALID_KEY 0xFFFFFFFFu

void sbgp_trees_level(
    int64_t num_nodes,
    const int32_t *nodes, const int64_t *sizes, const int64_t *starts,
    const int32_t *cands, const uint64_t *keys, const int32_t *node_b,
    const uint8_t *node_secure, const uint8_t *breaks_ties,
    int64_t n, int32_t *choice, uint8_t *secure, uint8_t *any_secure)
{
    for (int64_t r = 0; r < num_nodes; r++) {
        int64_t u = nodes[r];
        int64_t b = node_b[r];
        int64_t s = starts[r];
        int64_t m = sizes[r];
        if (m <= 0)
            continue;
        const uint8_t *srow = secure + b * n;
        uint64_t min_all = UINT64_MAX;
        uint64_t min_sec = UINT64_MAX;
        int any_sec = 0;
        for (int64_t e = s; e < s + m; e++) {
            uint64_t k = keys[e];
            if (k < min_all)
                min_all = k;
            if (srow[cands[e]]) {
                any_sec = 1;
                if (k < min_sec)
                    min_sec = k;
            }
        }
        any_secure[b * n + u] = (uint8_t)any_sec;
        uint64_t kmin =
            (node_secure[u] && breaks_ties[u] && any_sec) ? min_sec : min_all;
        int32_t c = cands[s + (int64_t)(kmin & POS_MASK)];
        choice[b * n + u] = c;
        /* c sits one level below u: srow[c] was resolved by an earlier
         * level, never by this loop, so the read/write never alias. */
        secure[b * n + u] = (uint8_t)(node_secure[u] && srow[c]);
    }
}

void sbgp_weights_level(
    int64_t num_nodes,
    const int32_t *nodes, const int32_t *node_b, const int32_t *choice,
    const double *node_weights, int64_t n, double *w)
{
    for (int64_t r = 0; r < num_nodes; r++) {
        int64_t u = nodes[r];
        int64_t b = node_b[r];
        int32_t p = choice[b * n + u];
        /* Parents sit one level up, so w[b*n+p] is only *written* here
         * and only *read* when the next (shallower) level runs; with
         * 0.0 + x == x exactly, child-by-child accumulation matches
         * numpy's bincount sum bit for bit. */
        if (p >= 0)
            w[b * n + p] += w[b * n + u] + node_weights[u];
    }
}

static inline uint32_t sbgp_edge_key(
    int64_t e, const int32_t *v, const int8_t *cls_r, const int32_t *len_r,
    const uint8_t *sec_r, const uint32_t *lp_field,
    const uint8_t *is_provider_edge, const uint8_t *applies_edge,
    const int64_t *rank_codes, const uint32_t *rank_widths)
{
    int32_t vv = v[e];
    int8_t cv = cls_r[vv];
    if (cv == -1)
        return INVALID_KEY;
    /* GR2: only customer routes (2) / the origin itself (3) are
     * exported across peerings and up to providers. */
    if (!(is_provider_edge[e] || cv == 2 || cv == 3))
        return INVALID_KEY;
    int32_t lv = len_r[vv];
    if (lv < 0)
        lv = 0;
    uint32_t sp = (uint32_t)(lv + 1);
    uint32_t secp = (applies_edge[e] && sec_r[vv]) ? 0u : 1u;
    uint32_t key = 0;
    for (int i = 0; i < 3; i++) {
        uint32_t field = rank_codes[i] == 0
            ? lp_field[e]
            : (rank_codes[i] == 1 ? sp : secp);
        key = (key << rank_widths[i]) | field;
    }
    return key;
}

void sbgp_fixpoint_sweep(
    int64_t chunk, int64_t n, int64_t num_edges, int64_t num_segs,
    const int32_t *v, const int8_t *route_cls,
    const int64_t *seg_starts, const int64_t *seg_sizes,
    const int32_t *seg_u, const uint64_t *tie_key,
    const uint32_t *lp_field, const uint8_t *is_provider_edge,
    const int64_t *rank_codes, const uint32_t *rank_widths,
    const int8_t *cls, const int32_t *length, const uint8_t *sec,
    const uint8_t *applies_edge, const uint8_t *node_secure,
    int8_t *new_cls, int32_t *new_len, uint8_t *new_sec, uint8_t *tied)
{
    for (int64_t row = 0; row < chunk; row++) {
        const int8_t *cls_r = cls + row * n;
        const int32_t *len_r = length + row * n;
        const uint8_t *sec_r = sec + row * n;
        uint8_t *tied_r = tied + row * num_edges;
        for (int64_t s = 0; s < num_segs; s++) {
            int64_t lo = seg_starts[s];
            int64_t m = seg_sizes[s];
            uint32_t best = INVALID_KEY;
            for (int64_t e = lo; e < lo + m; e++) {
                uint32_t k = sbgp_edge_key(e, v, cls_r, len_r, sec_r,
                                           lp_field, is_provider_edge,
                                           applies_edge, rank_codes,
                                           rank_widths);
                if (k < best)
                    best = k;
            }
            uint64_t best_tie = UINT64_MAX;
            for (int64_t e = lo; e < lo + m; e++) {
                uint32_t k = sbgp_edge_key(e, v, cls_r, len_r, sec_r,
                                           lp_field, is_provider_edge,
                                           applies_edge, rank_codes,
                                           rank_widths);
                int t = (best != INVALID_KEY) && (k == best);
                tied_r[e] = (uint8_t)t;
                if (t && tie_key[e] < best_tie)
                    best_tie = tie_key[e];
            }
            int64_t uu = seg_u[s];
            if (best != INVALID_KEY) {
                int64_t eidx = lo + (int64_t)(best_tie & POS_MASK);
                int32_t vv = v[eidx];
                new_cls[row * n + uu] = route_cls[eidx];
                new_len[row * n + uu] = len_r[vv] + 1;
                new_sec[row * n + uu] =
                    (uint8_t)(node_secure[uu] && sec_r[vv]);
            } else {
                new_cls[row * n + uu] = -1;
                new_len[row * n + uu] = -1;
                new_sec[row * n + uu] = 0;
            }
        }
    }
}

static inline uint32_t sbgp_attack_edge_key(
    int64_t e, int64_t att_row, int drop_u, int leak,
    const int32_t *v, const uint32_t *lp_field,
    const uint8_t *is_provider_edge, const uint8_t *applies_edge,
    const uint8_t *gullible_edge,
    const int64_t *rank_codes, const uint32_t *rank_widths,
    const int8_t *cls_r, const int32_t *len_r, const uint8_t *sec_r,
    const uint8_t *att_r)
{
    int32_t vv = v[e];
    int8_t cv = cls_r[vv];
    if (cv == -1)
        return INVALID_KEY;
    /* GR2, with the leak escape hatch: the attacker exports its
     * selected route to every neighbor regardless of class. */
    if (!(is_provider_edge[e] || cv == 2 || cv == 3 ||
          (leak && vv == att_row)))
        return INVALID_KEY;
    /* end-state filtering: validators reject what cannot be validated
     * (genuine security only — gullible belief fails ROV). */
    if (drop_u && !sec_r[vv])
        return INVALID_KEY;
    int32_t lv = len_r[vv];
    if (lv < 0)
        lv = 0;
    uint32_t sp = (uint32_t)(lv + 1);
    int seen = sec_r[vv] ||
        (gullible_edge[e] && vv == att_row && att_r[vv]);
    uint32_t secp = (applies_edge[e] && seen) ? 0u : 1u;
    uint32_t key = 0;
    for (int i = 0; i < 3; i++) {
        uint32_t field = rank_codes[i] == 0
            ? lp_field[e]
            : (rank_codes[i] == 1 ? sp : secp);
        key = (key << rank_widths[i]) | field;
    }
    return key;
}

void sbgp_attack_sweep(
    int64_t chunk, int64_t n, int64_t num_segs,
    const int32_t *v, const int8_t *route_cls,
    const int64_t *seg_starts, const int64_t *seg_sizes,
    const int32_t *seg_u, const uint64_t *tie_key,
    const uint32_t *lp_field, const uint8_t *is_provider_edge,
    const int64_t *rank_codes, const uint32_t *rank_widths,
    const int64_t *attacker, const uint8_t *gullible_edge,
    const uint8_t *validators, int64_t leak, int64_t drop,
    const int8_t *cls, const int32_t *length, const uint8_t *sec,
    const uint8_t *att, const uint8_t *applies_edge,
    const uint8_t *node_secure,
    int8_t *new_cls, int32_t *new_len, uint8_t *new_sec, uint8_t *new_att)
{
    for (int64_t row = 0; row < chunk; row++) {
        const int8_t *cls_r = cls + row * n;
        const int32_t *len_r = length + row * n;
        const uint8_t *sec_r = sec + row * n;
        const uint8_t *att_r = att + row * n;
        int64_t att_row = attacker[row];
        for (int64_t s = 0; s < num_segs; s++) {
            int64_t lo = seg_starts[s];
            int64_t m = seg_sizes[s];
            int64_t uu = seg_u[s];
            int drop_u = drop && validators[uu];
            uint32_t best = INVALID_KEY;
            for (int64_t e = lo; e < lo + m; e++) {
                uint32_t k = sbgp_attack_edge_key(
                    e, att_row, drop_u, (int)leak, v, lp_field,
                    is_provider_edge, applies_edge, gullible_edge,
                    rank_codes, rank_widths, cls_r, len_r, sec_r, att_r);
                if (k < best)
                    best = k;
            }
            if (best == INVALID_KEY) {
                new_cls[row * n + uu] = -1;
                new_len[row * n + uu] = -1;
                new_sec[row * n + uu] = 0;
                new_att[row * n + uu] = 0;
                continue;
            }
            uint64_t best_tie = UINT64_MAX;
            for (int64_t e = lo; e < lo + m; e++) {
                uint32_t k = sbgp_attack_edge_key(
                    e, att_row, drop_u, (int)leak, v, lp_field,
                    is_provider_edge, applies_edge, gullible_edge,
                    rank_codes, rank_widths, cls_r, len_r, sec_r, att_r);
                if (k == best && tie_key[e] < best_tie)
                    best_tie = tie_key[e];
            }
            int64_t eidx = lo + (int64_t)(best_tie & POS_MASK);
            int32_t vv = v[eidx];
            int seen = sec_r[vv] ||
                (gullible_edge[eidx] && vv == att_row && att_r[vv]);
            new_cls[row * n + uu] = route_cls[eidx];
            new_len[row * n + uu] = len_r[vv] + 1;
            new_sec[row * n + uu] = (uint8_t)(node_secure[uu] && seen);
            new_att[row * n + uu] = att_r[vv];
        }
    }
}
"""


def _cache_dir() -> Path:
    override = os.environ.get("SBGP_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "sbgp-kernels"


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _build_shared_object() -> Path:
    """Compile (or reuse) the kernels; returns the cached ``.so`` path."""
    digest = hashlib.blake2b(_C_SOURCE.encode(), digest_size=12).hexdigest()
    cache_dir = _cache_dir()
    so_path = cache_dir / f"sbgp_kernels_{digest}.so"
    if so_path.exists():
        return so_path
    cc = _find_compiler()
    if cc is None:
        raise BackendUnavailable("no C compiler (cc/gcc/clang) on PATH")
    cache_dir.mkdir(parents=True, exist_ok=True)
    # Build in a scratch dir *inside* the cache dir so the final rename
    # stays on one filesystem (atomic; concurrent builders race benignly
    # to an identical artifact).
    with tempfile.TemporaryDirectory(dir=cache_dir) as scratch:
        src = Path(scratch) / "sbgp_kernels.c"
        atomic_write_text(src, _C_SOURCE)
        out = Path(scratch) / "sbgp_kernels.so"
        cmd = [cc, "-O3", "-shared", "-fPIC", "-std=c99",
               "-o", str(out), str(src)]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=300, check=False
        )
        if proc.returncode != 0:
            raise BackendUnavailable(
                f"C kernel compile failed ({' '.join(cmd[:1])} exit "
                f"{proc.returncode}): {proc.stderr.strip()[:500]}"
            )
        os.replace(out, so_path)
    return so_path


def _load_library() -> ctypes.CDLL:
    try:
        lib = ctypes.CDLL(str(_build_shared_object()))
    except OSError as exc:  # dlopen failure
        raise BackendUnavailable(f"cannot load compiled kernels: {exc}") from exc
    for name in ("sbgp_trees_level", "sbgp_weights_level",
                 "sbgp_fixpoint_sweep", "sbgp_attack_sweep"):
        fn = getattr(lib, name)
        fn.restype = None
    return lib


_LIB = _load_library()

_I64 = ctypes.c_int64


def _ptr(array: np.ndarray, dtype: type) -> ctypes.c_void_p:
    """Checked pointer: exact dtype + C-contiguity, or a loud error."""
    if array.dtype != np.dtype(dtype) or not array.flags.c_contiguous:
        raise TypeError(
            f"cext kernel expects C-contiguous {np.dtype(dtype)}, got "
            f"{array.dtype} (contiguous={array.flags.c_contiguous})"
        )
    return ctypes.c_void_p(array.ctypes.data)


def trees_level(nodes, sizes, starts, row_of_edge, cands, keys, node_b,
                node_secure, breaks_ties, choice, secure, any_secure):
    """Resolve one stacked path-length level (row_of_edge unused here)."""
    _LIB.sbgp_trees_level(
        _I64(len(nodes)),
        _ptr(nodes, np.int32), _ptr(sizes, np.int64), _ptr(starts, np.int64),
        _ptr(cands, np.int32), _ptr(keys, np.uint64), _ptr(node_b, np.int32),
        _ptr(node_secure, np.bool_), _ptr(breaks_ties, np.bool_),
        _I64(choice.shape[1]),
        _ptr(choice, np.int32), _ptr(secure, np.bool_),
        _ptr(any_secure, np.bool_),
    )


def weights_level(nodes, node_b, choice, node_weights, w):
    """Push one level's subtree weights up to the chosen parents."""
    _LIB.sbgp_weights_level(
        _I64(len(nodes)),
        _ptr(nodes, np.int32), _ptr(node_b, np.int32),
        _ptr(choice, np.int32), _ptr(node_weights, np.float64),
        _I64(w.shape[1]), _ptr(w, np.float64),
    )


def fixpoint_sweep(u, v, route_cls, seg_starts, seg_sizes, seg_u, tie_key,
                   lp_field, is_provider_edge, rank_codes, rank_widths,
                   cls, length, sec, applies_edge, node_secure,
                   new_cls, new_len, new_sec, tied):
    """One synchronous best-response step over the segment-sorted edges."""
    _LIB.sbgp_fixpoint_sweep(
        _I64(cls.shape[0]), _I64(cls.shape[1]),
        _I64(len(v)), _I64(len(seg_starts)),
        _ptr(v, np.int32), _ptr(route_cls, np.int8),
        _ptr(seg_starts, np.int64), _ptr(seg_sizes, np.int64),
        _ptr(seg_u, np.int32), _ptr(tie_key, np.uint64),
        _ptr(lp_field, np.uint32), _ptr(is_provider_edge, np.bool_),
        _ptr(rank_codes, np.int64), _ptr(rank_widths, np.uint32),
        _ptr(cls, np.int8), _ptr(length, np.int32), _ptr(sec, np.bool_),
        _ptr(applies_edge, np.bool_), _ptr(node_secure, np.bool_),
        _ptr(new_cls, np.int8), _ptr(new_len, np.int32),
        _ptr(new_sec, np.bool_), _ptr(tied, np.bool_),
    )


def attack_sweep(u, v, route_cls, seg_starts, seg_sizes, seg_u, tie_key,
                 lp_field, is_provider_edge, rank_codes, rank_widths,
                 attacker, gullible_edge, validators, leak, drop,
                 cls, length, sec, att, applies_edge, node_secure,
                 new_cls, new_len, new_sec, new_att):
    """One multi-origin (victim + attacker) best-response step."""
    _LIB.sbgp_attack_sweep(
        _I64(cls.shape[0]), _I64(cls.shape[1]), _I64(len(seg_starts)),
        _ptr(v, np.int32), _ptr(route_cls, np.int8),
        _ptr(seg_starts, np.int64), _ptr(seg_sizes, np.int64),
        _ptr(seg_u, np.int32), _ptr(tie_key, np.uint64),
        _ptr(lp_field, np.uint32), _ptr(is_provider_edge, np.bool_),
        _ptr(rank_codes, np.int64), _ptr(rank_widths, np.uint32),
        _ptr(attacker, np.int64), _ptr(gullible_edge, np.bool_),
        _ptr(validators, np.bool_), _I64(int(leak)), _I64(int(drop)),
        _ptr(cls, np.int8), _ptr(length, np.int32), _ptr(sec, np.bool_),
        _ptr(att, np.bool_), _ptr(applies_edge, np.bool_),
        _ptr(node_secure, np.bool_),
        _ptr(new_cls, np.int8), _ptr(new_len, np.int32),
        _ptr(new_sec, np.bool_), _ptr(new_att, np.bool_),
    )
