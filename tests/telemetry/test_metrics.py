"""Counter/gauge/histogram semantics and the registry model."""

from __future__ import annotations

import math

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13


class TestHistogram:
    def test_bucketing_is_upper_bound_inclusive(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 99.0):
            h.observe(v)
        assert h.counts == [2, 2, 1]  # <=1, <=10, +inf
        assert h.count == 5
        assert h.total == pytest.approx(115.5)
        assert h.mean == pytest.approx(23.1)

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram("h").mean)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_time_context_observes(self):
        h = Histogram("h")
        with h.time():
            pass
        assert h.count == 1
        assert h.total >= 0


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        reg.counter("a").inc()
        reg.counter("a").inc()
        assert reg.counter("a").value == 2

    def test_rebucketing_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0,))
        with pytest.raises(ValueError, match="different bounds"):
            reg.histogram("h", bounds=(2.0,))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"] == {
            "bounds": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1,
        }

    def test_merge_snapshot_sums_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1), (b, 5)):
            reg.counter("c").inc(n)
            reg.histogram("h", bounds=(1.0,)).observe(n)
        a.merge_snapshot(b.snapshot())
        assert a.counter("c").value == 6
        assert a.histogram("h", bounds=(1.0,)).counts == [1, 1]
        assert a.histogram("h", bounds=(1.0,)).count == 2


class TestActiveRegistry:
    def test_default_is_noop(self):
        reg = get_registry()
        assert not reg.enabled
        reg.counter("anything").inc()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_instruments_are_shared_and_inert(self):
        c = NULL_REGISTRY.counter("a")
        assert c is NULL_REGISTRY.counter("b")
        assert c is NULL_REGISTRY.histogram("h")
        c.inc()
        c.observe(1.0)
        c.set(2.0)
        with c.time():
            pass

    def test_use_registry_restores_previous(self):
        mine = MetricsRegistry()
        with use_registry(mine) as active:
            assert active is mine
            assert get_registry() is mine
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_noop(self):
        previous = set_registry(MetricsRegistry())
        assert previous is NULL_REGISTRY
        set_registry(None)
        assert get_registry() is NULL_REGISTRY

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
