"""Shared-memory data plane: publish/attach semantics and the warm path.

The load-bearing guarantee: with the shm transport, a parallel warm
ships **no pickled** :class:`~repro.routing.tree.DestRouting` over the
result pipes — only pipe-sized segment handles — and degrades to the
pickle path (warning + counter) when shared memory is unavailable.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle

import numpy as np
import pytest

from repro.parallel import shm
from repro.parallel.engine import parallel_warm_cache
from repro.routing.arena import RoutingArena, compute_trees_batched
from repro.routing.cache import RoutingCache
from repro.routing.tree import DestRouting, compute_dest_routing
from repro.telemetry.metrics import MetricsRegistry, use_registry

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shm warm backhaul exercised with the fork start method",
)


@pytest.fixture
def registry():
    with use_registry(MetricsRegistry()) as reg:
        yield reg


def _arena_for(graph, dests):
    return RoutingArena.build(
        graph.n, list(dests), [compute_dest_routing(graph, d) for d in dests]
    )


class TestPublishAttach:
    def test_attach_once_refcounted(self, small_graph):
        published = shm.publish_arena(_arena_for(small_graph, [0, 3, 9]))
        assert published is not None
        handle, segment = published
        try:
            a1 = shm.attach_arena(handle)
            a2 = shm.attach_arena(handle)
            assert a1 is a2  # one mapping per process
            assert shm.attachment_refs(handle.name) == 2
            np.testing.assert_array_equal(a1.dest_ids, [0, 3, 9])
            shm.release_arena(handle.name)
            assert shm.attachment_refs(handle.name) == 1
            del a1, a2  # drop the views so the mapping can close
            shm.release_arena(handle.name)
            assert shm.attachment_refs(handle.name) == 0
        finally:
            segment.close()
            segment.unlink()

    def test_attached_views_are_zero_copy(self, small_graph):
        arena = _arena_for(small_graph, [1, 5])
        published = shm.publish_arena(arena)
        assert published is not None
        handle, segment = published
        try:
            attached = shm.attach_arena(handle)
            assert np.shares_memory(
                attached.view(0).cands, attached.cands_pool
            )
            np.testing.assert_array_equal(attached.keys_pool, arena.keys_pool)
            del attached
            shm.release_arena(handle.name)
        finally:
            segment.close()
            segment.unlink()

    def test_consume_copies_and_unlinks(self, small_graph):
        arena = _arena_for(small_graph, [2, 4, 6])
        published = shm.publish_arena(arena, dests=(2, 4, 6))
        assert published is not None
        handle, segment = published
        segment.close()  # publisher side done; consumer owns the rest
        copy = shm.consume_published_arena(handle)
        assert copy is not None
        np.testing.assert_array_equal(copy.cands_pool, arena.cands_pool)
        assert copy.cands_pool.base is None or not isinstance(
            copy.cands_pool.base, memoryview
        )  # heap copy, not a view of the (now unlinked) segment
        # the segment is gone: a second consume reports it cleanly
        assert shm.consume_published_arena(handle) is None

    def test_trees_from_attached_arena_match(self, small_graph, small_cache):
        arena = small_cache.ensure_arena()
        published = shm.publish_arena(arena)
        assert published is not None
        handle, segment = published
        try:
            attached = shm.attach_arena(handle)
            rng = np.random.default_rng(11)
            secure = rng.random(small_graph.n) < 0.4
            a = compute_trees_batched(arena, arena.all_slots(), secure, secure)
            b = compute_trees_batched(attached, attached.all_slots(), secure, secure)
            np.testing.assert_array_equal(a.choice, b.choice)
            np.testing.assert_array_equal(a.secure, b.secure)
            del attached, b
            shm.release_arena(handle.name)
        finally:
            segment.close()
            segment.unlink()


def _poison_reduce(self, *args, **kwargs):
    raise AssertionError("DestRouting crossed a process pipe")


@needs_fork
class TestWarmTransport:
    def test_shm_warm_pickles_no_trees(self, small_graph, registry, monkeypatch):
        monkeypatch.setattr(DestRouting, "__reduce__", _poison_reduce)
        with pytest.raises(AssertionError):
            pickle.dumps(compute_dest_routing(small_graph, 0))  # poison armed
        cache = RoutingCache(small_graph, destinations=list(range(12)))
        parallel_warm_cache(cache, workers=2, transport="shm")
        assert cache.stats().installs == 12
        assert cache.stats().cached_fraction == 1.0
        snap = registry.snapshot()
        # a genuinely parallel map, with no worker failures quietly
        # degraded to in-parent serial execution (which would mask a
        # pickled tree)
        assert snap["counters"]["engine.dispatched"] >= 1
        assert snap["counters"].get("engine.worker_errors", 0) == 0
        assert snap["counters"].get("engine.serial_fallback_items", 0) == 0
        assert snap["counters"]["parallel.shm.attaches"] >= 1
        assert snap["counters"].get("parallel.shm.fallbacks", 0) == 0

    def test_shm_warm_matches_serial_warm(self, small_graph):
        shm_cache = RoutingCache(small_graph, destinations=list(range(10)))
        parallel_warm_cache(shm_cache, workers=2, transport="shm")
        serial_cache = RoutingCache(small_graph, destinations=list(range(10)))
        serial_cache.warm()
        for dest in range(10):
            a, b = shm_cache.dest_routing(dest), serial_cache.dest_routing(dest)
            np.testing.assert_array_equal(a.order, b.order)
            np.testing.assert_array_equal(a.cands, b.cands)
            np.testing.assert_array_equal(a.cls, b.cls)

    def test_fallback_when_shared_memory_unusable(
        self, small_graph, registry, monkeypatch, caplog
    ):
        class _Broken:
            def SharedMemory(self, *args, **kwargs):
                raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(shm, "_shared_memory", _Broken())
        cache = RoutingCache(small_graph, destinations=list(range(8)))
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            parallel_warm_cache(cache, workers=2, transport="shm")
        assert cache.stats().installs == 8  # warm never fails because shm did
        assert registry.snapshot()["counters"]["parallel.shm.fallbacks"] >= 1
        assert any("fell back to pickled trees" in r.message for r in caplog.records)

    def test_pickle_transport_still_available(self, small_graph):
        cache = RoutingCache(small_graph, destinations=list(range(6)))
        parallel_warm_cache(cache, workers=2, transport="pickle")
        assert cache.stats().installs == 6

    def test_bad_transport_rejected(self, small_graph):
        cache = RoutingCache(small_graph, destinations=[0])
        with pytest.raises(ValueError, match="transport"):
            parallel_warm_cache(cache, workers=2, transport="carrier-pigeon")
