"""Job execution: the one service module allowed to call kernels.

Lint rule RPR012 enforces the boundary: HTTP handlers and the scheduler
marshal jobs, and only this module touches ``build_environment`` /
``run_sweep`` / ``run_case_study``.  Everything here runs on a
scheduler worker thread under the job's own
:class:`~repro.runtime.guard.RuntimeGuard` (guards are thread-local, so
two jobs' deadlines never interfere).

Cross-request sharing happens at two levels, both through the
:class:`~repro.service.cache.ResultCache`:

- the warmed :class:`~repro.routing.arena.RoutingArena` for an
  environment digest is installed into the job's fresh
  :class:`~repro.routing.cache.RoutingCache` instead of being rebuilt
  (state-independent policies only — arenas are read-only after build,
  which is what makes handing one to concurrent jobs safe);
- finished sweep cells are consulted before each computation via a
  scope-bound :class:`~repro.service.cache.CellView`, and published
  after, so overlapping grids pay for their intersection once.

Cancellation and graceful suspend are cooperative: the progress
callback raises :class:`~repro.service.errors.JobCancelled` at the next
cell boundary, after every finished cell is journaled — so a suspended
job resumes exactly where it stopped when the daemon restarts.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.experiments.attack_matrix import (
    AttackMatrixCell,
    run_attack_matrix,
)
from repro.experiments.attack_matrix import cell_to_dict as matrix_cell_to_dict
from repro.experiments.case_study import run_case_study
from repro.experiments.setup import ExperimentEnv, build_environment
from repro.experiments.sweeps import SweepCell, cell_to_dict, run_sweep
from repro.routing.arena import RoutingArena
from repro.runtime.guard import (
    Deadline,
    MemoryBudget,
    RuntimeGuard,
    current_guard,
    use_guard,
)
from repro.service.cache import ResultCache
from repro.service.errors import JobCancelled, SpecError
from repro.service.specs import JobSpec, cell_scope_digest, env_digest
from repro.service.store import Job, JobStore
from repro.telemetry.metrics import get_registry


def _job_guard(spec: JobSpec) -> RuntimeGuard:
    """The per-job runtime guard requested in the spec."""
    return RuntimeGuard(
        deadline=Deadline(spec.deadline) if spec.deadline is not None else None,
        memory=MemoryBudget(spec.memory_budget) if spec.memory_budget is not None else None,
    )


def _build_env(spec: JobSpec, cache: ResultCache) -> ExperimentEnv:
    """Build the job's environment, sharing warmed arenas across jobs.

    The environment itself (graph, traffic, routing cache) is rebuilt
    per job — it is cheap and mutating it per-job keeps jobs isolated —
    but the arena (the expensive part: every routing tree, pooled) is
    fetched from the result cache when an earlier job on the same
    environment digest already built it.
    """
    env = build_environment(
        n=spec.n, seed=spec.seed, x=spec.x, augmented=spec.augmented,
        warm=False, policy=spec.policy, backend=spec.kernel_backend,
    )
    if env.cache.policy.state_dependent:
        # state-dependent arenas are only valid for one deployment
        # state; the simulation rebuilds them per round, so there is
        # nothing reusable to share — warm lazily as rounds touch trees
        return env
    key = env_digest(spec)
    shared = cache.get_arena(key)
    if shared is not None:
        env.cache.install_arena(shared)
        return env
    guard = current_guard()
    estimate = RoutingArena.estimate_bytes(len(env.cache.destinations), env.graph.n)
    if not guard.fits_memory(estimate):
        guard.degrade(
            "lazy_warm",
            f"eager warm needs ~{estimate} bytes for the pooled arena, over "
            "the job's memory budget; deferring to lazy per-destination builds",
        )
        return env
    cache.put_arena(key, env.cache.ensure_arena())
    return env


def _select_adopter_sets(env: ExperimentEnv, spec: JobSpec) -> dict[str, list[int]]:
    """The spec's adopter-set menu (all sets when the spec names none)."""
    menu = env.adopter_sets()
    if not spec.adopter_sets:
        return menu
    unknown = sorted(set(spec.adopter_sets) - set(menu))
    if unknown:
        raise SpecError(
            f"unknown adopter sets {unknown}; this topology offers "
            f"{sorted(menu)}"
        )
    return {name: menu[name] for name in spec.adopter_sets}


def execute_job(
    job: Job,
    store: JobStore,
    cache: ResultCache,
    cancel: threading.Event,
) -> dict[str, Any]:
    """Run one job to completion and return its result document.

    Raises :class:`~repro.service.errors.JobCancelled` when ``cancel``
    is set (checked at cell boundaries), and lets kernel exceptions
    (deadline, spec problems discovered at run time) propagate — the
    scheduler owns the state transition either way.
    """
    registry = get_registry()
    start = time.perf_counter()
    with use_guard(_job_guard(job.spec)):
        if cancel.is_set():
            raise JobCancelled(job.id)
        env = _build_env(job.spec, cache)
        if job.spec.kind == "sweep":
            result = _execute_sweep(job, env, store, cache, cancel)
        elif job.spec.kind == "attack-matrix":
            result = _execute_attack_matrix(job, env, store, cancel)
        else:
            result = _execute_case_study(job, env)
    registry.counter("service.executor.jobs").inc()
    registry.histogram("service.executor.job_seconds").observe(
        time.perf_counter() - start
    )
    return result


def _execute_sweep(
    job: Job,
    env: ExperimentEnv,
    store: JobStore,
    cache: ResultCache,
    cancel: threading.Event,
) -> dict[str, Any]:
    spec = job.spec
    adopter_sets = _select_adopter_sets(env, spec)
    total = len(adopter_sets) * len(spec.thetas)
    done = {"count": 0}

    def on_cell(cell: SweepCell, source: str) -> None:
        done["count"] += 1
        store.record_progress(job.id, done["count"], total, source)
        if cancel.is_set():
            # every finished cell is already in the journal; raising
            # here is the lossless cancellation point
            raise JobCancelled(job.id)

    cells = run_sweep(
        env,
        thetas=spec.thetas,
        adopter_sets=adopter_sets,
        stub_breaks_ties=spec.stub_breaks_ties,
        max_rounds=spec.max_rounds,
        journal=store.sweep_journal_path(job),
        cell_cache=cache.cell_view(cell_scope_digest(spec)),
        on_cell=on_cell,
    )
    return {
        "kind": "sweep",
        "cells": [cell_to_dict(c) for c in cells],
        "grid": {"thetas": list(spec.thetas), "adopter_sets": sorted(adopter_sets)},
        "backend": env.cache.backend_name,
    }


def _execute_attack_matrix(
    job: Job,
    env: ExperimentEnv,
    store: JobStore,
    cancel: threading.Event,
) -> dict[str, Any]:
    """Run the scenario × policy × strategy grid as a service job.

    The matrix journal is digest-keyed like sweep journals, so a
    resubmission (or a daemon restart mid-job) resumes the finished
    cells; cancellation is cooperative at cell boundaries exactly as
    for sweeps.
    """
    spec = job.spec
    scenarios = list(spec.scenarios) or None
    strategies = list(spec.strategies) or None
    policies = list(spec.policies) or None
    from repro.routing.policy import available_policies
    from repro.security.scenarios import available_scenarios, available_strategies

    total = (
        len(scenarios or available_scenarios())
        * len(policies or available_policies())
        * len(strategies or available_strategies())
        * len(spec.levels)
    )
    done = {"count": 0}

    def on_cell(cell: AttackMatrixCell, source: str) -> None:
        done["count"] += 1
        store.record_progress(job.id, done["count"], total, source)
        if cancel.is_set():
            raise JobCancelled(job.id)

    cells = run_attack_matrix(
        env,
        scenarios=scenarios,
        policies=policies,
        strategies=strategies,
        levels=spec.levels,
        samples=spec.attack_samples,
        seed=spec.attack_seed,
        stub_breaks_ties=spec.stub_breaks_ties,
        journal=store.sweep_journal_path(job),
        on_cell=on_cell,
        backend=spec.kernel_backend,
    )
    return {
        "kind": "attack-matrix",
        "cells": [matrix_cell_to_dict(c) for c in cells],
        "grid": {
            "scenarios": sorted({c.scenario for c in cells}),
            "policies": sorted({c.policy for c in cells}),
            "strategies": sorted({c.strategy for c in cells}),
            "levels": list(spec.levels),
        },
        "backend": env.cache.backend_name,
    }


def _execute_case_study(job: Job, env: ExperimentEnv) -> dict[str, Any]:
    report = run_case_study(env, theta=job.spec.theta)
    zs = report.zero_sum
    return {
        "kind": "case-study",
        "backend": env.cache.backend_name,
        "early_adopter_asns": list(report.early_adopter_asns),
        "fraction_secure_ases": report.fraction_secure_ases,
        "outcome": report.result.outcome.value,
        "num_rounds": report.result.num_rounds,
        "new_ases_per_round": list(report.fig3_new_ases),
        "new_isps_per_round": list(report.fig3_new_isps),
        "zero_sum": {
            "fraction_isps_above_threshold": zs.fraction_isps_above_threshold,
            "mean_final_over_start_insecure": zs.mean_final_over_start_insecure,
        },
    }
