"""Batched BGP fixpoint builder for state-dependent routing policies.

Observation C.1 (``tree.py``) only holds when SecP is ranked *last*:
then a security flip can change the choice within a tiebreak set but
never the selected class or length.  Under ``security_2nd``
(``LP > SecP > SP``) and ``security_1st`` (``SecP > LP > SP``) the
structure itself — classes, lengths and tiebreak sets — depends on the
deployment state, so this module computes it by synchronous (Jacobi)
best-response iteration over the edge table, batched across
destinations.

Per sweep, every directed edge ``u <- v`` offers ``v``'s current label
to ``u`` if GR2 allows the export; ``u`` takes the minimum of a packed
``uint32`` rank key whose fields follow the policy ranking (first
criterion in the highest bits).  Edges tied on the rank key form the
tiebreak set, and the representative choice is the minimum of the
static tie-break key ``hash(u, v) | position`` — the *same* rule the
tree kernels apply, so a converged structure fed to
:func:`~repro.routing.fast_tree.compute_tree` (or the batched arena
kernel) under the same deployment state reproduces the fixpoint's
choices exactly: tied candidates always share one length (SP is in
every ranking), tie sets at SecP-applying nodes are security-
homogeneous, and fixpoint selections are loop-free because lengths
decrease by one along the choice chain.

Convergence: rankings with LP first (``security_2nd``, and the default)
admit no dispute wheel under GR1 topologies, so the iteration reaches
the unique stable state in about one sweep per path-length level.
``security_1st`` can genuinely oscillate (Lychev et al., PAPERS.md);
the sweep cap turns that into a :class:`ConvergenceError` rather than a
silent wrong answer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.routing import backends as kernel_backends
from repro.routing.compiled import CompiledGraph
from repro.routing.policy import (
    POSITION_BITS,
    Criterion,
    RouteClass,
    tie_hash_array,
)
from repro.routing.reference import ConvergenceError
from repro.routing.tree import DestRouting
from repro.telemetry.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.routing.policy import RoutingPolicy
    from repro.topology.graph import ASGraph

_SELF = int(RouteClass.SELF)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)
_UNREACHABLE = int(RouteClass.UNREACHABLE)

# Rank/tie-key sentinels (inadmissible offer, non-tied edge) live with
# the kernel implementations in repro.routing.backends; here only the
# tie-key split is needed to build the static edge table.
_POS_MASK = np.uint64((1 << POSITION_BITS) - 1)
_HASH_MASK = ~_POS_MASK

#: rank-key field widths (bits); LP + SP + SECP must fit in 31 bits so
#: every valid key is strictly below ``_INVALID_A``
_WIDTH = {Criterion.LP: 2, Criterion.SP: 21, Criterion.SECP: 1}

#: criterion -> integer code in the backend kernels' rank metadata
#: (kernels take plain arrays, not enums, so they stay JIT/C-compatible)
_RANK_CODE = {Criterion.LP: 0, Criterion.SP: 1, Criterion.SECP: 2}

#: destinations per Jacobi batch — bounds the [chunk, edges] working set
_CHUNK = 128


class _EdgeTable:
    """The directed offer graph ``u <- v`` in segment-sorted flat form.

    Edges are concatenated class-by-class (customer, peer, provider —
    the same order :func:`~repro.routing.tree.compute_dest_routing`
    uses) and stable-sorted by ``(u, v)``, so the position of an edge
    within its ``u``-segment orders candidates exactly like the rows of
    the tiebreak CSR.  That makes the static tie-break key
    ``hash(u, v) | segment_position`` decide ties identically to
    :func:`~repro.routing.tree.compute_tie_keys` restricted to any tie
    set.
    """

    def __init__(self, cg: CompiledGraph) -> None:
        if cg.n > (1 << POSITION_BITS):
            raise ValueError(
                f"fixpoint tie-break keys need n <= {1 << POSITION_BITS}, got {cg.n}"
            )
        u = np.concatenate([cg.cust_src, cg.peer_src, cg.prov_src])
        v = np.concatenate([cg.cust_idx, cg.peer_idx, cg.prov_idx])
        route_cls = np.concatenate(
            [
                np.full(len(cg.cust_src), _CUSTOMER, dtype=np.int8),
                np.full(len(cg.peer_src), _PEER, dtype=np.int8),
                np.full(len(cg.prov_src), _PROVIDER, dtype=np.int8),
            ]
        )
        sort = np.argsort(u.astype(np.int64) * cg.n + v, kind="stable")
        self.n = cg.n
        self.u = u[sort].astype(np.int32)
        self.v = v[sort].astype(np.int32)
        self.route_cls = route_cls[sort]
        self.num_edges = len(self.u)
        if self.num_edges:
            breaks = np.flatnonzero(np.diff(self.u) != 0) + 1
            self.seg_starts = np.concatenate([[0], breaks]).astype(np.int64)
        else:
            self.seg_starts = np.zeros(0, dtype=np.int64)
        self.seg_u = self.u[self.seg_starts] if self.num_edges else self.u[:0]
        bounds = np.concatenate([self.seg_starts, [self.num_edges]])
        self.seg_sizes = np.diff(bounds)
        seg_pos = (
            np.arange(self.num_edges, dtype=np.uint64)
            - np.repeat(self.seg_starts, self.seg_sizes).astype(np.uint64)
        )
        self.tie_key = (
            tie_hash_array(self.u.astype(np.uint64), self.v.astype(np.uint64))
            & _HASH_MASK
        ) | seg_pos
        # static LP field: customer (best) -> 0, peer -> 1, provider -> 2
        self.lp_field = (2 - self.route_cls).astype(np.uint32)
        self.is_provider_edge = self.route_cls == _PROVIDER


def _rank_metadata(
    ranking: Sequence[Criterion],
) -> tuple[np.ndarray, np.ndarray]:
    """``(codes int64[3], widths uint32[3])`` for the backend kernels."""
    codes = np.array([_RANK_CODE[crit] for crit in ranking], dtype=np.int64)
    widths = np.array([_WIDTH[crit] for crit in ranking], dtype=np.uint32)
    return codes, widths


def _sweep(
    table: _EdgeTable,
    kernels: Any,
    rank_codes: np.ndarray,
    rank_widths: np.ndarray,
    dests: np.ndarray,
    node_secure: np.ndarray,
    applies_edge: np.ndarray,
    cls: np.ndarray,
    length: np.ndarray,
    sec: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One synchronous best-response step; returns new labels + tie mask."""
    chunk = len(dests)
    rows = np.arange(chunk)
    new_cls = np.full((chunk, table.n), _UNREACHABLE, dtype=np.int8)
    new_len = np.full((chunk, table.n), -1, dtype=np.int32)
    new_sec = np.zeros((chunk, table.n), dtype=bool)
    tied = np.zeros((chunk, table.num_edges), dtype=bool)
    if table.num_edges:
        kernels.fixpoint_sweep(
            table.u, table.v, table.route_cls,
            table.seg_starts, table.seg_sizes, table.seg_u, table.tie_key,
            table.lp_field, table.is_provider_edge,
            rank_codes, rank_widths,
            cls, length, sec, applies_edge, node_secure,
            new_cls, new_len, new_sec, tied,
        )
    # the destination always keeps its own (empty, trivially best) route
    new_cls[rows, dests] = _SELF
    new_len[rows, dests] = 0
    new_sec[rows, dests] = node_secure[dests]
    return new_cls, new_len, new_sec, tied


def _assemble(
    table: _EdgeTable,
    dest: int,
    cls: np.ndarray,
    length: np.ndarray,
    tied: np.ndarray,
) -> DestRouting:
    """Package one destination's converged labels as a :class:`DestRouting`."""
    n = table.n
    order = np.flatnonzero(cls != _UNREACHABLE).astype(np.int32)
    sort = np.argsort(length[order], kind="stable")
    order = order[sort]
    row_of = np.full(n, -1, dtype=np.int32)
    row_of[order] = np.arange(len(order), dtype=np.int32)

    max_len = int(length[order[-1]]) if len(order) else 0
    level_starts = np.searchsorted(
        length[order], np.arange(max_len + 2), side="left"
    ).astype(np.int32)

    keep = tied.copy()
    if table.num_edges:
        keep &= table.u != dest
    srcs = table.u[keep]
    dsts = table.v[keep]
    rows = row_of[srcs]
    sort = np.argsort(rows.astype(np.int64) * n + dsts, kind="stable")
    rows, cands = rows[sort], dsts[sort].astype(np.int32)
    counts = np.bincount(rows, minlength=len(order))
    indptr = np.zeros(len(order) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    return DestRouting(
        dest=dest,
        cls=cls.astype(np.int8),
        lengths=length.astype(np.int32),
        order=order,
        row_of=row_of,
        level_starts=level_starts,
        indptr=indptr,
        cands=cands,
    )


def fixpoint_dest_routings(
    graph: "ASGraph",
    dests: Sequence[int],
    policy: "RoutingPolicy",
    compiled: CompiledGraph | None = None,
    node_secure: np.ndarray | None = None,
    breaks_ties: np.ndarray | None = None,
    max_sweeps: int | None = None,
    backend: str | None = None,
) -> list[DestRouting]:
    """Converged :class:`DestRouting` per destination under ``policy``.

    ``node_secure`` / ``breaks_ties`` default to all-insecure, in which
    case SecP never discriminates and any ranking degenerates to its
    security-free order.  Raises :class:`ConvergenceError` if a batch
    has not stabilised after ``max_sweeps`` (default ``n + 8``) — a real
    possibility for ``security_1st``, which admits dispute wheels.

    ``backend`` selects the sweep kernel implementation
    (:mod:`repro.routing.backends`); ``None`` resolves through the
    ``SBGP_KERNEL_BACKEND`` env var, and an unusable compiled backend
    degrades to numpy.
    """
    cg = compiled or CompiledGraph.from_graph(graph)
    table = _EdgeTable(cg)
    n = cg.n
    backend_name, kernels = kernel_backends.kernels_for(
        kernel_backends.resolve_backend(backend)
    )
    registry = get_registry()
    if registry.enabled:
        registry.counter(f"routing.backend.calls.{backend_name}").inc()
    rank_codes, rank_widths = _rank_metadata(policy.ranking)
    if node_secure is None:
        node_secure = np.zeros(n, dtype=bool)
    if breaks_ties is None:
        breaks_ties = np.zeros(n, dtype=bool)
    node_secure = np.asarray(node_secure, dtype=bool)
    applies = node_secure & np.asarray(breaks_ties, dtype=bool)
    applies_edge = applies[table.u] if table.num_edges else applies[:0]
    cap = max_sweeps if max_sweeps is not None else n + 8

    dest_arr = np.asarray(list(dests), dtype=np.int64)
    out: list[DestRouting] = []
    for start in range(0, len(dest_arr), _CHUNK):
        batch = dest_arr[start:start + _CHUNK]
        chunk = len(batch)
        rows = np.arange(chunk)
        cls = np.full((chunk, n), _UNREACHABLE, dtype=np.int8)
        length = np.full((chunk, n), -1, dtype=np.int32)
        sec = np.zeros((chunk, n), dtype=bool)
        cls[rows, batch] = _SELF
        length[rows, batch] = 0
        sec[rows, batch] = node_secure[batch]

        tied = np.zeros((chunk, table.num_edges), dtype=bool)
        for _ in range(cap):
            new_cls, new_len, new_sec, tied = _sweep(
                table, kernels, rank_codes, rank_widths,
                batch, node_secure, applies_edge,
                cls, length, sec,
            )
            if (
                np.array_equal(new_cls, cls)
                and np.array_equal(new_len, length)
                and np.array_equal(new_sec, sec)
            ):
                break
            cls, length, sec = new_cls, new_len, new_sec
        else:
            raise ConvergenceError(
                f"policy {policy.name!r} did not converge within {cap} sweeps "
                f"(destinations {batch[:4].tolist()}...)"
            )
        for k in range(chunk):
            out.append(
                _assemble(table, int(batch[k]), cls[k], length[k], tied[k])
            )
    return out
