"""Observability for the simulation pipeline: metrics, spans, export.

The paper's evaluation ran an ``O(N^3)`` game over ~36K ASes on a
200-node cluster; at that scale a run you cannot see into is a run you
cannot tune or trust.  This package is the repo's eyes:

- :mod:`repro.telemetry.metrics` — process-local counters, gauges and
  fixed-bucket histograms behind a registry whose default is a true
  no-op (disabled mode costs ~nothing on hot paths);
- :mod:`repro.telemetry.spans` — nested timed spans exporting to
  Chrome-trace/Perfetto JSON and JSONL;
- :mod:`repro.telemetry.export` — snapshot merge (counters sum,
  histograms add bucket-wise), Prometheus text rendering, atomic file
  output;
- :mod:`repro.telemetry.worker` — worker-side capture so
  :class:`~repro.parallel.engine.ProcessEngine` children ship their
  snapshots back for the parent to aggregate.

Enable with :func:`enable` (or ``sbgp-sim ... --metrics-out/--trace-out``);
everything stays a no-op otherwise.
"""

from __future__ import annotations

from repro.telemetry.export import (
    load_metrics,
    merge_snapshots,
    render_prometheus,
    summary_rows,
    write_metrics,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.telemetry.spans import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "merge_snapshots",
    "render_prometheus",
    "write_metrics",
    "load_metrics",
    "summary_rows",
    "enable",
    "disable",
]


def enable() -> tuple[MetricsRegistry, Tracer]:
    """Install a fresh live registry + tracer; returns both.

    Idempotent in spirit: calling again replaces the previous pair, so
    a CLI invocation always starts from zeroed instruments.
    """
    registry = MetricsRegistry()
    tracer = Tracer()
    set_registry(registry)
    set_tracer(tracer)
    return registry, tracer


def disable() -> None:
    """Restore the no-op registry and tracer."""
    set_registry(None)
    set_tracer(None)
