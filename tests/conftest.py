"""Shared fixtures: small generated topologies and warmed caches.

Also carries a fallback for the ``timeout`` ini option (pyproject.toml)
when pytest-timeout is not installed: a SIGALRM-based per-test limit so
a hung-worker regression still fails fast instead of wedging the suite.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.experiments.setup import ExperimentEnv, build_environment
from repro.routing.cache import RoutingCache
from repro.topology.generator import GeneratedTopology, generate_topology
from repro.topology.graph import ASGraph
from repro.topology.traffic import apply_traffic_model

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        parser.addini(
            "timeout",
            "per-test timeout in seconds (pytest-timeout fallback shim)",
            default="0",
        )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if (
        _HAVE_PYTEST_TIMEOUT  # the real plugin enforces the limit
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)
    try:
        seconds = float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        seconds = 0.0
    if seconds <= 0:
        return (yield)

    def _on_alarm(signum, frame):
        pytest.fail(f"test exceeded the {seconds:g}s fallback timeout", pytrace=False)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def small_topology() -> GeneratedTopology:
    """A 200-AS synthetic Internet (shared, treat as read-only)."""
    return generate_topology(n=200, seed=3)


@pytest.fixture(scope="session")
def small_graph(small_topology: GeneratedTopology) -> ASGraph:
    graph = small_topology.graph
    apply_traffic_model(graph, 0.10)
    return graph


@pytest.fixture(scope="session")
def small_cache(small_graph: ASGraph) -> RoutingCache:
    cache = RoutingCache(small_graph)
    cache.warm()
    return cache


@pytest.fixture(scope="session")
def medium_env() -> ExperimentEnv:
    """A 400-AS environment for experiment-level tests (read-only)."""
    return build_environment(n=400, seed=5, x=0.10, warm=True)
