"""Hypothesis strategies shared across the test suite.

``as_graphs`` generates small random AS graphs that satisfy GR1 by
construction: every AS gets a hierarchy level and providers are always
drawn from strictly lower levels, so the customer->provider relation is
acyclic.  Peerings connect same-level pairs.  The shapes intentionally
include disconnected nodes, chains, multihoming and CP designations.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.topology.graph import ASGraph


@st.composite
def as_graphs(
    draw: st.DrawFn,
    min_nodes: int = 4,
    max_nodes: int = 20,
    with_cps: bool = False,
) -> ASGraph:
    n = draw(st.integers(min_nodes, max_nodes))
    levels = [draw(st.integers(0, 3)) for _ in range(n)]
    if 0 not in levels:
        levels[0] = 0

    cps: list[int] = []
    if with_cps:
        cp_count = draw(st.integers(0, min(2, n)))
        cps = [100 + i for i in range(cp_count)]

    graph = ASGraph(cp_asns=cps)
    asns = [100 + i for i in range(n)]
    for asn in asns:
        graph.add_as(asn)

    for i, asn in enumerate(asns):
        if levels[i] == 0:
            continue
        uppers = [asns[j] for j in range(n) if levels[j] < levels[i]]
        if not uppers:
            continue
        k = draw(st.integers(0, min(2, len(uppers))))
        providers = draw(
            st.lists(st.sampled_from(uppers), min_size=k, max_size=k, unique=True)
        )
        for p in providers:
            graph.add_customer_provider(provider=p, customer=asn)

    num_peerings = draw(st.integers(0, n))
    for _ in range(num_peerings):
        i = draw(st.integers(0, n - 1))
        same = [asns[j] for j in range(n) if levels[j] == levels[i] and j != i]
        if not same:
            continue
        other = draw(st.sampled_from(same))
        if not graph.has_edge(asns[i], other):
            graph.add_peering(asns[i], other)

    graph.validate()
    return graph


@st.composite
def graphs_with_security(
    draw: st.DrawFn, min_nodes: int = 4, max_nodes: int = 16
) -> tuple[ASGraph, list[int]]:
    """A random graph plus a random subset of node indices made secure."""
    graph = draw(as_graphs(min_nodes=min_nodes, max_nodes=max_nodes))
    secure = draw(
        st.lists(st.integers(0, graph.n - 1), max_size=graph.n, unique=True)
    )
    return graph, secure
