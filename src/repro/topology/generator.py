"""Synthetic Internet-like AS topology generator.

The paper runs on the Cyclops AS graph of Dec 9 2010 augmented with IXP
peering edges (Appendix D, Table 2): 36,964 ASes, 72,848
customer-provider edges and 38,829 peerings, with ~85% stubs, a small
clique of Tier-1s with enormous customer degree, five content providers
and a heavily skewed degree distribution.

That dataset is not shipped here, so this module generates synthetic
topologies that reproduce the structural statistics the paper's results
rely on (see DESIGN.md, Substitutions):

- ~85% stubs, five CPs, remaining ASes are transit ISPs;
- a Tier-1 clique at the top of an acyclic provider hierarchy (GR1
  holds by construction: providers always live in a strictly higher
  tier);
- preferential attachment for provider selection, yielding power-law
  customer degrees and a handful of very large transit ASes;
- multihoming (mean ~2 providers per AS) so that competing providers
  and DIAMOND structures (Figure 2) exist;
- IXP peering pools, mirroring the IXP edges of [3] that the paper uses
  for its augmented graph.

Real data in CAIDA ``as-rel`` format can be loaded instead via
:mod:`repro.topology.serialization`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Sequence

from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the synthetic topology.

    The defaults track the proportions of the paper's AS graph; only
    ``n`` (total AS count) normally needs to be chosen.
    """

    n: int = 2000
    stub_fraction: float = 0.85
    num_cps: int = 5
    num_tier1: int = 8
    regional_fraction: float = 0.3  # fraction of transit ISPs that are regional
    seed: int = 2011
    #: distribution of the number of providers for stubs: P(1), P(2), P(3)
    stub_multihoming: tuple[float, float, float] = (0.50, 0.38, 0.12)
    #: distribution of the number of providers for non-Tier-1 ISPs
    isp_multihoming: tuple[float, float, float] = (0.35, 0.45, 0.20)
    #: target ratio of peering edges to ASes (paper: 38,829/36,964 ~= 1.05)
    peering_ratio: float = 1.05
    num_ixps: int = 4
    #: fraction of ISPs that are present at some IXP
    ixp_member_fraction: float = 0.35
    #: providers per content provider (Tier-1 transit)
    cp_providers: int = 2
    #: fraction of IXP members each CP peers with in the *base* graph
    cp_base_peering: float = 0.05

    def __post_init__(self) -> None:
        if self.n < 20:
            raise ValueError(f"n must be at least 20, got {self.n}")
        if not 0 < self.stub_fraction < 1:
            raise ValueError("stub_fraction must be in (0, 1)")
        for dist in (self.stub_multihoming, self.isp_multihoming):
            if abs(sum(dist) - 1.0) > 1e-9:
                raise ValueError(f"multihoming distribution must sum to 1: {dist}")


@dataclasses.dataclass
class GeneratedTopology:
    """A generated graph plus the structural metadata experiments need."""

    graph: ASGraph
    tier1_asns: list[int]
    cp_asns: list[int]
    ixp_members: list[list[int]]  # AS numbers per IXP
    config: TopologyConfig

    @property
    def all_ixp_member_asns(self) -> list[int]:
        """Union of all IXP member AS numbers, deduplicated, ordered."""
        seen: set[int] = set()
        out: list[int] = []
        for members in self.ixp_members:
            for asn in members:
                if asn not in seen:
                    seen.add(asn)
                    out.append(asn)
        return out


#: AS count of the paper's Cyclops Dec-9-2010 graph (Appendix D, Table 2).
PAPER_SCALE_N = 36964


def paper_scale_config(seed: int = 2011) -> TopologyConfig:
    """The paper-scale preset: a 36,964-AS graph in the paper's mixture.

    The :class:`TopologyConfig` defaults already track the paper's
    proportions (85% stubs, five CPs, Tier-1 clique, ~1.05 peerings per
    AS), so the preset only pins ``n`` to the Cyclops snapshot's AS
    count.  Routing structures at this size are dense in the number of
    destinations — pair this with destination sampling
    (``build_environment(sample_destinations=...)`` or the CLI's
    ``--destinations``) unless you have hundreds of GiB to spare; see
    README, "Running at paper scale".
    """
    return TopologyConfig(n=PAPER_SCALE_N, seed=seed)


def _sample_count(rng: random.Random, dist: Sequence[float]) -> int:
    """Draw 1, 2 or 3 with the given probabilities."""
    r = rng.random()
    if r < dist[0]:
        return 1
    if r < dist[0] + dist[1]:
        return 2
    return 3


def _choose_providers(
    rng: random.Random,
    pool: list[int],
    attach: list[int],
    count: int,
) -> list[int]:
    """Pick ``count`` distinct providers, degree-preferentially.

    ``attach`` is the repeated-node preferential-attachment list; the
    uniform ``pool`` is mixed in so low-degree providers keep a chance.
    """
    chosen: set[int] = set()
    guard = 0
    while len(chosen) < min(count, len(pool)):
        guard += 1
        source = attach if (attach and rng.random() < 0.75) else pool
        chosen.add(rng.choice(source))
        if guard > 50 * count:  # pathological tiny pools
            for p in pool:
                chosen.add(p)
                if len(chosen) >= count:
                    break
    return list(chosen)


def generate_topology(config: TopologyConfig | None = None, **overrides: object) -> GeneratedTopology:
    """Generate a synthetic Internet-like AS graph.

    Either pass a :class:`TopologyConfig` or keyword overrides of its
    fields, e.g. ``generate_topology(n=1500, seed=7)``.
    """
    if config is None:
        config = TopologyConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        config = dataclasses.replace(config, **overrides)  # type: ignore[arg-type]
    rng = random.Random(config.seed)

    n_stub = int(round(config.n * config.stub_fraction))
    n_cp = min(config.num_cps, max(0, config.n - n_stub - config.num_tier1))
    n_transit = config.n - n_stub - n_cp
    n_tier1 = min(config.num_tier1, max(1, n_transit))
    n_other_isp = n_transit - n_tier1
    n_regional = int(round(n_other_isp * config.regional_fraction))
    n_access = n_other_isp - n_regional

    next_asn = 1
    tier1 = list(range(next_asn, next_asn + n_tier1))
    next_asn += n_tier1
    regional = list(range(next_asn, next_asn + n_regional))
    next_asn += n_regional
    access = list(range(next_asn, next_asn + n_access))
    next_asn += n_access
    cps = list(range(next_asn, next_asn + n_cp))
    next_asn += n_cp
    stubs = list(range(next_asn, next_asn + n_stub))

    graph = ASGraph(cp_asns=cps)
    for asn in tier1 + regional + access + cps + stubs:
        graph.add_as(asn)

    # Tier-1 clique (settlement-free peerings).
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            graph.add_peering(a, b)

    # Preferential-attachment lists: a provider appears once per customer
    # it has already acquired, snapshotted per phase so that degree earned
    # in earlier phases carries into later ones.
    attach: list[int] = list(tier1)

    def run_phase(customers: list[int], pool: list[int], dist: Sequence[float]) -> None:
        pool_set = set(pool)
        phase_attach = [x for x in attach if x in pool_set]
        for customer in customers:
            count = _sample_count(rng, dist)
            for provider in _choose_providers(rng, pool, phase_attach, count):
                graph.add_customer_provider(provider, customer)
                phase_attach.append(provider)
                attach.append(provider)

    # Regional ISPs buy transit from Tier-1s; access ISPs from regionals
    # and Tier-1s; stubs from any transit ISP, degree-preferentially.
    run_phase(regional, tier1, config.isp_multihoming)
    upstream = regional + tier1 if regional else tier1
    run_phase(access, upstream, config.isp_multihoming)
    all_isps = tier1 + regional + access
    run_phase(stubs, all_isps, config.stub_multihoming)

    # Content providers: Tier-1 transit, no customers.
    for asn in cps:
        for provider in rng.sample(tier1, min(config.cp_providers, len(tier1))):
            graph.add_customer_provider(provider, asn)

    # IXP pools: members are non-Tier-1 ISPs plus edge networks (stubs
    # join IXPs too — they are the peers CPs connect to in [3]).
    ixp_members: list[list[int]] = []
    candidates = regional + access + rng.sample(stubs, int(len(stubs) * 0.15))
    member_count = min(len(candidates), max(2, int(config.n * 0.12)))
    for _ in range(config.num_ixps):
        k = max(2, member_count // max(1, config.num_ixps))
        members = rng.sample(candidates, min(k, len(candidates))) if candidates else []
        ixp_members.append(sorted(members))

    # Peering: IXP-local pairs first, then random same-tier pairs, until
    # the target peering/AS ratio is met.
    target_peerings = int(config.n * config.peering_ratio)

    def try_peer(a: int, b: int) -> bool:
        if a == b or graph.has_edge(a, b):
            return False
        graph.add_peering(a, b)
        return True

    made = graph.num_peering_edges()
    for members in ixp_members:
        for a in members:
            # each IXP member peers with a few co-located members
            for b in rng.sample(members, min(3, len(members))):
                if made >= target_peerings:
                    break
                if try_peer(a, b):
                    made += 1

    pools = [regional + tier1, access, regional + access]
    guard = 0
    while made < target_peerings and guard < 50 * target_peerings:
        guard += 1
        pool = rng.choice(pools)
        if len(pool) < 2:
            continue
        a, b = rng.sample(pool, 2)
        if try_peer(a, b):
            made += 1

    # CPs peer with a slice of IXP members even in the base graph.
    all_members = sorted({m for members in ixp_members for m in members})
    for cp in cps:
        k = int(len(all_members) * config.cp_base_peering)
        for b in rng.sample(all_members, min(k, len(all_members))):
            try_peer(cp, b)

    graph.validate()
    return GeneratedTopology(
        graph=graph,
        tier1_asns=tier1,
        cp_asns=cps,
        ixp_members=ixp_members,
        config=config,
    )
