"""Route leaks: the policy violation S*BGP does not (and cannot) stop.

S-BGP/soBGP authenticate that every AS on a path really propagated the
announcement; a leak is a *policy* failure — every hop genuinely sent
it — so leaked routes validate as fully secure.  (This is the classic
BGPsec caveat, and one reason the paper's §1.4(5) warning about
long-term BGP/S*BGP coexistence engineering matters.)
"""

from __future__ import annotations

import pytest

from repro.protocol.router import ProtocolNetwork, SecurityLevel, SecurityMode
from repro.protocol.rpki import Prefix, RPKI
from repro.topology.graph import ASGraph

PFX = Prefix("192.0.2.0", 24)


@pytest.fixture()
def leak_world():
    """Origin 1 -> provider 10; multihomed customer 30 of 10 and 20.

    If 30 leaks the route it learned from provider 10 to its other
    provider 20, then 20 reaches the prefix through its *customer* 30
    (LP prefers it) instead of a longer honest path.
    """
    g = ASGraph()
    for asn in (1, 10, 20, 30, 99):
        g.add_as(asn)
    g.add_customer_provider(provider=10, customer=1)     # origin
    g.add_customer_provider(provider=10, customer=30)
    g.add_customer_provider(provider=20, customer=30)
    g.add_peering(10, 99)
    g.add_peering(99, 20)  # honest-but-unusable path (peer via peer)
    return g


class TestRouteLeak:
    def test_no_leak_no_route(self, leak_world):
        net = ProtocolNetwork(leak_world, RPKI(seed=b"L"))
        net.originate_prefix(1, PFX, issue_roa=False)
        net.converge()
        # GR2 keeps 30's provider route away from provider 20, and the
        # peer-via-peer path is not exportable either
        assert net.route_of(20, PFX) is None

    def test_leak_attracts_traffic(self, leak_world):
        net = ProtocolNetwork(leak_world, RPKI(seed=b"L"), leakers={30})
        net.originate_prefix(1, PFX, issue_roa=False)
        net.converge()
        entry = net.route_of(20, PFX)
        assert entry is not None
        assert entry.path == (30, 10, 1)  # through the leaker

    def test_leak_validates_as_fully_secure(self, leak_world):
        """Everyone runs full S*BGP and the leak STILL validates: every
        signature on the leaked path is genuine."""
        modes = {asn: SecurityMode.FULL for asn in (1, 10, 20, 30)}
        net = ProtocolNetwork(
            leak_world, RPKI(seed=b"L"), modes=modes, leakers={30}
        )
        net.originate_prefix(1, PFX)
        net.converge()
        entry = net.route_of(20, PFX)
        assert entry is not None
        assert entry.path == (30, 10, 1)
        assert entry.level is SecurityLevel.FULLY_SECURE
