"""Early-adopter selection strategies (Section 6).

Choosing the optimal early-adopter set is NP-hard — even to approximate
(Theorem 6.1; the set-cover reduction lives in
:mod:`repro.gadgets.hardness`) — so the paper evaluates heuristics:
top-degree ISPs (Tier-1s), the content providers, their union, and
random sets.  A greedy simulation-driven heuristic is included for
small graphs.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Sequence

from repro.core.config import SimulationConfig
from repro.core.dynamics import DeploymentSimulation
from repro.routing.cache import RoutingCache
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole
from repro.topology.stats import top_by_degree


def no_early_adopters(graph: ASGraph) -> list[int]:
    """The empty seed set (baseline in Fig. 8)."""
    return []


def top_degree_isps(graph: ASGraph, k: int) -> list[int]:
    """The ``k`` highest-degree ISPs ("top-k Tier-1s" in the paper)."""
    return top_by_degree(graph, k, role=ASRole.ISP)


def content_providers(graph: ASGraph) -> list[int]:
    """The content providers (the paper's five CPs)."""
    return sorted(graph.cp_asns & set(graph.asns))


def cps_plus_top_isps(graph: ASGraph, k: int = 5) -> list[int]:
    """The paper's case-study set: CPs plus the top-``k`` Tier-1s (§5)."""
    return content_providers(graph) + top_degree_isps(graph, k)


def random_isps(graph: ASGraph, k: int, seed: int = 0) -> list[int]:
    """``k`` ISPs chosen uniformly at random (Fig. 8's weak baseline)."""
    rng = random.Random(seed)
    isps = [graph.asn(i) for i in graph.isp_indices]
    return sorted(rng.sample(isps, min(k, len(isps))))


def greedy_early_adopters(
    graph: ASGraph,
    k: int,
    config: SimulationConfig | None = None,
    candidate_asns: Sequence[int] | None = None,
    cache: RoutingCache | None = None,
    score: Callable[[int], float] | None = None,
) -> list[int]:
    """Greedy seed selection by simulated final adoption.

    Repeatedly adds the candidate that maximises the number of secure
    ASes at termination.  Exponentially cheaper than the (NP-hard)
    optimum but still runs a full simulation per candidate per slot —
    restrict ``candidate_asns`` on anything but small graphs.
    """
    config = config or SimulationConfig()
    cache = cache or RoutingCache(graph)
    if candidate_asns is None:
        candidate_asns = top_degree_isps(graph, max(4 * k, 16))
    chosen: list[int] = []

    def final_secure_count(seed_set: Iterable[int]) -> float:
        sim = DeploymentSimulation(graph, seed_set, config, cache)
        result = sim.run()
        return float(result.final_node_secure.sum())

    for _ in range(k):
        best_asn = None
        best_score = -1.0
        for asn in candidate_asns:
            if asn in chosen:
                continue
            value = final_secure_count(chosen + [asn])
            if value > best_score:
                best_score, best_asn = value, asn
        if best_asn is None:
            break
        chosen.append(best_asn)
    return chosen


#: Registry used by the experiment harness / CLI to look sets up by name.
STRATEGIES: dict[str, Callable[..., list[int]]] = {
    "none": no_early_adopters,
    "top-degree": top_degree_isps,
    "content-providers": content_providers,
    "cps+top": cps_plus_top_isps,
    "random": random_isps,
    "greedy": greedy_early_adopters,
}
