"""Vectorised numpy kernels — the differential ground truth.

These are the original level/sweep bodies of
``repro.routing.arena.compute_trees_batched``,
``repro.routing.arena.subtree_weights_batched`` and
``repro.routing.fixpoint._sweep``, moved here verbatim so every other
backend has a fixed point of comparison: the parity suite asserts
**bit-identical** outputs against this module.  Do not "improve" the
numerics here — a change to operation order is a change to the ground
truth.

All three kernels share the calling convention documented in
:mod:`repro.routing.backends._loops` (same signatures, same dtypes,
outputs written in place).
"""

from __future__ import annotations

import numpy as np

from repro.routing.policy import POSITION_BITS, RouteClass

_POS_MASK = np.uint64((1 << POSITION_BITS) - 1)
_BLOCKED = np.uint64(2**64 - 1)
_INVALID_A = np.uint32(0xFFFFFFFF)

_SELF = int(RouteClass.SELF)
_CUSTOMER = int(RouteClass.CUSTOMER)
_UNREACHABLE = int(RouteClass.UNREACHABLE)


def trees_level(
    nodes: np.ndarray,
    sizes: np.ndarray,
    starts: np.ndarray,
    row_of_edge: np.ndarray,
    cands: np.ndarray,
    keys: np.ndarray,
    node_b: np.ndarray,
    node_secure: np.ndarray,
    breaks_ties: np.ndarray,
    choice: np.ndarray,
    secure: np.ndarray,
    any_secure: np.ndarray,
) -> None:
    """Resolve one stacked path-length level of the batched tree kernel."""
    edge_b = node_b[row_of_edge]
    csec = secure[edge_b, cands]
    any_sec = np.logical_or.reduceat(csec, starts)
    any_secure[node_b, nodes] = any_sec
    use_sec = node_secure[nodes] & breaks_ties[nodes] & any_sec

    key = np.where(csec | ~use_sec[row_of_edge], keys, _BLOCKED)
    kmin = np.minimum.reduceat(key, starts)
    chosen = starts + (kmin & _POS_MASK).astype(np.int64)
    choice[node_b, nodes] = cands[chosen]
    secure[node_b, nodes] = node_secure[nodes] & csec[chosen]


def weights_level(
    nodes: np.ndarray,
    node_b: np.ndarray,
    choice: np.ndarray,
    node_weights: np.ndarray,
    w: np.ndarray,
) -> None:
    """Push one level's subtree weights up to the chosen parents."""
    n = w.shape[1]
    nb = node_b.astype(np.int64)
    parents = choice[nb, nodes].astype(np.int64)
    vals = w[nb, nodes] + node_weights[nodes]
    w += np.bincount(
        nb * n + parents, weights=vals, minlength=w.size
    ).reshape(w.shape)


def fixpoint_sweep(
    u: np.ndarray,
    v: np.ndarray,
    route_cls: np.ndarray,
    seg_starts: np.ndarray,
    seg_sizes: np.ndarray,
    seg_u: np.ndarray,
    tie_key: np.ndarray,
    lp_field: np.ndarray,
    is_provider_edge: np.ndarray,
    rank_codes: np.ndarray,
    rank_widths: np.ndarray,
    cls: np.ndarray,
    length: np.ndarray,
    sec: np.ndarray,
    applies_edge: np.ndarray,
    node_secure: np.ndarray,
    new_cls: np.ndarray,
    new_len: np.ndarray,
    new_sec: np.ndarray,
    tied: np.ndarray,
) -> None:
    """One synchronous best-response step over the edge table."""
    cls_v = cls[:, v]
    # GR2: across a peering or up to a provider only customer routes and
    # the origin's own prefix travel; down to a customer anything does.
    announces = (cls_v == _CUSTOMER) | (cls_v == _SELF)
    valid = (cls_v != _UNREACHABLE) & (is_provider_edge | announces)

    sp_field = (np.maximum(length[:, v], 0) + 1).astype(np.uint32)
    secp_field = 1 - (applies_edge & sec[:, v]).astype(np.uint32)
    key = np.zeros(valid.shape, dtype=np.uint32)
    for i in range(len(rank_codes)):
        code = int(rank_codes[i])
        if code == 0:
            field: np.ndarray = lp_field
        elif code == 1:
            field = sp_field
        else:
            field = secp_field
        key = (key << np.uint32(rank_widths[i])) | field
    key_a = np.where(valid, key, _INVALID_A)

    best_a = np.minimum.reduceat(key_a, seg_starts, axis=1)
    tied[:] = (key_a == np.repeat(best_a, seg_sizes, axis=1)) & (
        key_a != _INVALID_A
    )
    key_b = np.where(tied, tie_key[None, :], _BLOCKED)
    chosen = np.minimum.reduceat(key_b, seg_starts, axis=1)
    reachable = best_a != _INVALID_A
    eidx = seg_starts[None, :] + np.where(
        reachable, (chosen & _POS_MASK).astype(np.int64), 0
    )
    v_sel = v[eidx]
    sec_v = np.take_along_axis(sec, v_sel, axis=1)
    len_v = np.take_along_axis(length, v_sel, axis=1)
    new_cls[:, seg_u] = np.where(
        reachable, route_cls[eidx], np.int8(_UNREACHABLE)
    )
    new_len[:, seg_u] = np.where(reachable, len_v + 1, -1)
    new_sec[:, seg_u] = reachable & node_secure[seg_u] & sec_v


def attack_sweep(
    u: np.ndarray,
    v: np.ndarray,
    route_cls: np.ndarray,
    seg_starts: np.ndarray,
    seg_sizes: np.ndarray,
    seg_u: np.ndarray,
    tie_key: np.ndarray,
    lp_field: np.ndarray,
    is_provider_edge: np.ndarray,
    rank_codes: np.ndarray,
    rank_widths: np.ndarray,
    attacker: np.ndarray,
    gullible_edge: np.ndarray,
    validators: np.ndarray,
    leak: bool,
    drop: bool,
    cls: np.ndarray,
    length: np.ndarray,
    sec: np.ndarray,
    att: np.ndarray,
    applies_edge: np.ndarray,
    node_secure: np.ndarray,
    new_cls: np.ndarray,
    new_len: np.ndarray,
    new_sec: np.ndarray,
    new_att: np.ndarray,
) -> None:
    """One multi-origin (victim + attacker) best-response step.

    The fixpoint sweep with a per-row adversary (``attacker[row]``):
    ``att`` marks labels descending from the attacker's announcement,
    ``gullible_edge`` the provider edges where a simplex stub believes
    the attacker's word (§2.2.1), ``validators`` + ``drop`` bar
    unvalidated routes at fully-validating ASes, and ``leak`` lets
    offers *from* the attacker bypass GR2.  The caller pins the
    principals' labels after each step.
    """
    att_col = attacker[:, None]
    from_attacker = v[None, :] == att_col
    cls_v = cls[:, v]
    sec_v = sec[:, v]
    announces = (cls_v == _CUSTOMER) | (cls_v == _SELF)
    exportable = is_provider_edge | announces
    if leak:
        exportable = exportable | from_attacker
    valid = (cls_v != _UNREACHABLE) & exportable
    if drop:
        valid &= sec_v | ~validators[u][None, :]
    seen = sec_v | (gullible_edge[None, :] & from_attacker & att[:, v])

    sp_field = (np.maximum(length[:, v], 0) + 1).astype(np.uint32)
    secp_field = 1 - (applies_edge & seen).astype(np.uint32)
    key = np.zeros(valid.shape, dtype=np.uint32)
    for i in range(len(rank_codes)):
        code = int(rank_codes[i])
        if code == 0:
            field: np.ndarray = lp_field
        elif code == 1:
            field = sp_field
        else:
            field = secp_field
        key = (key << np.uint32(rank_widths[i])) | field
    key_a = np.where(valid, key, _INVALID_A)

    best_a = np.minimum.reduceat(key_a, seg_starts, axis=1)
    tied = (key_a == np.repeat(best_a, seg_sizes, axis=1)) & (
        key_a != _INVALID_A
    )
    key_b = np.where(tied, tie_key[None, :], _BLOCKED)
    chosen = np.minimum.reduceat(key_b, seg_starts, axis=1)
    reachable = best_a != _INVALID_A
    eidx = seg_starts[None, :] + np.where(
        reachable, (chosen & _POS_MASK).astype(np.int64), 0
    )
    v_sel = v[eidx]
    sec_sel = np.take_along_axis(sec, v_sel, axis=1)
    len_sel = np.take_along_axis(length, v_sel, axis=1)
    att_sel = np.take_along_axis(att, v_sel, axis=1)
    seen_sel = np.take_along_axis(seen, eidx, axis=1)
    new_cls[:, seg_u] = np.where(
        reachable, route_cls[eidx], np.int8(_UNREACHABLE)
    )
    new_len[:, seg_u] = np.where(reachable, len_sel + 1, -1)
    new_sec[:, seg_u] = reachable & node_secure[seg_u] & seen_sel
    new_att[:, seg_u] = reachable & att_sel
