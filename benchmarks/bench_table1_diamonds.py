"""Table 1: DIAMOND census for the case-study early adopters.

Paper: thousands of diamonds per early adopter on the 36K-AS graph
(each one a stub fought over by two ISPs in front of an early adopter).
Shape to reproduce: every well-connected early adopter sees many
contested stubs, with Tier-1s seeing the most.
"""

from __future__ import annotations

from repro.core.diamonds import diamond_census
from repro.experiments.report import format_table


def test_table1_diamond_census(benchmark, env, capsys):
    adopters = env.case_study_adopters()

    census = benchmark.pedantic(
        lambda: diamond_census(env.graph, adopters, env.cache),
        rounds=1, iterations=1,
    )

    rows = [
        [asn, census.contested_stubs[asn], census.competitor_pairs[asn]]
        for asn in adopters
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["early adopter", "contested stubs", "competitor pairs"],
            rows, title="Table 1: diamonds per early adopter",
        ))
        print(f"total: {census.total_contested} contested stubs, "
              f"{census.total_pairs} competitor pairs")
    assert census.total_contested > 0
