"""Tests for the experiment environment builder."""

from __future__ import annotations

import pytest

from repro.experiments.setup import build_environment
from repro.topology.traffic import traffic_fraction_of


class TestBuildEnvironment:
    def test_default_build(self, medium_env):
        assert medium_env.graph.n == 400
        assert len(medium_env.cache.destinations) == 400
        assert medium_env.x == 0.10

    def test_traffic_applied(self, medium_env):
        cps = medium_env.graph.cp_indices
        assert traffic_fraction_of(medium_env.graph, cps) == pytest.approx(0.10)

    def test_adopter_sets_menu(self, medium_env):
        sets = medium_env.adopter_sets()
        assert sets["none"] == []
        assert len(sets["top-5"]) == 5
        assert len(sets["5-cps"]) == 5
        assert len(sets["cps+top-5"]) == 10
        # every listed AS exists
        for name, adopters in sets.items():
            for asn in adopters:
                assert asn in medium_env.graph

    def test_case_study_adopters(self, medium_env):
        adopters = medium_env.case_study_adopters()
        assert len(adopters) == 10

    def test_augmented_environment(self):
        env = build_environment(n=200, seed=9, augmented=True, warm=False)
        assert env.augmented
        base = build_environment(n=200, seed=9, augmented=False, warm=False)
        cp = env.cp_asns[0]
        assert env.graph.degree(cp) > base.graph.degree(cp)

    def test_unwarmed_cache_lazy(self):
        env = build_environment(n=100, seed=9, warm=False)
        assert len(env.cache._routing) == 0
        env.cache.dest_routing(3)
        assert len(env.cache._routing) == 1


class TestDestinationSampling:
    def test_sampled_cache_size(self):
        env = build_environment(n=150, seed=9, warm=False, sample_destinations=40)
        assert len(env.cache.destinations) == 40

    def test_sample_larger_than_n_means_full(self):
        env = build_environment(n=100, seed=9, warm=False, sample_destinations=500)
        assert len(env.cache.destinations) == 100

    def test_sampled_game_runs(self):
        from repro.core.adopters import top_degree_isps
        from repro.core.config import SimulationConfig
        from repro.core.dynamics import run_deployment

        env = build_environment(n=150, seed=9, sample_destinations=50)
        result = run_deployment(
            env.graph, top_degree_isps(env.graph, 3),
            SimulationConfig(theta=0.05), env.cache,
        )
        assert result.outcome.value in ("stable", "max-rounds")
        assert result.final_node_secure.sum() > 0

    def test_sampling_deterministic(self):
        a = build_environment(n=150, seed=9, warm=False, sample_destinations=40)
        b = build_environment(n=150, seed=9, warm=False, sample_destinations=40)
        assert a.cache.destinations == b.cache.destinations
