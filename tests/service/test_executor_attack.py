"""Executor: attack-matrix jobs run, journal, replay, and cancel."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import ResultCache
from repro.service.errors import JobCancelled
from repro.service.executor import execute_job
from repro.service.specs import parse_spec
from repro.service.store import JobStore

SPEC = {
    "kind": "attack-matrix", "n": 60, "seed": 7,
    "scenarios": ["origin_hijack", "route_leak"],
    "policies": ["security_3rd"],
    "strategies": ["top_isp_first"],
    "levels": [0.0, 1.0],
    "attack_samples": 3,
}


def run(store, cache, payload=SPEC):
    job, _ = store.submit(parse_spec(payload))
    result = execute_job(job, store, cache, threading.Event())
    return job, result


class TestAttackMatrixJobs:
    def test_result_document_shape(self, tmp_path):
        store, cache = JobStore(tmp_path), ResultCache()
        job, result = run(store, cache)
        assert result["kind"] == "attack-matrix"
        grid = result["grid"]
        assert grid["scenarios"] == ["origin_hijack", "route_leak"]
        assert grid["levels"] == [0.0, 1.0]
        cells = result["cells"]
        assert len(cells) == 4
        for cell in cells:
            assert cell["outcome"] in ("ok", "no-convergence")
            assert 0.0 <= cell["mean_fraction_fooled"] <= 1.0

    def test_journal_written_and_resubmit_replays(self, tmp_path):
        store, cache = JobStore(tmp_path), ResultCache()
        job, result = run(store, cache)
        journal = store.sweep_journal_path(job)
        assert journal.exists()
        before = journal.read_text()
        # same work identity -> same digest-keyed journal; a re-execution
        # replays every cell instead of recomputing
        job2, result2 = run(store, cache)
        assert result2["cells"] == result["cells"]
        assert journal.read_text() == before

    def test_progress_reaches_total(self, tmp_path):
        store, cache = JobStore(tmp_path), ResultCache()
        job, _ = run(store, cache)
        refreshed = store.get(job.id)
        assert refreshed.progress_done == refreshed.progress_total == 4

    def test_cancel_checked_at_cell_boundaries(self, tmp_path):
        store, cache = JobStore(tmp_path), ResultCache()
        job, _ = store.submit(parse_spec(SPEC))
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(JobCancelled):
            execute_job(job, store, cache, cancel)
