"""Fair job scheduler: priority + FIFO over worker threads.

Jobs queue as ``(-priority, submission seq)`` — higher priority first,
strict submission order within a priority, so no stream of urgent jobs
can reorder two equal-priority submissions (fairness is FIFO fairness,
the same contract the paper's cluster scheduler gave its sweep shards).

Execution happens on plain worker threads; the heavy lifting inside a
job (tree builds, projections) already runs on the crash-tolerant
:class:`~repro.parallel.engine.ProcessEngine` when the kernel decides
to, so the scheduler's threads spend their lives waiting on kernels,
not computing.  Guards are thread-local, so each job's deadline and
memory budget bind only to the thread running it.

Stopping distinguishes two intents:

- :meth:`cancel` (user asked): the job's cancel event trips the
  executor's next cell-boundary check and the job lands ``cancelled``;
- :meth:`stop` (daemon exiting): the same mechanism fires for every
  *running* job, but the catch re-queues instead of cancelling — the
  job's journal keeps its finished cells and a restarted daemon picks
  it up automatically (the store recovers queued jobs on replay).
"""

from __future__ import annotations

import heapq
import logging
import threading

from repro.parallel.engine import shutdown_active_engines
from repro.runtime.errors import DeadlineExceeded, MemoryBudgetExceeded
from repro.service.cache import ResultCache
from repro.service.errors import JobCancelled, JobStateError, SpecError
from repro.service.executor import execute_job
from repro.service.specs import JobSpec
from repro.service.store import TERMINAL_STATES, Job, JobStore
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

#: how long an idle worker sleeps between queue checks; also bounds how
#: fast stop() is noticed by idle workers
_IDLE_WAIT_SECONDS = 0.2

#: join grace per worker thread at stop() — workers re-queue at the
#: next cell boundary, so this only needs to cover one cell
DEFAULT_STOP_TIMEOUT = 30.0


class Scheduler:
    """Runs store jobs on ``workers`` threads in fair priority order."""

    def __init__(self, store: JobStore, cache: ResultCache, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.cache = cache
        self.workers = workers
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, str]] = []
        self._cancel: dict[str, threading.Event] = {}
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn workers and re-queue jobs recovered from the journal."""
        for job in self.store.resumable():
            self._enqueue(job)
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"sbgp-job-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = DEFAULT_STOP_TIMEOUT) -> None:
        """Graceful shutdown: suspend running jobs at their next cell.

        Running jobs re-queue (their journals keep every finished
        cell); in-flight parallel maps inside kernels drain via
        :func:`~repro.parallel.engine.shutdown_active_engines`; worker
        threads are then joined with a bounded grace.
        """
        self._stopping.set()
        for job in self.store.jobs():
            if job.state == "running":
                self._cancel_event(job.id).set()
        interrupted = shutdown_active_engines()
        if interrupted:
            log.warning("interrupted %d in-flight parallel map(s) for shutdown", interrupted)
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        leaked = [t.name for t in self._threads if t.is_alive()]
        if leaked:
            log.warning("worker thread(s) still draining at stop timeout: %s", leaked)
        self._threads.clear()

    # -- API used by the HTTP layer -----------------------------------

    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Store + enqueue a job; coalesced submissions return the
        already-active job and enqueue nothing."""
        job, created = self.store.submit(spec)
        if created:
            self._enqueue(job)
        return job, created

    def cancel(self, job_id: str) -> Job:
        """Request cancellation (effective at the job's next cell)."""
        job = self.store.get(job_id)
        if job.state in TERMINAL_STATES:
            raise JobStateError(f"job {job_id} is already {job.state}")
        self._cancel_event(job_id).set()
        if job.state == "queued":
            # never started: settle it immediately (the worker skips
            # non-queued entries when it pops them)
            return self.store.set_state(job_id, "cancelled")
        return job

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._heap)

    # -- internals -----------------------------------------------------

    def _cancel_event(self, job_id: str) -> threading.Event:
        with self._cond:
            event = self._cancel.get(job_id)
            if event is None:
                event = self._cancel[job_id] = threading.Event()
            return event

    def _enqueue(self, job: Job) -> None:
        with self._cond:
            heapq.heappush(self._heap, (-job.spec.priority, job.seq, job.id))
            get_registry().gauge("service.scheduler.queue_depth").set(len(self._heap))
            self._cond.notify()

    def _pop_next(self) -> str | None:
        with self._cond:
            if not self._heap and not self._stopping.is_set():
                self._cond.wait(timeout=_IDLE_WAIT_SECONDS)
            if self._stopping.is_set() or not self._heap:
                return None
            _, _, job_id = heapq.heappop(self._heap)
            get_registry().gauge("service.scheduler.queue_depth").set(len(self._heap))
            return job_id

    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            job_id = self._pop_next()
            if job_id is None:
                continue
            job = self.store.get(job_id)
            if job.state != "queued":
                continue  # cancelled (or otherwise settled) while queued
            self._run_one(job)

    def _run_one(self, job: Job) -> None:
        cancel = self._cancel_event(job.id)
        self.store.set_state(job.id, "running")
        if self._stopping.is_set():
            # closes the race with stop()'s scan over running jobs: a
            # job that slipped into "running" mid-shutdown still stops
            # at its first cell boundary
            cancel.set()
        try:
            result = execute_job(job, self.store, self.cache, cancel)
        except JobCancelled:
            if self._stopping.is_set():
                # daemon shutdown, not a user cancel: park the job back
                # in the queue so a restarted daemon resumes its journal
                self.store.set_state(job.id, "queued")
                log.info("job %s suspended for shutdown (resumes on restart)", job.id)
            else:
                self.store.set_state(job.id, "cancelled")
        except (DeadlineExceeded, MemoryBudgetExceeded, SpecError) as exc:
            self.store.set_state(job.id, "failed", error=str(exc))
        except Exception as exc:
            log.exception("job %s failed", job.id)
            get_registry().counter("service.scheduler.crashed_jobs").inc()
            self.store.set_state(job.id, "failed", error=f"{type(exc).__name__}: {exc}")
        else:
            self.store.write_result(job, result)
            self.store.set_state(job.id, "done")
