"""Attack-kernel benchmarks: batched multi-origin sweep vs scalar pairs.

One bench per loadable backend runs :func:`simulate_attacks_batched`
over a fixed (victim, attacker) pair sample; the scalar reference runs
the same pairs one :func:`simulate_hijack` at a time.  ``make
bench-compare`` asserts the batching headline — the batched kernel at
least 3x faster than per-pair scalar on the same snapshot — so an
attack-kernel regression fails the gate like any other kernel
regression.

Scale: ``REPRO_BENCH_ATTACK_N`` ASes (default 400) and
``REPRO_BENCH_ATTACK_PAIRS`` pairs (default 8).  The scalar reference
is pure Python and dominates the file's runtime; it exists to keep the
speedup claim honest, not to be fast.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments.setup import build_environment
from repro.routing import backends as kernel_backends
from repro.routing.errors import BackendUnavailable
from repro.security.hijack import simulate_attacks_batched, simulate_hijack
from repro.security.metrics import sample_pairs

ATTACK_N = int(os.environ.get("REPRO_BENCH_ATTACK_N", "400"))
ATTACK_PAIRS = int(os.environ.get("REPRO_BENCH_ATTACK_PAIRS", "8"))
ATTACK_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2011"))


def _loadable() -> list[str]:
    out = []
    for name in kernel_backends.usable_backends():
        try:
            kernel_backends.load_backend(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return out


BACKENDS = _loadable()

_cache: dict[str, object] = {}


def _env():
    if "env" not in _cache:
        _cache["env"] = build_environment(
            n=ATTACK_N, seed=ATTACK_SEED, x=0.10, warm=True
        )
    return _cache["env"]


@pytest.fixture(scope="module")
def bench_env():
    return _env()


@pytest.fixture(scope="module")
def bench_pairs(bench_env):
    return sample_pairs(bench_env.graph, samples=ATTACK_PAIRS, seed=7)


@pytest.fixture(scope="module")
def bench_state(bench_env):
    secure = np.zeros(bench_env.graph.n, dtype=bool)
    secure[::3] = True
    return secure


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scenario", ["origin_hijack", "route_leak"])
def test_kernel_attack_batched(
    benchmark, bench_env, bench_pairs, bench_state, backend, scenario
):
    """The attack-matrix inner loop: one batched call, many pairs."""
    compiled = bench_env.cache.compiled
    # warm outside the timer: first call pays edge-table construction
    simulate_attacks_batched(
        bench_env.graph, bench_pairs, bench_state, bench_state,
        scenario=scenario, backend=backend, compiled=compiled,
    )
    outcomes = benchmark(
        lambda: simulate_attacks_batched(
            bench_env.graph, bench_pairs, bench_state, bench_state,
            scenario=scenario, backend=backend, compiled=compiled,
        )
    )
    assert len(outcomes) == len(bench_pairs)


@pytest.mark.parametrize("scenario", ["origin_hijack"])
def test_kernel_attack_scalar(benchmark, bench_env, bench_pairs, bench_state, scenario):
    """Per-pair scalar reference on the same sample (the 3x gate's slow leg)."""

    def scalar_pairs():
        return [
            simulate_hijack(
                bench_env.graph, victim, attacker, bench_state, bench_state,
                scenario=scenario,
            )
            for victim, attacker in bench_pairs
        ]

    outcomes = benchmark(scalar_pairs)
    assert len(outcomes) == len(bench_pairs)
