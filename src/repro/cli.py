"""Command-line interface: ``sbgp-sim``.

Subcommands mirror the experiment harness:

- ``case-study``   the Section-5 run (Figures 3-7, Table 1);
- ``sweep``        the theta x adopter-set grid (Figures 8-9);
- ``tiebreak``     tiebreak-set statistics (Figure 10, §6.6-6.7);
- ``cp-vs-tier1``  Figure 12;
- ``turnoff``      the §7.3 disable-incentive census;
- ``attack-impact`` attack impact vs deployment level (§2.2.1
  generalised: any registered scenario x deployment strategy, with
  ``--journal``/``--resume`` checkpointing like ``sweep``);
- ``graph-stats``  Tables 2-4 for the generated topology;
- ``validate-graph`` preflight a real as-rel snapshot (quarantine report).

Every simulation subcommand accepts ``--deadline SECONDS`` and
``--memory-budget SIZE`` (e.g. ``2GiB``); the resulting
:class:`~repro.runtime.guard.RuntimeGuard` is installed for the whole
run.  An expired deadline exits with code 3 after journaling completed
work, so ``sweep --journal ... --resume`` continues where it stopped.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import (
    build_environment,
    cells_to_rows,
    format_series,
    format_table,
    per_destination_turn_off_census,
    run_case_study,
    run_cp_vs_tier1,
    run_sweep,
)
from repro.routing import backends as kernel_backends
from repro.routing.backends import available_backends
from repro.routing.policy import available_policies, policy_table
from repro.routing.tiebreak import (
    collect_tiebreak_stats,
    security_sensitive_decision_fraction,
)
from repro.runtime.errors import DeadlineExceeded
from repro.runtime.guard import (
    Deadline,
    MemoryBudget,
    RuntimeGuard,
    parse_size,
    use_guard,
)
from repro.topology.preflight import PREFLIGHT_MODES
from repro.topology.stats import summarize, top_by_degree

#: exit code for an expired ``--deadline`` (the run is resumable, which
#: distinguishes it from argparse's 2 and generic failures' 1)
EXIT_DEADLINE = 3


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=1000, help="number of ASes")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper-scale topology preset "
                             "(36,964 ASes, the Cyclops snapshot's mixture); "
                             "overrides --n — pair with --destinations "
                             "unless you have hundreds of GiB of RAM")
    parser.add_argument("--destinations", type=int, default=None, metavar="K",
                        help="restrict the routing cache to a uniform sample "
                             "of K destinations (sampled estimators of the "
                             "all-destination utilities; required in practice "
                             "at paper scale)")
    parser.add_argument("--seed", type=int, default=2011, help="topology seed")
    parser.add_argument("--x", type=float, default=0.10, help="CP traffic fraction")
    parser.add_argument("--theta", type=float, default=0.05, help="deployment threshold")
    parser.add_argument("--augmented", action="store_true", help="use the augmented graph")
    parser.add_argument("--workers", type=int, default=1, help="cache-warm workers")
    parser.add_argument("--policy", default="security_3rd",
                        metavar="NAME",
                        help="routing policy driving route selection "
                             f"(one of: {', '.join(available_policies())}; "
                             "aliases like 'gao-rexford' also work)")
    parser.add_argument("--kernel-backend", default=None, metavar="NAME",
                        choices=[*available_backends(), kernel_backends.AUTO],
                        help="kernel backend for the batched routing kernels "
                             f"(one of: {', '.join(available_backends())}, "
                             "or 'auto' to prefer a compiled tier; default: "
                             f"${kernel_backends.ENV_VAR} or numpy; an "
                             "unusable compiled backend degrades to numpy)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the merged metrics snapshot (counters, "
                             "gauges, histograms) to PATH as JSON")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome-trace/Perfetto JSON of the "
                             "run's spans to PATH")
    parser.add_argument("--trace-jsonl", default=None, metavar="PATH",
                        help="also write the span stream as JSONL "
                             "(one event per line) to PATH")
    parser.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                        help="cooperative wall-clock budget; when it expires "
                             "the run stops at the next checkpoint (exit "
                             "code 3) with completed work journaled")
    parser.add_argument("--memory-budget", default=None, metavar="SIZE",
                        help="memory budget like '512MiB' or '2g'; the run "
                             "degrades (chunked kernels, fewer workers, lazy "
                             "warm) to stay under it")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sbgp-sim",
        description="Market-driven S*BGP deployment simulator (SIGCOMM 2011 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("case-study", "sweep", "tiebreak", "cp-vs-tier1", "turnoff",
                 "attack-impact", "graph-stats", "experiment"):
        p = sub.add_parser(name)
        _add_common(p)
        if name == "attack-impact":
            p.add_argument("--samples", type=int, default=15,
                           help="attacker/victim pairs per state")
            p.add_argument("--scenario", action="append", default=None,
                           metavar="NAME",
                           help="attack scenario to evaluate; repeatable "
                                "(aliases like 'hijack' work; default: all "
                                "registered scenarios)")
            p.add_argument("--strategy", action="append", default=None,
                           metavar="NAME",
                           help="deployment strategy supplying the states; "
                                "repeatable (default: all registered "
                                "strategies)")
            p.add_argument("--levels", default=None, metavar="F1,F2,...",
                           help="comma-separated deployment levels in [0,1] "
                                "(default: 0,0.25,0.5,0.75,1)")
            p.add_argument("--attack-seed", type=int, default=0,
                           help="seed for the shared (victim, attacker) "
                                "pair sample")
            p.add_argument("--journal", default=None, metavar="PATH",
                           help="checkpoint each finished matrix cell to "
                                "this JSONL journal (repro.run-journal/1)")
            p.add_argument("--resume", action="store_true",
                           help="replay completed cells from an existing "
                                "--journal instead of recomputing them")
        if name == "experiment":
            p.add_argument("--id", default=None,
                           help="experiment id (omit to list all)")
        if name == "sweep":
            p.add_argument("--journal", default=None, metavar="PATH",
                           help="checkpoint each finished cell to this "
                                "JSONL journal (repro.run-journal/1)")
            p.add_argument("--resume", action="store_true",
                           help="replay completed cells from an existing "
                                "--journal instead of recomputing them")
            p.add_argument("--out", default=None, metavar="PATH",
                           help="also write the table to PATH (atomic)")
            p.add_argument("--thetas", default=None, metavar="T1,T2,...",
                           help="comma-separated theta values to sweep "
                                "(default: the paper's grid); a single "
                                "value runs one column — the paper-scale "
                                "single-cell mode")
            p.add_argument("--adopter-sets", default=None, metavar="A,B,...",
                           help="comma-separated adopter-set names to sweep "
                                "(a subset of the Fig-8 menu, e.g. "
                                "'top-5,5-cps'; default: all)")
    sv = sub.add_parser(
        "serve",
        help="run the simulation service: a long-lived daemon with a JSON "
             "job API, journal-backed job store, fair scheduler, and a "
             "cross-request arena/result cache",
    )
    sv.add_argument("--store", required=True, metavar="DIR",
                    help="store directory (job journal, sweep journals, "
                         "results, endpoint.json); reusing a directory "
                         "resumes its unfinished jobs")
    sv.add_argument("--host", default="127.0.0.1", help="bind address")
    sv.add_argument("--port", type=int, default=0,
                    help="bind port (0 = pick a free one; the actual "
                         "endpoint is written to <store>/endpoint.json)")
    sv.add_argument("--job-workers", type=int, default=1,
                    help="concurrent job-executor threads")
    sv.add_argument("--cache-budget", default="256MiB", metavar="SIZE",
                    help="result-cache byte budget (LRU eviction beyond it)")
    vg = sub.add_parser(
        "validate-graph",
        help="preflight an as-rel snapshot: malformed lines, duplicate/"
             "conflicting edges, self-loops, provider cycles, components",
    )
    vg.add_argument("path", help="as-rel file to validate")
    vg.add_argument("--mode", choices=PREFLIGHT_MODES, default="report",
                    help="strict: raise on any issue; repair: quarantine "
                         "and fix; report (default): repair + warn")
    vg.add_argument("--cp", type=int, action="append", default=[],
                    metavar="ASN", help="treat ASN as a content provider "
                                        "(repeatable; unioned with # cp: "
                                        "markers in the file)")
    vg.add_argument("--repaired-out", default=None, metavar="PATH",
                    help="write the repaired graph back out as as-rel "
                         "(atomic)")
    vg.add_argument("--report-out", default=None, metavar="PATH",
                    help="write the full quarantine report to PATH as JSON")
    sub.add_parser(
        "list-policies",
        help="print the routing-policy catalogue (name, ranking, description)",
    )
    return parser


def _build_guard(args: argparse.Namespace) -> RuntimeGuard:
    """The :class:`RuntimeGuard` requested on the command line."""
    deadline = getattr(args, "deadline", None)
    budget = getattr(args, "memory_budget", None)
    return RuntimeGuard(
        deadline=Deadline(deadline) if deadline is not None else None,
        memory=MemoryBudget(parse_size(budget)) if budget else None,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-policies":
        for name, ranking, description in policy_table():
            print(f"{name:18s} {ranking:20s} {description}")
        return 0
    if args.command == "validate-graph":
        # pure input validation: no topology generation, no telemetry
        return _cmd_validate_graph(args)
    if args.command == "serve":
        # the daemon owns its own telemetry and builds environments
        # per job, not up front
        return _cmd_serve(args)
    if args.command == "experiment":
        from repro.experiments.registry import EXPERIMENTS, list_experiments

        if args.id is None:
            for e in list_experiments():
                print(f"{e.id:8s} {e.title}  ({e.paper_ref})")
            return 0
        # Validate before the (expensive) environment build: a typo'd id
        # should fail in milliseconds, not after warming the cache.
        if args.id not in EXPERIMENTS:
            known = ", ".join(sorted(EXPERIMENTS))
            print(f"unknown experiment id {args.id!r}; valid ids: {known}",
                  file=sys.stderr)
            return 2

    telemetry_on = bool(args.metrics_out or args.trace_out or args.trace_jsonl)
    registry = tracer = None
    if telemetry_on:
        from repro import telemetry

        registry, tracer = telemetry.enable()
    exit_code = 0
    try:
        with use_guard(_build_guard(args)):
            config = None
            if args.paper_scale:
                from repro.topology.generator import paper_scale_config

                config = paper_scale_config(seed=args.seed)
            env = build_environment(
                n=args.n, seed=args.seed, x=args.x, augmented=args.augmented,
                workers=args.workers, policy=args.policy, config=config,
                sample_destinations=args.destinations,
                backend=args.kernel_backend,
            )
            command = args.command.replace("-", "_")
            handler = globals()[f"_cmd_{command}"]
            handler(env, args)
    except DeadlineExceeded as exc:
        print(f"sbgp-sim: {exc}", file=sys.stderr)
        exit_code = EXIT_DEADLINE
    finally:
        if telemetry_on:
            from repro import telemetry

            # telemetry is flushed even on a deadline exit: the
            # runtime.guard.* counters are exactly what you want to see
            # when a budget ran out
            _write_telemetry(args, registry, tracer)
            telemetry.disable()
    return exit_code


def _write_telemetry(args, registry, tracer) -> None:
    """Write the requested telemetry files and print the summary table."""
    from repro.telemetry.export import summary_rows, write_metrics

    snapshot = registry.snapshot()
    if args.metrics_out:
        write_metrics(args.metrics_out, snapshot)
    if args.trace_out:
        tracer.write_chrome_trace(args.trace_out)
    if args.trace_jsonl:
        tracer.write_jsonl(args.trace_jsonl)
    if args.command in ("case-study", "sweep"):
        print()
        print(format_table(
            ["metric", "type", "value", "detail"],
            summary_rows(snapshot),
            title="telemetry summary",
        ))


def _cmd_case_study(env, args) -> None:
    report = run_case_study(env, theta=args.theta)
    print(f"early adopters: {report.early_adopter_asns}")
    print(format_series("new secure ASes/round", report.fig3_new_ases, "{:d}"))
    print(format_series("adopting ISPs/round ", report.fig3_new_isps, "{:d}"))
    print(f"final: {report.fraction_secure_ases:.1%} of ASes secure "
          f"({report.result.outcome.value} after {report.result.num_rounds} rounds)")
    zs = report.zero_sum
    print(f"zero-sum: {zs.fraction_isps_above_threshold:.1%} of ISPs end above "
          f"(1+theta)x start; insecure ISPs end at "
          f"{zs.mean_final_over_start_insecure:.3f}x start on average")


def _cmd_sweep(env, args) -> None:
    from repro.runtime.errors import PersistenceError
    from repro.runtime.journal import RunJournal

    journal = None
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal PATH")
    if args.journal:
        journal = RunJournal(args.journal)
        if journal.exists() and not args.resume:
            raise SystemExit(
                f"journal {args.journal} already exists; "
                f"pass --resume to continue it or choose a fresh path"
            )
    kwargs = {}
    if args.thetas:
        kwargs["thetas"] = [float(t) for t in args.thetas.split(",") if t]
    if args.adopter_sets:
        menu = env.adopter_sets()
        names = [a for a in args.adopter_sets.split(",") if a]
        unknown = [a for a in names if a not in menu]
        if unknown:
            raise SystemExit(
                f"unknown adopter set(s) {', '.join(unknown)}; "
                f"valid names: {', '.join(menu)}"
            )
        kwargs["adopter_sets"] = {name: menu[name] for name in names}
    try:
        cells = run_sweep(env, journal=journal, **kwargs)
    except PersistenceError as exc:
        # journal mismatch/corruption and policy-mismatch SchemaError all
        # surface as one-line messages, not tracebacks
        raise SystemExit(str(exc)) from exc
    table = format_table(
        ["adopters", "theta", "frac ASes", "frac ISPs", "frac paths", "f^2", "rounds", "outcome"],
        cells_to_rows(cells),
        title="Fig 8/9: adoption and secure paths vs theta",
    )
    print(table)
    if args.out:
        from repro.experiments.report import write_report

        write_report(args.out, table)


def _cmd_tiebreak(env, args) -> None:
    stats = collect_tiebreak_stats(env.graph, dest_routing=env.cache.dest_routing)
    print(f"mean tiebreak set: {stats.mean:.2f} (ISPs {stats.mean_isp:.2f}, "
          f"stubs {stats.mean_stub:.2f})")
    print(f"multi-path pairs: {stats.multi_path_fraction:.1%} "
          f"(ISP sources: {stats.multi_path_fraction_isp:.1%})")
    frac = security_sensitive_decision_fraction(env.graph, stats)
    print(f"security-sensitive routing decisions (sec 6.7): {frac:.2%}")


def _cmd_cp_vs_tier1(env, args) -> None:
    cells = run_cp_vs_tier1(env)
    rows = [
        [f"{c.x:.2f}", c.adopters, f"{c.theta:.2f}",
         f"{c.fraction_secure_ases:.3f}", f"{c.fraction_secure_isps:.3f}"]
        for c in cells
    ]
    print(format_table(
        ["x", "adopters", "theta", "frac ASes", "frac ISPs"],
        rows, title="Fig 12: CPs vs Tier-1s",
    ))


def _cmd_turnoff(env, args) -> None:
    from repro.core.config import SimulationConfig, UtilityModel
    from repro.core.dynamics import DeploymentSimulation

    config = SimulationConfig(
        theta=args.theta, utility_model=UtilityModel.INCOMING, max_rounds=40
    )
    sim = DeploymentSimulation(env.graph, env.case_study_adopters(), config, env.cache)
    result = sim.run()
    census = per_destination_turn_off_census(env, result.final_state)
    print(f"secure ISPs: {census.num_secure_isps}; with a per-destination "
          f"turn-off incentive: {census.num_with_incentive} ({census.fraction:.1%})")
    if census.examples:
        print(f"examples: {list(census.examples)}")


def _cmd_attack_impact(env, args) -> None:
    from repro.experiments.attack_matrix import matrix_to_rows, run_attack_matrix
    from repro.runtime.errors import PersistenceError
    from repro.runtime.journal import RunJournal
    from repro.security import get_scenario, get_strategy

    journal = None
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal PATH")
    if args.journal:
        journal = RunJournal(args.journal)
        if journal.exists() and not args.resume:
            raise SystemExit(
                f"journal {args.journal} already exists; "
                f"pass --resume to continue it or choose a fresh path"
            )
    try:
        scenarios = (
            [get_scenario(s).name for s in args.scenario] if args.scenario else None
        )
        strategies = (
            [get_strategy(s).name for s in args.strategy] if args.strategy else None
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    levels = (0.0, 0.25, 0.5, 0.75, 1.0)
    if args.levels:
        levels = tuple(float(f) for f in args.levels.split(",") if f)
    try:
        cells = run_attack_matrix(
            env,
            scenarios=scenarios,
            policies=[env.cache.policy_name],
            strategies=strategies,
            levels=levels,
            samples=args.samples,
            seed=args.attack_seed,
            journal=journal,
        )
    except PersistenceError as exc:
        # journal mismatch/corruption and scenario-mismatch SchemaError
        # all surface as one-line messages, not tracebacks
        raise SystemExit(str(exc)) from exc
    print(format_table(
        ["scenario", "policy", "strategy", "level", "frac secure",
         "mean fooled", "max fooled", "outcome"],
        matrix_to_rows(cells),
        title="Attack impact vs deployment level (sec 2.2.1 generalised)",
    ))


def _cmd_serve(args) -> int:
    import signal

    from repro import telemetry
    from repro.service.daemon import SimulationService

    # telemetry is always live for the daemon: /metrics is part of the
    # API contract, and the final snapshot flushes to <store>/metrics.json
    telemetry.enable()
    service = SimulationService(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.job_workers,
        cache_budget_bytes=parse_size(args.cache_budget),
    )

    def _on_signal(signum, frame) -> None:
        # signal-safe: just trips the event the main thread waits on;
        # the graceful drain happens below, outside handler context
        service.request_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    service.start()
    host, port = service.address
    print(f"sbgp-sim service listening on http://{host}:{port} "
          f"(store: {args.store})", flush=True)
    try:
        service.wait_until_shutdown()
    finally:
        service.shutdown()
        telemetry.disable()
    return 0


def _cmd_validate_graph(args) -> int:
    import json

    from repro.runtime.atomic import atomic_write_text
    from repro.topology.errors import GraphValidationError
    from repro.topology.preflight import preflight_as_rel
    from repro.topology.serialization import dump_as_rel

    try:
        graph, report = preflight_as_rel(args.path, cp_asns=args.cp, mode=args.mode)
    except GraphValidationError as exc:
        print(f"sbgp-sim: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"sbgp-sim: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    print(report.format_text())
    if args.report_out:
        atomic_write_text(args.report_out,
                          json.dumps(report.to_dict(), indent=2) + "\n")
    if args.repaired_out:
        dump_as_rel(graph, args.repaired_out)
        print(f"repaired graph written to {args.repaired_out}")
    return 0 if report.ok else 1


def _cmd_experiment(env, args) -> None:
    from repro.experiments.registry import run_experiment

    print(run_experiment(args.id, env))


def _cmd_graph_stats(env, args) -> None:
    s = summarize(env.graph)
    print(format_table(
        ["ASes", "stubs", "ISPs", "CPs", "cust-prov edges", "peerings"],
        [[s.num_ases, s.num_stubs, s.num_isps, s.num_cps,
          s.num_customer_provider_edges, s.num_peering_edges]],
        title="Table 2: graph summary",
    ))
    print("top-5 by degree:", top_by_degree(env.graph, 5))
    cs = env.cache.stats()
    print(format_table(
        ["policy", "backend", "hits", "misses", "builds", "installs", "warm s",
         "cached", "fraction", "arena MiB", "state rebuilds"],
        [[cs.policy, cs.backend, cs.hits, cs.misses, cs.builds, cs.installs,
          f"{cs.warm_seconds:.2f}", f"{cs.cached}/{cs.total}",
          f"{cs.cached_fraction:.1%}", f"{cs.arena_bytes / 2**20:.1f}",
          cs.state_rebuilds]],
        title="routing cache",
    ))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
