"""Per-policy kernel benchmarks: structure build + batched resolution.

The regression gate this feeds (``make bench-compare``) is what holds
the policy layer to its core promise: the default ``security_3rd``
policy keeps the state-independent arena fast path, so its numbers must
track the pre-policy-layer kernels.  The state-dependent rankings
(``security_2nd`` / ``security_1st``) pay a Jacobi fixpoint rebuild per
deployment state — deliberately more expensive; these benches make that
cost visible instead of anecdotal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.arena import RoutingArena, compute_trees_batched
from repro.routing.policy import get_policy

POLICIES = ("security_3rd", "security_2nd", "security_1st", "sp_first")

#: destinations per bench: enough to amortise the batched kernels,
#: small enough that the fixpoint builds stay sub-second
NUM_DESTS = 48


@pytest.fixture(scope="module")
def bench_state(env):
    secure = np.zeros(env.graph.n, dtype=bool)
    secure[::3] = True
    return secure


def _dests(env) -> list[int]:
    step = max(1, env.graph.n // NUM_DESTS)
    return list(range(0, env.graph.n, step))[:NUM_DESTS]


@pytest.mark.parametrize("policy", POLICIES)
def test_kernel_policy_structure_build(benchmark, env, bench_state, policy):
    pol = get_policy(policy)
    dests = _dests(env)
    routings = benchmark(
        lambda: pol.build_many(
            env.graph, dests, env.cache.compiled,
            node_secure=bench_state, breaks_ties=bench_state,
        )
    )
    assert len(routings) == len(dests)
    assert all(r.policy == policy for r in routings)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernel_policy_batched_trees(benchmark, env, bench_state, policy):
    pol = get_policy(policy)
    dests = _dests(env)
    routings = pol.build_many(
        env.graph, dests, env.cache.compiled,
        node_secure=bench_state, breaks_ties=bench_state,
    )
    arena = RoutingArena.build(env.graph.n, dests, routings, policy=pol.name)
    slots = arena.all_slots()
    bt = benchmark(
        lambda: compute_trees_batched(arena, slots, bench_state, bench_state)
    )
    assert bt.choice.shape == (len(dests), env.graph.n)
