"""Append-only run journals for checkpoint/resume.

A :class:`RunJournal` is a JSONL file: one header line identifying the
run, then one record per completed unit of work (a sweep cell, a
simulation round).  Appends are flushed and fsynced before returning,
so after a crash — including SIGKILL — the journal holds every unit
that finished, and a restarted run replays it instead of recomputing.

Format (``repro.run-journal/1``)::

    {"format": "repro.run-journal/1", "kind": "sweep", "meta": {...}}
    {"record": {...}, "sha256": "..."}
    {"record": {...}, "sha256": "..."}

Each record line carries a SHA-256 of its canonical record JSON.  A
torn *final* line (the crash happened mid-append) is dropped silently
on replay; damage anywhere else raises
:class:`~repro.runtime.errors.JournalCorruptError`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from pathlib import Path
from typing import IO, Any, Iterator

from repro.runtime.errors import (
    JournalCorruptError,
    JournalLockedError,
    JournalMismatchError,
)

try:  # pragma: no cover - present on every POSIX CPython
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - Windows et al.: locking is a no-op
    _fcntl = None  # type: ignore[assignment]

log = logging.getLogger(__name__)

JOURNAL_FORMAT = "repro.run-journal/1"

#: seconds an append waits for a contended advisory lock before raising
#: :class:`~repro.runtime.errors.JournalLockedError` (appends are
#: one fsynced line, so honest contention clears in microseconds)
DEFAULT_LOCK_TIMEOUT = 5.0

#: polling interval while waiting on a contended lock
_LOCK_POLL_SECONDS = 0.02


def _lock_append_handle(fh: IO[str], path: Path, timeout: float) -> None:
    """Take the advisory append lock on ``fh`` (best-effort, exclusive).

    Uses non-blocking ``flock`` in a short retry loop so a contended
    journal raises the typed :class:`JournalLockedError` instead of
    parking the thread unboundedly.  On platforms without ``fcntl`` the
    lock is a documented no-op — appends there rely on the caller
    serialising writers, exactly as before this lock existed.
    """
    if _fcntl is None:
        return
    deadline = time.monotonic() + max(timeout, 0.0)
    while True:
        try:
            _fcntl.flock(fh.fileno(), _fcntl.LOCK_EX | _fcntl.LOCK_NB)
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise JournalLockedError(path, timeout) from None
            time.sleep(_LOCK_POLL_SECONDS)


def _record_checksum(record: dict[str, Any]) -> str:
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RunJournal:
    """An append-only JSONL journal of completed work units.

    Parameters
    ----------
    path:
        Journal file location.  The file is created lazily on the first
        :meth:`ensure_header` / :meth:`append`.
    lock_timeout:
        Seconds an append waits for the advisory file lock held by a
        concurrent writer before raising
        :class:`~repro.runtime.errors.JournalLockedError`.
    """

    def __init__(self, path: str | Path, lock_timeout: float = DEFAULT_LOCK_TIMEOUT):
        self.path = Path(path)
        self.lock_timeout = lock_timeout

    # -- writing ------------------------------------------------------

    def ensure_header(self, kind: str, meta: dict[str, Any] | None = None) -> None:
        """Create the header, or validate an existing one.

        A fresh (or empty) journal gets a header line with ``kind`` and
        ``meta``.  An existing journal must match both exactly —
        resuming a sweep into a journal from a different grid raises
        :class:`~repro.runtime.errors.JournalMismatchError` instead of
        silently mixing cells.
        """
        meta = meta or {}
        self.repair()
        header = self.header()
        if header is None:
            line = json.dumps(
                {"format": JOURNAL_FORMAT, "kind": kind, "meta": meta},
                sort_keys=True,
            )
            self._append_line(line)
            return
        if header.get("kind") != kind:
            raise JournalMismatchError(
                f"{self.path}: journal kind {header.get('kind')!r} != expected {kind!r}"
            )
        existing_meta = header.get("meta") or {}
        if existing_meta != meta:
            keys = sorted(
                k
                for k in set(existing_meta) | set(meta)
                if existing_meta.get(k) != meta.get(k)
            )
            raise JournalMismatchError(
                f"{self.path}: journal metadata differs from this run "
                f"(mismatched keys: {keys}); use a fresh journal path"
            )

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (flushed + fsynced before return)."""
        line = json.dumps(
            {"record": record, "sha256": _record_checksum(record)},
            sort_keys=True,
        )
        self._append_line(line)

    def repair(self) -> int:
        """Drop a torn final line so later appends stay parseable.

        A crash mid-append leaves a partial last line; appending after
        it would weld two records together.  Returns the number of
        lines dropped (0 or 1); corruption anywhere but the tail still
        raises :class:`~repro.runtime.errors.JournalCorruptError`.
        """
        from repro.runtime.atomic import atomic_write_text

        lines = self._read_lines()
        if not lines:
            return 0
        try:
            kept = len(list(self.iter_records())) + 1  # records + header
        except JournalCorruptError:
            if len(lines) == 1:  # torn header from the first-ever append
                atomic_write_text(self.path, "")
                return 1
            raise
        if kept >= len(lines):
            return 0
        atomic_write_text(self.path, "\n".join(lines[:kept]) + "\n")
        return len(lines) - kept

    def _append_line(self, line: str) -> None:
        # The journal is the one sanctioned non-atomic writer: an
        # fsynced append is the point (atomic replace would rewrite the
        # whole file per record), and repair() handles the torn tail.
        # The advisory flock (released with the handle) keeps two
        # writers — daemon worker threads, or two processes sharing a
        # store directory — from interleaving halves of a line.
        with open(self.path, "a", encoding="utf-8") as fh:  # repro-lint: disable=RPR001
            _lock_append_handle(fh, self.path, self.lock_timeout)
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- reading ------------------------------------------------------

    def exists(self) -> bool:
        """True if the journal file exists and is non-empty."""
        try:
            return self.path.stat().st_size > 0
        except OSError:
            return False

    def header(self) -> dict[str, Any] | None:
        """The header payload, or None for a missing/empty journal."""
        lines = self._read_lines()
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalCorruptError(self.path, 1, f"unreadable header ({exc})") from exc
        if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
            raise JournalCorruptError(
                self.path, 1, f"not a {JOURNAL_FORMAT} journal"
            )
        return header

    def records(self) -> list[dict[str, Any]]:
        """All validated records, in append order."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Yield records, verifying per-line checksums.

        The final line is allowed to be torn (dropped with a warning);
        any earlier damage raises
        :class:`~repro.runtime.errors.JournalCorruptError`.
        """
        lines = self._read_lines()
        if not lines:
            return
        self.header()  # validates line 1
        last = len(lines)
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                entry = json.loads(line)
                if (
                    not isinstance(entry, dict)
                    or "record" not in entry
                    or entry.get("sha256") != _record_checksum(entry["record"])
                ):
                    raise ValueError("record/checksum mismatch")
            except ValueError as exc:
                if lineno == last:
                    log.warning(
                        "%s:%d: dropping torn final journal line (%s)",
                        self.path, lineno, exc,
                    )
                    return
                raise JournalCorruptError(self.path, lineno, str(exc)) from exc
            yield entry["record"]

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    def _read_lines(self) -> list[str]:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        return [ln for ln in text.splitlines() if ln.strip()]


def coerce_journal(journal: "RunJournal | str | Path | None") -> RunJournal | None:
    """Accept a journal, a path, or None (helper for API entry points)."""
    if journal is None or isinstance(journal, RunJournal):
        return journal
    return RunJournal(journal)
