"""Tests for local utility forecasting (§8.2 shadow configurations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import UtilityModel
from repro.core.engine import compute_round_data
from repro.core.forecast import forecast_error_study, local_project_flip
from repro.core.projection import project_flip
from repro.core.state import DeploymentState, StateDeriver


@pytest.fixture(scope="module")
def setting(small_graph, small_cache):
    deriver = StateDeriver(small_graph, compiled=small_cache.compiled)
    from repro.core.adopters import cps_plus_top_isps

    adopters = frozenset(
        small_graph.index(a) for a in cps_plus_top_isps(small_graph, 3)
    )
    state = DeploymentState.initial(adopters)
    rd = compute_round_data(small_cache, deriver, state, UtilityModel.OUTGOING)
    isps = [i for i in small_graph.isp_indices if i not in adopters][:10]
    return deriver, rd, isps


class TestLocalForecast:
    def test_large_horizon_is_exact(self, small_cache, setting):
        """With unbounded shadow cooperation the estimate equals the
        exact projection — validating the bounded propagation."""
        deriver, rd, isps = setting
        for isp in isps:
            exact = project_flip(
                small_cache, deriver, rd, isp, True, UtilityModel.OUTGOING
            ).utility
            local = local_project_flip(
                small_cache, deriver, rd, isp, horizon=10 ** 6
            )
            assert local == pytest.approx(exact, abs=1e-6)

    def test_error_shrinks_with_horizon(self, small_cache, setting):
        deriver, rd, isps = setting
        means = []
        for horizon in (0, 2, 10):
            fcs = forecast_error_study(
                small_cache, deriver, rd, isps, horizon=horizon
            )
            means.append(float(np.mean([abs(f.epsilon) for f in fcs])))
        assert means[2] <= means[0] + 1e-9
        assert means[2] == pytest.approx(0.0, abs=1e-6)

    def test_negative_horizon_rejected(self, small_cache, setting):
        deriver, rd, isps = setting
        with pytest.raises(ValueError):
            local_project_flip(small_cache, deriver, rd, isps[0], horizon=-1)

    def test_forecast_fields(self, small_cache, setting):
        deriver, rd, isps = setting
        fcs = forecast_error_study(small_cache, deriver, rd, isps[:3], horizon=1)
        for f in fcs:
            assert f.horizon == 1
            assert f.current_utility >= 0
            if f.exact_utility:
                assert f.error == pytest.approx(
                    (f.estimated_utility - f.exact_utility) / f.exact_utility
                )

    def test_incoming_model_supported(self, small_cache, setting):
        deriver, rd_out, isps = setting
        rd = compute_round_data(
            small_cache, deriver, rd_out.state, UtilityModel.INCOMING
        )
        value = local_project_flip(
            small_cache, deriver, rd, isps[0],
            model=UtilityModel.INCOMING, horizon=1,
        )
        assert value >= 0
