"""Disabled-mode overhead regression.

The default registry/tracer must make instrumentation effectively free:
``_play_round`` adds one ``get_registry()`` resolution, one ``enabled``
branch, and a handful of shared no-op instrument calls per round (plus
one no-op span and histogram-timer per round in ``run``).  This test
times exactly that added work and asserts it stays in the microsecond
range per round — vs. round bodies that cost milliseconds even on toy
graphs, i.e. within measurement noise of an un-instrumented build.
"""

from __future__ import annotations

import time

from repro.core.config import SimulationConfig
from repro.core.dynamics import DeploymentSimulation
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer

ROUNDS = 10_000

#: generous per-round budget for the disabled-mode instrumentation
#: block (the real figure is tens of nanoseconds; CI boxes are noisy).
PER_ROUND_BUDGET_SECONDS = 50e-6


def _disabled_round_instrumentation() -> None:
    """The exact telemetry work one disabled-mode round performs."""
    registry = get_registry()
    with get_tracer().span("round", index=1), \
            registry.histogram("sim.round_seconds").time():
        if registry.enabled:  # pragma: no cover - disabled mode
            raise AssertionError("test requires the default no-op registry")


def test_disabled_mode_round_overhead_is_noise():
    assert not get_registry().enabled
    _disabled_round_instrumentation()  # warm attribute caches
    start = time.perf_counter()
    for _ in range(ROUNDS):
        _disabled_round_instrumentation()
    per_round = (time.perf_counter() - start) / ROUNDS
    assert per_round < PER_ROUND_BUDGET_SECONDS, (
        f"disabled-mode telemetry costs {per_round * 1e6:.1f}us/round "
        f"(budget {PER_ROUND_BUDGET_SECONDS * 1e6:.0f}us)"
    )


def test_disabled_run_records_nothing(medium_env):
    config = SimulationConfig(theta=0.05, max_rounds=10)
    sim = DeploymentSimulation(
        medium_env.graph, medium_env.case_study_adopters(), config, medium_env.cache
    )
    sim.run()
    assert get_registry().snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    assert get_tracer().events() == []
