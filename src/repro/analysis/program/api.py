"""Dead public API detection (RPR017) and the API-surface snapshot.

**Dead API.**  A top-level public symbol (no leading underscore) of a
project module is *dead* when its name is referenced nowhere else in
the program — not imported, not attribute-accessed, not mentioned as a
bare name — across the linted tree **plus** the reference-only roots
(tests/, examples/) that use the library without being linted
themselves.  Same-file references count (a base class of exported
subclasses, an annotation the module itself uses) because definitions
register as *stores*, never as uses — a symbol nothing loads anywhere
stays dead.  One reference shape deliberately does NOT count as use:
pure re-export imports in ``__init__.py`` files of the symbol's own
package tree (a package that exports a name nobody consumes is exactly
the drift this rule exists to catch).

Matching is by *name*, not by object identity: a dead symbol whose name
collides with any used identifier anywhere (``stats``, ``main``, …) is
not reported.  That keeps the rule conservative — zero false positives
at the price of missed shadowed deaths — which is the right trade for a
blocking CI gate.

**Surface snapshot.**  :func:`collect_surface` renders the same symbol
table into a stable JSON shape (``repro.api-surface/1``):
``module -> symbol -> signature`` with class entries carrying bases and
public-method signatures.  ``scripts/api_surface.py`` ratchets the
committed snapshot: any drift (add/remove/change) fails until the
baseline is regenerated with ``--update``.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.program.index import FileIndex, ProgramIndex, SymbolInfo

#: JSON format marker for the committed surface snapshot.
SURFACE_FORMAT = "repro.api-surface/1"


@dataclasses.dataclass(frozen=True)
class DeadApiViolation:
    """One RPR017 site (anchored at the symbol definition)."""

    path: str
    line: int
    col: int
    message: str


def _top_package(module: str) -> str:
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) > 1 else module


def _reference_names(fi: FileIndex, symbol: SymbolInfo) -> set[str]:
    """Identifiers in ``fi`` that count as uses of foreign symbols.

    For ``__init__`` files inside the symbol's own package tree, names
    that appear *only* as from-import targets are re-exports, not uses.
    """
    if fi.module is not None and fi.is_init:
        sym_pkg = _top_package(symbol.module)
        if fi.module == sym_pkg or fi.module.startswith(sym_pkg + ".") or sym_pkg.startswith(fi.module + "."):
            # ``fi.uses`` holds only loads beyond the import statements
            # themselves, so a name that is merely re-imported (even
            # into ``__all__``, a plain string list) does not count —
            # but one the __init__ actually calls or annotates does.
            return fi.uses
    return fi.uses | set(fi.import_refs)


def check_dead_api(index: ProgramIndex) -> tuple[list[DeadApiViolation], int]:
    """RPR017 findings plus the public-symbol count examined."""
    symbols = index.public_symbols()
    out: list[DeadApiViolation] = []
    all_files = list(index.files.values()) + list(index.extra_uses)
    for sym in symbols:
        if sym.name == "main":  # console entry points are wired via pyproject
            continue
        used = False
        for fi in all_files:
            if sym.name in _reference_names(fi, sym):
                used = True
                break
        if not used:
            out.append(
                DeadApiViolation(
                    path=sym.path,
                    line=sym.line,
                    col=sym.col,
                    message=(
                        f"public {sym.kind} `{sym.module}.{sym.name}` is referenced "
                        "nowhere in src/tests/scripts/benchmarks/examples; delete it, "
                        "underscore it, or waive with the reason it must stay public"
                    ),
                )
            )
    return out, len(symbols)


# -- surface snapshot --------------------------------------------------


def collect_surface(index: ProgramIndex) -> dict[str, dict[str, object]]:
    """``module -> symbol -> signature`` for every public top-level symbol."""
    surface: dict[str, dict[str, object]] = {}
    for module, fi in sorted(index.modules.items()):
        entries: dict[str, object] = {}
        for name, sym in sorted(fi.symbols.items()):
            if not sym.public:
                continue
            if sym.kind == "class":
                _bases, methods = fi.classes.get(name, ((), {}))
                entries[name] = {
                    "kind": "class",
                    "signature": sym.signature,
                    "methods": {
                        m: f.signature
                        for m, f in sorted(methods.items())
                        if not m.startswith("_") or m == "__init__"
                    },
                }
            else:
                entries[name] = {"kind": sym.kind, "signature": sym.signature}
        if entries:
            surface[module] = entries
    return surface
