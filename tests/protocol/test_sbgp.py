"""Tests for S-BGP route attestations."""

from __future__ import annotations

import pytest

from repro.protocol.messages import Announcement
from repro.protocol.rpki import Prefix, RPKI
from repro.protocol.sbgp import (
    forward,
    originate,
    sign_hop,
    validate_path,
    validated_signers,
)

PFX = Prefix("198.51.100.0", 24)


@pytest.fixture()
def rpki() -> RPKI:
    r = RPKI(seed=b"sbgp")
    for asn in (1, 2, 3, 4):
        r.register_as(asn)
    return r


class TestSigning:
    def test_originate_is_valid_at_receiver(self, rpki):
        ann = originate(rpki, 1, PFX, next_as=2)
        assert ann.path == (1,)
        assert validate_path(rpki, ann, receiver=2)

    def test_origination_not_valid_elsewhere(self, rpki):
        """The next_as binding prevents replaying to another neighbor."""
        ann = originate(rpki, 1, PFX, next_as=2)
        assert not validate_path(rpki, ann, receiver=3)

    def test_full_chain(self, rpki):
        ann = originate(rpki, 1, PFX, next_as=2)
        ann = forward(rpki, 2, ann, next_as=3)
        ann = forward(rpki, 3, ann, next_as=4)
        assert ann.path == (3, 2, 1)
        assert validate_path(rpki, ann, receiver=4)
        assert validated_signers(rpki, ann, 4) == {1, 2, 3}

    def test_unsigned_hop_breaks_chain(self, rpki):
        ann = originate(rpki, 1, PFX, next_as=2)
        ann = forward(rpki, 2, ann, next_as=3, sign=False)
        ann = forward(rpki, 3, ann, next_as=4)
        assert not validate_path(rpki, ann, receiver=4)
        assert validated_signers(rpki, ann, 4) == {1, 3}

    def test_sign_hop_rejects_wrong_path_head(self, rpki):
        with pytest.raises(ValueError):
            sign_hop(rpki, 1, PFX, (2, 1), next_as=3)


class TestAttacks:
    def test_path_truncation_detected(self, rpki):
        """Dropping an AS from the middle invalidates the chain because
        each signature covers the full suffix it was made over."""
        ann = originate(rpki, 1, PFX, next_as=2)
        ann = forward(rpki, 2, ann, next_as=3)
        # attacker at 3 claims the shortened path (3, 1), reusing 1's
        # genuine attestation and signing its own hop toward 4
        own = sign_hop(rpki, 3, PFX, (3, 1), next_as=4)
        forged = Announcement(
            prefix=PFX, path=(3, 1), attestations=ann.attestations + (own,)
        )
        assert not validate_path(rpki, forged, receiver=4)
        # 1's signature does not verify for this splice: it was bound
        # to next hop 2, not 3
        assert validated_signers(rpki, forged, 4) == {3}

    def test_fabricated_origin_detected(self, rpki):
        forged = Announcement(prefix=PFX, path=(3, 1))
        assert not validate_path(rpki, forged, receiver=4)
        assert validated_signers(rpki, forged, 4) == set()

    def test_splice_into_other_prefix_detected(self, rpki):
        """Signatures bind the prefix: reusing them for another prefix fails."""
        ann = originate(rpki, 1, PFX, next_as=2)
        other = Prefix("203.0.113.0", 24)
        forged = Announcement(prefix=other, path=(1,), attestations=ann.attestations)
        assert not validate_path(rpki, forged, receiver=2)


class TestAnnouncement:
    def test_extended(self, rpki):
        ann = originate(rpki, 1, PFX, next_as=2)
        ext = ann.extended(2)
        assert ext.path == (2, 1)
        assert ext.origin == 1
        assert ext.sender == 2

    def test_loop_detection(self, rpki):
        ann = originate(rpki, 1, PFX, next_as=2).extended(2)
        assert ann.contains_loop(1)
        assert not ann.contains_loop(3)
