"""Tests for topology evolution across deployment epochs (§8.4)."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.topology.evolution import (
    EvolutionConfig,
    EvolvingDeployment,
    evolve_graph,
)
from repro.topology.generator import generate_topology
from repro.topology.relationships import ASRole


@pytest.fixture(scope="module")
def base():
    return generate_topology(n=120, seed=41)


class TestEvolveGraph:
    def test_original_untouched(self, base):
        n_before = base.graph.n
        evolve_graph(base.graph, EvolutionConfig(new_stubs=5), seed=1)
        assert base.graph.n == n_before

    def test_new_stubs_added(self, base):
        out = evolve_graph(base.graph, EvolutionConfig(new_stubs=7), seed=1)
        assert out.n == base.graph.n + 7
        new_asns = set(out.asns) - set(base.graph.asns)
        for asn in new_asns:
            assert out.role(asn) is ASRole.STUB
            assert out.providers_of(asn)

    def test_gr1_preserved(self, base):
        out = evolve_graph(
            base.graph,
            EvolutionConfig(new_stubs=10, new_peerings=5, rehomed_stubs=3),
            seed=2,
        )
        out.validate()

    def test_rehoming_never_disconnects(self, base):
        out = evolve_graph(
            base.graph, EvolutionConfig(new_stubs=0, rehomed_stubs=10), seed=3
        )
        for i in out.stub_indices:
            assert out.providers[i], f"stub {out.asn(i)} disconnected"

    def test_secure_attraction_biases_new_stubs(self, base):
        secure = [base.tier1_asns[0]]
        cfg = EvolutionConfig(new_stubs=40, secure_attraction=1.0)
        out = evolve_graph(base.graph, cfg, secure_provider_asns=secure, seed=4)
        new_asns = sorted(set(out.asns) - set(base.graph.asns))
        with_secure = sum(
            1 for asn in new_asns if secure[0] in out.providers_of(asn)
        )
        assert with_secure == len(new_asns)

    def test_validation(self):
        with pytest.raises(ValueError):
            EvolutionConfig(secure_attraction=1.5)
        with pytest.raises(ValueError):
            EvolutionConfig(new_stubs=-1)


class TestEvolvingDeployment:
    def test_epochs_grow_and_deploy(self, base):
        driver = EvolvingDeployment(
            base.graph.copy(),
            early_adopter_asns=base.tier1_asns[:3],
            evolution=EvolutionConfig(new_stubs=6, new_peerings=2),
            simulation_config=SimulationConfig(theta=0.05, max_rounds=20),
            seed=7,
        )
        records = driver.run(epochs=3)
        assert len(records) == 3
        sizes = [r.num_ases for r in records]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]
        # deployers persist across epochs
        assert records[0].deployer_asns <= records[-1].deployer_asns
