"""Local utility forecasting — "shadow configurations" (§8.2).

The paper's projections assume global information.  In practice an ISP
would estimate: "an ISP might set up a router that listens to S*BGP
messages from neighboring ASes, and then use these messages to predict
how becoming secure might impact its neighbors' route selections.  A
more sophisticated mechanism could use extended 'shadow configurations'
with neighboring ASes to gain visibility into how traffic flows might
change."

:func:`local_project_flip` implements that estimator: the flip's
security consequences are propagated only ``horizon`` hops up the
tiebreak-dependency graph (horizon 1 = the ISP's own neighbors re-
decide, nobody further; larger horizons = deeper shadow cooperation),
and the resulting traffic delta is evaluated on the otherwise-frozen
routing trees.  The gap to the exact projection is the estimation error
the paper says to fold into theta ("if projected utility is off by a
factor of ±eps, model this with threshold theta ± eps");
:func:`forecast_error_study` measures that eps distribution.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import UtilityModel
from repro.core.engine import RoundData
from repro.core.projection import (
    _collect_old_subtrees,
    _incoming_walk_delta,
    _outgoing_walk_delta,
    _recompute_node,
    project_flip,
)
from repro.core.state import StateDeriver
from repro.routing.cache import RoutingCache


@dataclasses.dataclass(frozen=True)
class LocalForecast:
    """A locally-estimated projection and its exact counterpart."""

    isp: int
    horizon: int
    estimated_utility: float
    exact_utility: float
    current_utility: float

    @property
    def error(self) -> float:
        """Relative estimation error vs the exact projection."""
        if self.exact_utility == 0:
            return 0.0
        return (self.estimated_utility - self.exact_utility) / self.exact_utility

    @property
    def epsilon(self) -> float:
        """The §8.2 theta adjustment: error relative to current utility."""
        if self.current_utility == 0:
            return 0.0
        return (self.estimated_utility - self.exact_utility) / self.current_utility


def _bounded_delta(
    ds,
    node_secure_new: np.ndarray,
    breaks_new: np.ndarray,
    flips: dict[int, bool],
    isp: int,
    model: UtilityModel,
    node_weights: np.ndarray,
    horizon: int,
) -> float:
    """Depth-capped version of the incremental per-destination delta."""
    dr = ds.dr
    tree = ds.tree
    old_choice = tree.choice
    old_secure = tree.secure
    lengths = dr.lengths
    dest = dr.dest

    changed_sec: dict[int, bool] = {}
    changed_choice: dict[int, int] = {}
    pending: dict[int, list[tuple[int, int]]] = {}

    def schedule(node: int, depth: int) -> None:
        pending.setdefault(int(lengths[node]), []).append((node, depth))

    for node in flips:
        if dr.row_of[node] < 0:
            continue
        if node == dest:
            # the destination's own security changed; its dependents see it
            new_sec = bool(node_secure_new[dest])
            if new_sec != bool(old_secure[dest]):
                changed_sec[dest] = new_sec
                for dep in dr.dependents_of(dest):
                    schedule(int(dep), 1)
            continue
        schedule(node, 0)
    if not pending:
        return 0.0

    level = min(pending)
    max_level = max(pending)
    seen: set[int] = set()
    while level <= max_level:
        for u, depth in pending.pop(level, ()):  # noqa: B909
            if u in seen or depth > horizon:
                continue
            seen.add(u)
            new_choice, new_sec = _recompute_node(
                dr, u, old_secure, changed_sec, node_secure_new, breaks_new
            )
            if new_choice != old_choice[u]:
                changed_choice[u] = new_choice
            if new_sec != bool(old_secure[u]):
                changed_sec[u] = new_sec
                for dep in dr.dependents_of(u):
                    dep_level = int(lengths[dep])
                    schedule(int(dep), depth + 1)
                    if dep_level > max_level:
                        max_level = dep_level
        level += 1

    if not changed_choice:
        return 0.0
    affected = _collect_old_subtrees(ds, list(changed_choice))
    if model is UtilityModel.OUTGOING:
        return _outgoing_walk_delta(ds, changed_choice, affected, isp, node_weights)
    return _incoming_walk_delta(ds, changed_choice, affected, isp, node_weights)


def local_project_flip(
    cache: RoutingCache,
    deriver: StateDeriver,
    rd: RoundData,
    isp: int,
    turning_on: bool = True,
    model: UtilityModel = UtilityModel.OUTGOING,
    horizon: int = 1,
) -> float:
    """Locally-estimated projected utility of ``isp`` after a flip.

    ``horizon`` bounds how far (in tiebreak-dependency hops) the ISP
    can see reactions: 1 = immediate neighbors only.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    if turning_on:
        stubs = deriver.newly_secured_stubs(rd.state, isp)
        flips: dict[int, bool] = {isp: True, **{s: True for s in stubs}}
    else:
        stubs = deriver.orphaned_stubs(rd.state, isp)
        flips = {isp: False, **{s: False for s in stubs}}

    node_secure_new = rd.node_secure.copy()
    for node, flag in flips.items():
        node_secure_new[node] = flag
    breaks_new = deriver.breaks_ties(node_secure_new)
    w = cache.graph.weights

    # destinations whose trees can react: currently-secure ones plus the
    # ISP's own flipped stubs (all locally observable via S*BGP messages)
    positions = set(int(p) for p in rd.secure_dest_positions)
    for node in flips:
        pos = cache.position_of(node)
        if pos is not None:
            positions.add(pos)
    if model is UtilityModel.OUTGOING:
        # only destinations reached over a customer edge pay (Eq. 1)
        from repro.routing.policy import RouteClass

        customer = int(RouteClass.CUSTOMER)
        positions = {
            pos for pos in positions if cache.cls_matrix[pos, isp] == customer
        }

    delta = 0.0
    for pos in positions:
        delta += _bounded_delta(
            rd.dest_states[pos], node_secure_new, breaks_new, flips, isp,
            model, w, horizon,
        )
    return float(rd.utilities[isp]) + delta


def forecast_error_study(
    cache: RoutingCache,
    deriver: StateDeriver,
    rd: RoundData,
    isps: list[int],
    model: UtilityModel = UtilityModel.OUTGOING,
    horizon: int = 1,
) -> list[LocalForecast]:
    """Compare local estimates against exact projections for ``isps``."""
    out: list[LocalForecast] = []
    for isp in isps:
        exact = project_flip(
            cache, deriver, rd, isp, turning_on=True, model=model
        ).utility
        estimated = local_project_flip(
            cache, deriver, rd, isp, turning_on=True, model=model, horizon=horizon
        )
        out.append(
            LocalForecast(
                isp=isp,
                horizon=horizon,
                estimated_utility=estimated,
                exact_utility=exact,
                current_utility=float(rd.utilities[isp]),
            )
        )
    return out
