"""Quickstart: run the paper's Section-5 case study end to end.

Builds a synthetic Internet (85% stubs, Tier-1 clique, five content
providers originating 10% of traffic), seeds the five CPs plus the top
five Tier-1s as early adopters, and runs the market-driven deployment
game at theta = 5%.

Usage::

    python examples/quickstart.py [num_ases]
"""

from __future__ import annotations

import sys

from repro import build_environment, run_case_study
from repro.experiments.report import format_series


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    print(f"building a {n}-AS synthetic Internet and warming the routing cache...")
    env = build_environment(n=n, seed=2011, x=0.10)

    print(f"early adopters: {env.case_study_adopters()}")
    print("running the deployment game (theta = 5%, outgoing utility)...")
    report = run_case_study(env, theta=0.05)

    result = report.result
    print()
    print(format_series("newly secure ASes per round", report.fig3_new_ases, "{:d}"))
    print(format_series("adopting ISPs per round    ", report.fig3_new_isps, "{:d}"))
    print()
    print(f"outcome: {result.outcome.value} after {result.num_rounds} rounds")
    print(f"{report.fraction_secure_ases:.1%} of ASes end up secure "
          "(paper: 85% at 36K-AS scale)")
    zs = report.zero_sum
    print(f"ISPs that never deployed end at {zs.mean_final_over_start_insecure:.3f}x "
          "their starting utility — it pays to deploy (Section 5.6)")


if __name__ == "__main__":
    main()
