"""Fork/thread-safety analysis (RPR016).

``ProcessEngine.map`` forks (or spawns) workers and the service
scheduler runs jobs on threads; any function reachable from those entry
points may execute concurrently with the parent and with its siblings.
A write to module-level mutable state inside that set is either a bug
(lost updates, cross-fork divergence) or a deliberate per-process cache
that deserves an explicit waiver naming why it is safe.

The analysis is a conservative static approximation:

* **entry points** — the first argument of any ``.map(...)`` /
  ``.map_reduce(...)`` attribute call that resolves to a project
  function, and any ``target=`` / ``func=`` / ``fn=`` keyword on a
  ``Thread`` / ``Process`` constructor call that resolves to one;
* **call graph** — edges resolve through import aliases to module
  functions, through ``self.``/``cls.`` to methods of the enclosing
  class (and its project base classes), to nested closures by local
  name, and to ``__init__`` for project-class instantiation.  Plain
  ``obj.method()`` calls, where the receiver's type is unknown, resolve
  by method name **only when at most two project classes define that
  method** — wider ambiguity is treated as unresolvable rather than
  flooding the reachable set (documented conservatism boundary, see
  DESIGN.md §17);
* **flagged writes** — inside reachable functions: ``global`` rebinds,
  and subscript/attribute/mutating-method writes through a module-level
  name.  Writes under a ``with``-block whose context expression names a
  lock, and names bound to ``threading.local()`` / ``ContextVar``
  values, are exempt (synchronised or per-thread by construction).
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.analysis.program.index import FunctionInfo, ProgramIndex

#: Attribute names whose calls dispatch work onto pool workers.
_MAP_ATTRS = frozenset({"map", "map_reduce"})

#: Constructor tails that take a ``target=`` worker callable.
_THREAD_CTORS = ("Thread", "Process", "Timer")

#: Method-name fallback: resolve an ``obj.m()`` call by name only when
#: at most this many project classes define ``m``.
_AMBIGUITY_LIMIT = 2


@dataclasses.dataclass(frozen=True)
class ForkSafetyViolation:
    """One RPR016 site (anchored at the write statement)."""

    path: str
    line: int
    col: int
    message: str


class CallGraph:
    """Conservative name-resolution call graph over a :class:`ProgramIndex`."""

    def __init__(self, index: ProgramIndex) -> None:
        self.index = index
        self.functions = index.all_functions()
        #: module -> {name -> qualname} for top-level functions
        self.module_functions: dict[str, dict[str, str]] = {}
        #: method name -> [qualname] across all project classes
        self.methods_by_name: dict[str, list[str]] = {}
        #: (module, class) -> {method -> qualname}, plus base names
        self.class_methods: dict[tuple[str, str], dict[str, str]] = {}
        self.class_bases: dict[tuple[str, str], tuple[str, ...]] = {}
        for fi in index.files.values():
            if fi.module is None:
                continue
            table = self.module_functions.setdefault(fi.module, {})
            for qual, fn in fi.functions.items():
                if fn.owner_class is None and "<locals>" not in qual:
                    table[fn.name] = qual
            for cls_name, (bases, methods) in fi.classes.items():
                key = (fi.module, cls_name)
                self.class_bases[key] = bases
                self.class_methods[key] = {m: f.qualname for m, f in methods.items()}
                for m, f in methods.items():
                    self.methods_by_name.setdefault(m, []).append(f.qualname)

    # -- resolution ----------------------------------------------------

    def _resolve_dotted(self, module: str | None, dotted: str) -> list[str]:
        """Call targets for a resolved dotted path like ``mod.sub.fn``."""
        head, _, tail = dotted.rpartition(".")
        if not head:
            # bare name: same-module function or class
            if module is not None:
                table = self.module_functions.get(module, {})
                if dotted in table:
                    return [table[dotted]]
                init = self.class_methods.get((module, dotted), {}).get("__init__")
                if init is not None:
                    return [init]
            return []
        # module-qualified function: ``repro.x.y.fn``
        if head in self.index.modules:
            table = self.module_functions.get(head, {})
            if tail in table:
                return [table[tail]]
            init = self.class_methods.get((head, tail), {}).get("__init__")
            if init is not None:
                return [init]
            return []
        # ``Class.method`` / imported-class instantiation: the alias map
        # already flattened ``from m import C`` to ``m.C``, so ``C.m``
        # arrives as ``m.C.m``.
        mod, _, cls = head.rpartition(".")
        if mod in self.index.modules:
            target = self.class_methods.get((mod, cls), {}).get(tail)
            if target is not None:
                return [target]
        return []

    def _resolve_instance_entry(self, module: str | None, dotted: str) -> list[str]:
        """``__call__`` of the class a callable-instance bind points at."""
        head, _, tail = dotted.rpartition(".")
        if not head and module is not None:
            target = self.class_methods.get((module, dotted), {}).get("__call__")
            return [target] if target is not None else []
        if head in self.index.modules:
            target = self.class_methods.get((head, tail), {}).get("__call__")
            return [target] if target is not None else []
        return []

    def _resolve_self_call(self, fn: FunctionInfo, attr: str) -> list[str]:
        if fn.module is None or fn.owner_class is None:
            return []
        seen: set[tuple[str, str]] = set()
        queue: deque[tuple[str, str]] = deque([(fn.module, fn.owner_class)])
        while queue:
            key = queue.popleft()
            if key in seen:
                continue
            seen.add(key)
            target = self.class_methods.get(key, {}).get(attr)
            if target is not None:
                return [target]
            for base in self.class_bases.get(key, ()):
                mod, _, cls = base.rpartition(".")
                if mod in self.index.modules:
                    queue.append((mod, cls))
                elif fn.module is not None and not mod:
                    queue.append((fn.module, cls))
        return []

    def callees(self, fn: FunctionInfo) -> set[str]:
        out: set[str] = set()
        for site in fn.calls:
            dotted = site.dotted
            if dotted is None:
                continue
            first, _, rest = dotted.partition(".")
            # nested closure by local name
            local = f"{fn.qualname}.<locals>.{dotted}"
            if local in self.functions:
                out.add(local)
                continue
            if first in ("self", "cls") and rest and "." not in rest:
                out.update(self._resolve_self_call(fn, rest))
                continue
            resolved = self._resolve_dotted(fn.module, dotted)
            if resolved:
                out.update(resolved)
                continue
            # unknown receiver: bounded method-name fallback
            if site.attr is not None:
                candidates = self.methods_by_name.get(site.attr, [])
                if 0 < len(candidates) <= _AMBIGUITY_LIMIT:
                    out.update(candidates)
            # a function passed as an argument to another call escapes
            # into it; treat the argument as invoked
            for passed in (site.first_arg, site.target_kwarg):
                if passed is None:
                    continue
                local = f"{fn.qualname}.<locals>.{passed}"
                if local in self.functions:
                    out.add(local)
                else:
                    out.update(self._resolve_dotted(fn.module, passed))
        return out

    # -- entry points --------------------------------------------------

    def entrypoints(self) -> set[str]:
        roots: set[str] = set()

        def scan(fn_qual: str | None, sites: list, module: str | None, scope: FunctionInfo | None) -> None:
            for site in sites:
                is_map = site.attr in _MAP_ATTRS
                is_thread = site.dotted is not None and site.dotted.rpartition(".")[2] in _THREAD_CTORS
                if not (is_map or is_thread):
                    continue
                candidates = []
                if is_map and site.first_arg:
                    candidates.append(site.first_arg)
                if site.target_kwarg:
                    candidates.append(site.target_kwarg)
                for cand in candidates:
                    if scope is not None:
                        local = f"{scope.qualname}.<locals>.{cand}"
                        if local in self.functions:
                            roots.add(local)
                            continue
                        # ``build = _DestRoutingBuilder(...); engine.map(build, ...)``
                        # — a callable class instance: the worker runs __call__
                        bound = scope.local_binds.get(cand)
                        if bound is not None:
                            instance_entry = self._resolve_instance_entry(module, bound)
                            if instance_entry:
                                roots.update(instance_entry)
                                continue
                    first, _, rest = cand.partition(".")
                    if first in ("self", "cls") and rest and scope is not None:
                        roots.update(self._resolve_self_call(scope, rest.rpartition(".")[2]))
                        continue
                    roots.update(self._resolve_dotted(module, cand))

        for fi in self.index.files.values():
            scan(None, fi.toplevel_calls, fi.module, None)
            for fn in fi.functions.values():
                scan(fn.qualname, fn.calls, fn.module, fn)
        return roots

    def reachable(self, roots: set[str]) -> set[str]:
        seen: set[str] = set()
        queue: deque[str] = deque(sorted(roots))
        while queue:
            qual = queue.popleft()
            if qual in seen or qual not in self.functions:
                continue
            seen.add(qual)
            for callee in self.callees(self.functions[qual]):
                if callee not in seen:
                    queue.append(callee)
        return seen


def check_fork_safety(index: ProgramIndex) -> tuple[list[ForkSafetyViolation], int, int]:
    """RPR016 findings plus (entrypoint count, reachable-function count)."""
    graph = CallGraph(index)
    roots = graph.entrypoints()
    reachable = graph.reachable(roots)

    out: list[ForkSafetyViolation] = []
    for qual in sorted(reachable):
        fn = graph.functions[qual]
        if fn.module is None:
            continue
        fi = index.modules.get(fn.module)
        if fi is None:
            continue
        module_bindings = set(fi.symbols)
        for write in fn.writes:
            if write.locked:
                continue
            if write.name in fi.threadlocal_globals:
                continue
            is_global_rebind = write.name in fn.globals_declared
            # ``global X; X = ...`` creates/rebinds module state even when
            # X has no module-level initialiser; every other write shape
            # must go through a name actually bound at module level.
            if not is_global_rebind and write.name not in module_bindings:
                continue
            out.append(
                ForkSafetyViolation(
                    path=fn.path,
                    line=write.line,
                    col=write.col,
                    message=(
                        f"module-level state `{write.name}` written "
                        f"({write.description}) inside `{fn.name}`, which is reachable "
                        "from ProcessEngine.map / worker-thread entry points; guard it "
                        "with a lock, make it thread-local, or waive with the safety "
                        "argument"
                    ),
                )
            )
    return out, len(roots), len(reachable)
