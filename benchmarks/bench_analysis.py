"""Analyzer benchmark: the whole-program pass must stay interactive.

``make lint`` and the blocking CI lint job run ``sbgp-lint --program``
over the full tree on every change, so the pass has a latency budget,
not just a correctness contract: it reads, parses, and walks every
file once, builds the program index (import graph, call graph, symbol
table), and runs RPR015/016/017.  The wall-clock pin is deliberately
loose (shared CI runners) but low enough that a quadratic regression
in the index build or reachability walk fails loudly instead of
quietly taxing every future lint run.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[1]
LINT_ROOTS = [REPO / "src", REPO / "scripts", REPO / "benchmarks"]

#: Wall-clock budget for one full --program run (seconds).  Local runs
#: measure ~2s; 8s absorbs cold caches and noisy shared runners while
#: still catching a complexity-class regression.
PROGRAM_PASS_BUDGET_S = 8.0


def _full_pass():
    return lint_paths(LINT_ROOTS, program=True)


def _program_only_pass():
    return lint_paths(LINT_ROOTS, rules=[], program=True)


def test_bench_program_pass_full(benchmark):
    """Per-file rules + program pass, exactly what `make lint` runs."""
    start = time.perf_counter()
    result = _full_pass()
    elapsed = time.perf_counter() - start
    assert result.findings == ()
    assert result.program is not None and result.program.modules > 50
    assert elapsed < PROGRAM_PASS_BUDGET_S, (
        f"program pass took {elapsed:.2f}s (budget {PROGRAM_PASS_BUDGET_S}s)"
    )
    benchmark(_full_pass)


def test_bench_program_pass_only(benchmark):
    """Program-pass marginal cost: same parse, file rules disabled."""
    result = _program_only_pass()
    assert result.findings == ()
    benchmark(_program_only_pass)
