"""Path reconstruction helpers over resolved routing trees."""

from __future__ import annotations

from repro.routing.fast_tree import RoutingTree
from repro.topology.graph import ASGraph


def as_path(graph: ASGraph, tree: RoutingTree, source_asn: int) -> list[int]:
    """AS-number path from ``source_asn`` to the tree's destination.

    Returns an empty list when the source has no route.
    """
    idx_path = tree.path_from(graph.index(source_asn))
    return [graph.asn(i) for i in idx_path]


def path_is_secure(tree: RoutingTree, source: int) -> bool:
    """True iff ``source``'s full chosen path is secure (dense index)."""
    return bool(tree.secure[source])


def transit_nodes(tree: RoutingTree, source: int, dest: int) -> list[int]:
    """Intermediate nodes (dense indices) strictly between source and dest."""
    path = tree.path_from(source)
    return path[1:-1] if len(path) >= 2 else []
