"""Advisory append locking on RunJournal (satellite of the job daemon).

``flock`` is per open-file-description, so a second descriptor in the
*same* process contends exactly like another process would — which
keeps these tests single-process and fast.
"""

from __future__ import annotations

import fcntl
import threading
import time

import pytest

from repro.runtime.errors import JournalError, JournalLockedError
from repro.runtime.journal import RunJournal


@pytest.fixture()
def journal(tmp_path):
    j = RunJournal(tmp_path / "run.jsonl", lock_timeout=0.2)
    j.ensure_header("test", {})
    return j


class TestContention:
    def test_held_lock_times_out_with_typed_error(self, journal):
        with open(journal.path, "a") as holder:
            fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
            with pytest.raises(JournalLockedError) as excinfo:
                journal.append({"type": "cell", "i": 1})
        assert str(journal.path) in str(excinfo.value)
        assert isinstance(excinfo.value, JournalError)  # RPR008 hierarchy

    def test_released_lock_unblocks_appends(self, journal):
        with open(journal.path, "a") as holder:
            fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
            journal.append({"type": "cell", "i": 1})
        assert [r["i"] for r in journal.iter_records()] == [1]

    def test_append_waits_out_short_contention(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl", lock_timeout=5.0)
        journal.ensure_header("test", {})
        holder = open(journal.path, "a")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)

        def release_soon():
            time.sleep(0.15)
            holder.close()  # closing the fd drops the flock

        releaser = threading.Thread(target=release_soon)
        releaser.start()
        try:
            journal.append({"type": "cell", "i": 1})  # waits, then wins
        finally:
            releaser.join(timeout=10)
        assert [r["i"] for r in journal.iter_records()] == [1]

    def test_failed_append_leaves_no_torn_line(self, journal):
        journal.append({"type": "cell", "i": 1})
        before = journal.path.read_bytes()
        with open(journal.path, "a") as holder:
            fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
            with pytest.raises(JournalLockedError):
                journal.append({"type": "cell", "i": 2})
        assert journal.path.read_bytes() == before
        journal.append({"type": "cell", "i": 2})  # and the journal still works
        assert [r["i"] for r in journal.iter_records()] == [1, 2]


class TestConcurrentWriters:
    def test_parallel_appends_never_interleave(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl", lock_timeout=30.0)
        journal.ensure_header("test", {})
        errors: list[BaseException] = []

        def writer(worker: int) -> None:
            try:
                for i in range(25):
                    journal.append({"type": "cell", "worker": worker, "i": i})
            except BaseException as exc:  # surfaced below, not swallowed
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        records = list(journal.iter_records())
        assert len(records) == 4 * 25
        for worker in range(4):
            mine = [r["i"] for r in records if r["worker"] == worker]
            assert mine == list(range(25))  # per-writer order preserved
