"""Named experiment registry: every paper artefact, runnable by id.

Maps experiment ids ("fig3", "table1", "sec67", ...) to self-contained
runners that take an :class:`ExperimentEnv` and return printable text.
The CLI exposes this as ``sbgp-sim experiment --id <id>``; benchmarks
remain the canonical regeneration path (they also assert shapes).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation
from repro.core.diamonds import diamond_census
from repro.experiments.attack_matrix import run_attack_matrix
from repro.experiments.case_study import run_case_study
from repro.experiments.report import format_series, format_table
from repro.experiments.setup import ExperimentEnv
from repro.experiments.sweeps import cells_to_rows, run_sweep
from repro.experiments.turnoff import per_destination_turn_off_census
from repro.routing.cache import RoutingCache
from repro.routing.policy import available_policies, get_policy
from repro.routing.reference import ConvergenceError
from repro.routing.tiebreak import (
    collect_tiebreak_stats,
    security_sensitive_decision_fraction,
)
from repro.security.scenarios import available_scenarios, available_strategies
from repro.topology.stats import summarize


@dataclasses.dataclass(frozen=True)
class Experiment:
    """A runnable, named reproduction target."""

    id: str
    title: str
    paper_ref: str
    run: Callable[[ExperimentEnv], str]


def _table1(env: ExperimentEnv) -> str:
    adopters = env.case_study_adopters()
    census = diamond_census(env.graph, adopters, env.cache)
    rows = [[a, census.contested_stubs[a], census.competitor_pairs[a]]
            for a in adopters]
    return format_table(
        ["early adopter", "contested stubs", "competitor pairs"], rows,
        title="Table 1: diamonds per early adopter",
    )


def _fig3(env: ExperimentEnv) -> str:
    report = run_case_study(env, theta=0.05)
    lines = [
        "Fig 3: deployment per round (theta=5%)",
        format_series("  newly secure ASes", report.fig3_new_ases, "{:d}"),
        format_series("  adopting ISPs    ", report.fig3_new_isps, "{:d}"),
        f"  final: {report.fraction_secure_ases:.1%} of ASes secure",
    ]
    return "\n".join(lines)


def _fig8(env: ExperimentEnv) -> str:
    cells = run_sweep(env, thetas=(0.0, 0.05, 0.10, 0.30, 0.50))
    return format_table(
        ["adopters", "theta", "frac ASes", "frac ISPs", "frac paths",
         "f^2", "rounds", "outcome"],
        cells_to_rows(cells),
        title="Fig 8/9: adoption and secure paths vs theta",
    )


def _fig10(env: ExperimentEnv) -> str:
    stats = collect_tiebreak_stats(env.graph, dest_routing=env.cache.dest_routing)
    frac = security_sensitive_decision_fraction(env.graph, stats)
    return (
        f"Fig 10 / sec 6.6-6.7: mean tiebreak {stats.mean:.2f} "
        f"(ISPs {stats.mean_isp:.2f}, stubs {stats.mean_stub:.2f}); "
        f"multi-path {stats.multi_path_fraction:.1%}; "
        f"security-sensitive decisions {frac:.2%}"
    )


def _sec73(env: ExperimentEnv) -> str:
    config = SimulationConfig(theta=0.05, utility_model=UtilityModel.OUTGOING)
    sim = DeploymentSimulation(env.graph, env.case_study_adopters(), config, env.cache)
    state = sim.run().final_state
    census = per_destination_turn_off_census(env, state, stub_breaks_ties=True)
    return (
        f"Sec 7.3: {census.num_with_incentive}/{census.num_secure_isps} secure "
        f"ISPs ({census.fraction:.1%}) have a per-destination turn-off incentive"
    )


def _sec83(env: ExperimentEnv) -> str:
    """Policy ablation: the case study re-run under every registered
    ranking (rounds capped — this is a comparison, not a full sweep).

    Each policy gets a *fresh* cache: a :class:`RoutingCache` is bound
    to one policy for its lifetime, so structures can never be shared
    across rankings.  ``security_1st`` may fail to converge on some
    topologies (Lychev et al.); that outcome is reported, not raised.
    """
    adopters = env.case_study_adopters()
    dests = list(env.cache.destinations)
    rows = []
    for name in available_policies():
        pol = get_policy(name)
        cache = RoutingCache(env.graph, destinations=dests, policy=name)
        config = SimulationConfig(
            theta=0.05, max_rounds=12, policy=name, record_utilities=False
        )
        sim = DeploymentSimulation(env.graph, adopters, config, cache)
        try:
            result = sim.run()
        except ConvergenceError:
            rows.append([name, pol.ranking_str(), "-", "-", "no-convergence"])
            continue
        frac = float(result.final_node_secure.sum()) / env.graph.n
        rows.append([
            name, pol.ranking_str(), f"{frac:.3f}",
            result.num_rounds, result.outcome.value,
        ])
    return format_table(
        ["policy", "ranking", "frac secure", "rounds", "outcome"], rows,
        title="Sec 8.3 / Lychev et al.: adoption by routing policy (12-round cap)",
    )


def _attack_matrix(env: ExperimentEnv) -> str:
    """The full attack × policy × deployment-strategy grid in one run.

    Every registered scenario × every registered routing policy ×
    every registered deployment strategy, at three deployment levels,
    on one shared seeded pair sample.  The printed table pivots the
    *mid* deployment level (at full deployment the static orderings all
    coincide): one row per (scenario, strategy), one column of mean
    fraction fooled per policy; ``-`` marks policies that failed to
    converge under that scenario (reported, not raised).
    """
    cells = run_attack_matrix(env, levels=(0.0, 0.5, 1.0), samples=6)
    by_key = {c.key: c for c in cells}
    grid = sorted({c.level for c in cells})
    top = grid[len(grid) // 2]
    policies = available_policies()
    rows = []
    for scenario in available_scenarios():
        for strategy in available_strategies():
            row: list[object] = [scenario, strategy]
            for policy in policies:
                cell = by_key[(scenario, policy, strategy, top)]
                row.append(
                    f"{cell.mean_fraction_fooled:.3f}"
                    if cell.outcome == "ok" else "-"
                )
            rows.append(row)
    return format_table(
        ["scenario", "strategy", *policies], rows,
        title=(
            f"Attack matrix: mean fraction fooled at deployment level "
            f"{top:g} ({len(cells)} cells total)"
        ),
    )


def _table2(env: ExperimentEnv) -> str:
    s = summarize(env.graph)
    return format_table(
        ["ASes", "stubs", "ISPs", "CPs", "cust-prov", "peerings"],
        [[s.num_ases, s.num_stubs, s.num_isps, s.num_cps,
          s.num_customer_provider_edges, s.num_peering_edges]],
        title="Table 2: graph composition",
    )


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in (
        Experiment("table1", "Diamond census", "Table 1 / §5.1", _table1),
        Experiment("fig3", "Adoption per round", "Fig 3 / §5.2", _fig3),
        Experiment("fig8", "Theta sweep", "Fig 8-9 / §6.3-6.5", _fig8),
        Experiment("fig10", "Tiebreak sets", "Fig 10 / §6.6-6.7", _fig10),
        Experiment("sec73", "Turn-off census", "§7.3", _sec73),
        Experiment("sec83", "Routing-policy ablation", "§8.3 / Lychev et al.", _sec83),
        Experiment(
            "attack-matrix",
            "Attack × policy × deployment matrix",
            "§2.2.1 / Lychev et al. / Barrett et al.",
            _attack_matrix,
        ),
        Experiment("table2", "Graph composition", "Table 2 / App D", _table2),
    )
}


def run_experiment(experiment_id: str, env: ExperimentEnv) -> str:
    """Run a registered experiment by id (raises KeyError with a hint)."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None
    return experiment.run(env)


def list_experiments() -> list[Experiment]:
    """All registered experiments, id-sorted."""
    return [EXPERIMENTS[k] for k in sorted(EXPERIMENTS)]
