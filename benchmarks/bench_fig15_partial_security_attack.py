"""Figure 15 (Appendix B): the partially-secure-path attack.

Paper: if ASes preferred partially-secure paths over insecure ones, an
attacker could dress a false path with one genuine signature and beat a
true route — an attack that does not exist without S*BGP.  Shape: the
attacker wins iff the victim uses the rejected ranking.
"""

from __future__ import annotations

from repro.gadgets.attack_network import build_attack_network
from repro.protocol.attacks import evaluate_attack


def test_fig15_partial_security_attack(benchmark, capsys):
    def run_both():
        network = build_attack_network()
        outcomes = {}
        for prefers in (False, True):
            net = network.build_protocol_network(p_prefers_partial=prefers)
            outcomes[prefers] = evaluate_attack(
                net, victim=network.p, attacker=network.m, prefix=network.prefix
            )
        return network, outcomes

    network, outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Fig 15: partially-secure path attack (victim p, attacker m)")
        for prefers, out in outcomes.items():
            ranking = "partial-preferred" if prefers else "paper's rule"
            verdict = "ATTACKER WINS" if out.attacker_on_path else "resists"
            print(f"  {ranking:18s}: path {out.chosen_path} -> {verdict}")
    assert not outcomes[False].attacker_on_path
    assert outcomes[True].attacker_on_path
