"""Tests for the DIAMOND census (Table 1)."""

from __future__ import annotations

import pytest

from repro.core.diamonds import diamond_census
from repro.gadgets.diamond import build_diamond
from repro.topology.graph import ASGraph


class TestGadgetCensus:
    def test_single_diamond_detected(self):
        net = build_diamond()
        census = diamond_census(net.graph, [net.source])
        assert census.contested_stubs[net.source] == 1
        assert census.competitor_pairs[net.source] == 1
        assert census.total_contested == 1

    def test_feeders_not_contested(self):
        net = build_diamond()
        census = diamond_census(net.graph, [net.source])
        # feeders are single-homed: only the shared stub is contested
        assert census.total_pairs == 1

    def test_three_way_competition_counts_pairs(self):
        g = ASGraph()
        for asn in (1, 2, 3, 4, 9):
            g.add_as(asn)
        for mid in (2, 3, 4):
            g.add_customer_provider(provider=1, customer=mid)
            g.add_customer_provider(provider=mid, customer=9)
        census = diamond_census(g, [1])
        assert census.contested_stubs[1] == 1
        assert census.competitor_pairs[1] == 3  # C(3, 2)


class TestGraphCensus:
    def test_tier1s_see_many_diamonds(self, small_graph, small_cache):
        from repro.core.adopters import top_degree_isps

        adopters = top_degree_isps(small_graph, 3)
        census = diamond_census(small_graph, adopters, small_cache)
        # the synthetic graph has multihomed stubs, so the structure
        # the paper's Table 1 counts must be plentiful
        assert census.total_contested > 0
        for asn in adopters:
            assert census.contested_stubs[asn] >= 0

    def test_destination_restriction(self, small_graph, small_cache):
        from repro.core.adopters import top_degree_isps

        adopters = top_degree_isps(small_graph, 2)
        stubs = small_graph.stub_indices[:10]
        census = diamond_census(
            small_graph, adopters, small_cache, destinations=stubs
        )
        full = diamond_census(small_graph, adopters, small_cache)
        assert census.total_contested <= full.total_contested

    def test_adopter_as_destination_skipped(self, small_graph, small_cache):
        """An adopter never counts itself as a contested destination."""
        stub_asn = small_graph.asn(small_graph.stub_indices[0])
        census = diamond_census(small_graph, [stub_asn], small_cache)
        assert stub_asn in census.contested_stubs
