# unmapped package: manifest-totality violation anchors here -- expect: RPR015
