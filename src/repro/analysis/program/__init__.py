"""Whole-program analysis pass (``sbgp-lint --program``).

Complements the per-file rules with three project-wide invariants that
no single file can witness, all riding ONE shared :class:`ProgramIndex`
built from the per-file linter's already-parsed ASTs:

* **RPR015** — import-graph layering contract: eager intra-project
  imports must respect the layer order declared in
  ``[tool.repro.layers]`` (pyproject.toml), and the eager module graph
  must stay acyclic (:mod:`repro.analysis.program.layers`);
* **RPR016** — fork/thread-safety: no lock-free writes to module-level
  mutable state in functions reachable from ``ProcessEngine.map``
  targets or worker threads (:mod:`repro.analysis.program.forksafety`);
* **RPR017** — dead public API: every public top-level symbol must be
  referenced somewhere in src/tests/scripts/benchmarks/examples
  (:mod:`repro.analysis.program.api`).

Findings plug into the ordinary waiver machinery: a
``# repro-lint: disable=RPR015`` on the anchored line suppresses the
finding and is tracked, so stale program-level waivers still surface as
RPR010 once the violation is gone.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import FileContext
from repro.analysis.findings import Finding
from repro.analysis.program.api import check_dead_api, collect_surface
from repro.analysis.program.forksafety import check_fork_safety
from repro.analysis.program.index import ProgramIndex
from repro.analysis.program.layers import (
    LayerManifest,
    check_layers,
    find_manifest,
    render_dot,
)

__all__ = [
    "PROGRAM_RULES",
    "ProgramRule",
    "ProgramSummary",
    "ProgramIndex",
    "LayerManifest",
    "run_program_pass",
    "collect_surface",
    "find_manifest",
    "render_dot",
    "program_codes",
]


@dataclasses.dataclass(frozen=True)
class ProgramRule:
    """Catalogue entry for one program-level rule (mirrors ``Rule``)."""

    code: str
    name: str
    rationale: str


PROGRAM_RULES: tuple[ProgramRule, ...] = (
    ProgramRule(
        code="RPR015",
        name="layering-contract",
        rationale=(
            "The architecture is a layered DAG declared in [tool.repro.layers]; "
            "an eager upward import or module cycle silently erodes the layering "
            "that keeps kernels below policy below service, and breaks in "
            "import-order-dependent ways only at a distance."
        ),
    ),
    ProgramRule(
        code="RPR016",
        name="fork-thread-safety",
        rationale=(
            "Functions reachable from ProcessEngine.map targets and scheduler "
            "worker threads run concurrently across forks and threads; a "
            "lock-free write to module-level mutable state there is a lost "
            "update or cross-fork divergence waiting for load."
        ),
    ),
    ProgramRule(
        code="RPR017",
        name="dead-public-api",
        rationale=(
            "Public API that nothing references is untested, unmaintained "
            "surface that still constrains every refactor; the companion "
            "scripts/api_surface.py ratchet makes *intentional* surface change "
            "an explicit, reviewed diff."
        ),
    ),
)


def program_codes() -> frozenset[str]:
    return frozenset(rule.code for rule in PROGRAM_RULES)


@dataclasses.dataclass(frozen=True)
class ProgramSummary:
    """Machine-readable account of what the program pass saw."""

    modules: int
    packages: int
    edges_eager: int
    edges_lazy: int
    edges_typing: int
    entrypoints: int
    reachable_functions: int
    public_symbols: int
    manifest_source: str | None

    def to_json(self) -> dict[str, object]:
        return {
            "modules": self.modules,
            "packages": self.packages,
            "edges": {
                "eager": self.edges_eager,
                "lazy": self.edges_lazy,
                "typing": self.edges_typing,
            },
            "entrypoints": self.entrypoints,
            "reachable_functions": self.reachable_functions,
            "public_symbols": self.public_symbols,
            "manifest": self.manifest_source,
        }


def _parse_reference_files(roots: Sequence[str | Path]) -> list[tuple[str, str | None, ast.AST]]:
    from repro.analysis.engine import iter_python_files, module_for_path

    out: list[tuple[str, str | None, ast.AST]] = []
    for path in iter_python_files(roots):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except (SyntaxError, ValueError):
            continue  # the reference universe is best-effort
        out.append((str(path), module_for_path(path), tree))
    return out


def default_reference_roots(paths: Sequence[str | Path]) -> list[Path]:
    """tests/ and examples/ siblings of a linted ``src`` root, if present.

    The acceptance command is ``sbgp-lint --program src scripts
    benchmarks`` — tests and examples are not *linted*, but a public
    symbol they exercise is not dead, so they join the use universe
    automatically.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw).resolve()
        if path.name == "src" and path.is_dir():
            for sibling in ("tests", "examples"):
                cand = path.parent / sibling
                if cand.is_dir():
                    out.append(cand)
    return out


def run_program_pass(
    contexts: Iterable[tuple[FileContext, ast.AST]],
    paths: Sequence[str | Path],
    selected: frozenset[str] | None = None,
    reference_roots: Sequence[str | Path] | None = None,
    manifest: LayerManifest | None = None,
) -> tuple[list[Finding], ProgramSummary, ProgramIndex]:
    """Run RPR015/016/017 over already-parsed files.

    ``contexts`` pairs each linted file's :class:`FileContext` (carrying
    its suppression table) with its parsed tree; findings anchored on a
    waived line are suppressed and the waiver marked used, exactly like
    per-file rules.
    """
    ctx_by_path = {ctx.path: ctx for ctx, _tree in contexts}
    parsed = [(ctx.path, ctx.module, tree) for ctx, tree in contexts]

    roots = list(reference_roots or []) + default_reference_roots(paths)
    index = ProgramIndex.build(parsed, _parse_reference_files(roots))

    if manifest is None:
        manifest = find_manifest(paths)

    active = program_codes() if selected is None else (program_codes() & selected)
    rules_by_code = {rule.code: rule for rule in PROGRAM_RULES}
    findings: list[Finding] = []

    def report(code: str, path: str, line: int, col: int, message: str) -> None:
        ctx = ctx_by_path.get(path)
        if ctx is not None and ctx.suppressions.is_suppressed(line, code):
            return
        findings.append(
            Finding(
                path=path,
                line=line,
                col=col,
                code=code,
                message=message,
                rule=rules_by_code[code].name,
            )
        )

    if "RPR015" in active and manifest is not None:
        for violation in check_layers(index, manifest):
            report("RPR015", violation.path, violation.line, violation.col, violation.message)

    entry_count = reachable_count = 0
    if "RPR016" in active:
        fork_violations, entry_count, reachable_count = check_fork_safety(index)
        for violation in fork_violations:
            report("RPR016", violation.path, violation.line, violation.col, violation.message)

    symbol_count = 0
    if "RPR017" in active:
        dead, symbol_count = check_dead_api(index)
        for violation in dead:
            report("RPR017", violation.path, violation.line, violation.col, violation.message)

    packages = {manifest.package_of(m) or m.split(".")[0] for m in index.modules} if manifest else {
        m.split(".")[0] for m in index.modules
    }
    counts = index.edge_counts()
    summary = ProgramSummary(
        modules=len(index.modules),
        packages=len(packages),
        edges_eager=counts["eager"],
        edges_lazy=counts["lazy"],
        edges_typing=counts["typing"],
        entrypoints=entry_count,
        reachable_functions=reachable_count,
        public_symbols=symbol_count,
        manifest_source=manifest.source if manifest else None,
    )
    return findings, summary, index
