"""Property test for Theorem 6.2 / H.1.

In the outgoing utility model, a secure node never has an incentive to
turn S*BGP off: for random graphs, random states, and every secure ISP,
the utility after turning off must not exceed the current utility.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import UtilityModel
from repro.core.engine import compute_round_data
from repro.core.projection import project_flip
from repro.core.state import DeploymentState, StateDeriver
from repro.routing.cache import RoutingCache
from repro.topology.relationships import ASRole

from tests.strategies import as_graphs


@given(as_graphs(min_nodes=6, max_nodes=16), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_no_turn_off_incentive_outgoing(graph, rnd):
    isps = [i for i in range(graph.n) if graph.roles[i] == int(ASRole.ISP)]
    if not isps:
        return
    deployers = frozenset(rnd.sample(isps, rnd.randint(1, len(isps))))
    state = DeploymentState(deployers, frozenset())
    cache = RoutingCache(graph)
    deriver = StateDeriver(graph, compiled=cache.compiled)
    rd = compute_round_data(cache, deriver, state, UtilityModel.OUTGOING)
    for isp in deployers:
        proj = project_flip(
            cache, deriver, rd, isp, turning_on=False, model=UtilityModel.OUTGOING
        )
        assert proj.utility <= float(rd.utilities[isp]) + 1e-9


@given(as_graphs(min_nodes=6, max_nodes=16), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_turning_on_never_hurts_outgoing(graph, rnd):
    """Theorem H.1, other direction: deploying cannot lose traffic."""
    isps = [i for i in range(graph.n) if graph.roles[i] == int(ASRole.ISP)]
    if not isps:
        return
    secure = frozenset(rnd.sample(isps, rnd.randint(0, len(isps) - 1)))
    state = DeploymentState(secure, frozenset())
    cache = RoutingCache(graph)
    deriver = StateDeriver(graph, compiled=cache.compiled)
    rd = compute_round_data(cache, deriver, state, UtilityModel.OUTGOING)
    for isp in isps:
        if isp in secure:
            continue
        proj = project_flip(
            cache, deriver, rd, isp, turning_on=True, model=UtilityModel.OUTGOING
        )
        assert proj.utility >= float(rd.utilities[isp]) - 1e-9
