# module: repro.service.daemon
"""Golden fixture for RPR012 (kernel called outside the executor)."""

from repro.experiments import build_environment, run_sweep
from repro.experiments.sweeps import run_sweep as sweep_alias


def handler_runs_sweep_inline(env):
    return run_sweep(env)  # expect: RPR012


def handler_builds_environment(n):
    return build_environment(n=n)  # expect: RPR012


def handler_uses_alias(env):
    return sweep_alias(env)  # expect: RPR012


def waived_inline_kernel(env):
    return run_sweep(env)  # repro-lint: disable=RPR012 -- fixture waiver


def clean_marshals_to_scheduler(scheduler, spec):
    # the sanctioned shape: hand the spec to the scheduler, never run it
    return scheduler.submit(spec)


def clean_unrelated_call(store, job_id):
    return store.get(job_id)
