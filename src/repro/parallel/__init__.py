"""Map-reduce substrate (laptop-scale stand-in for DryadLINQ, App. C.3)."""

from repro.parallel.engine import (
    ItemFailure,
    MapReduceEngine,
    MapStats,
    ProcessEngine,
    SerialEngine,
    choose_start_method,
    default_engine,
    parallel_warm_cache,
)
from repro.parallel.partition import chunk, partition

__all__ = [
    "ItemFailure",
    "MapReduceEngine",
    "MapStats",
    "ProcessEngine",
    "SerialEngine",
    "choose_start_method",
    "chunk",
    "default_engine",
    "parallel_warm_cache",
    "partition",
]
