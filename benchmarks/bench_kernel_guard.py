"""Kernel ablation: runtime-guard overhead on the hot paths.

The guard's checks ride every round and projection (deadline probes at
round boundaries, a batch-size plan per kernel call).  These pairs pin
the cost of having it installed: the ``guard_off`` variants run under
the default :data:`~repro.runtime.guard.NULL_GUARD`, the ``guard_on``
variants under a permissive guard (huge budget, day-long deadline) so
every check executes but no rung is ever taken.  The paired names land
in the same ``BENCH_*_guard.json`` snapshot, so ``bench_compare.py``
can diff them; the on/off gap is the overhead, pinned below 2%.
"""

from __future__ import annotations

import pytest

from repro.core.config import ProjectionEngine, UtilityModel
from repro.core.engine import compute_round_data
from repro.core.projection import project_flip
from repro.core.state import DeploymentState, StateDeriver
from repro.runtime.guard import (
    NULL_GUARD,
    Deadline,
    MemoryBudget,
    RuntimeGuard,
    use_guard,
)


@pytest.fixture(scope="module")
def game_state(env):
    deriver = StateDeriver(env.graph, compiled=env.cache.compiled)
    adopters = frozenset(env.graph.index(a) for a in env.case_study_adopters())
    state = DeploymentState.initial(adopters)
    rd = compute_round_data(env.cache, deriver, state, UtilityModel.OUTGOING)
    isp = next(i for i in env.graph.isp_indices if i not in adopters)
    return deriver, state, rd, isp


@pytest.fixture()
def permissive_guard():
    """A guard whose checks all run but never trigger a rung."""
    guard = RuntimeGuard(
        deadline=Deadline(86_400.0), memory=MemoryBudget("1TiB")
    )
    with use_guard(guard):
        yield guard
    assert guard.ladder.rungs_taken() == {}  # permissive means permissive


def test_kernel_round_guard_off(benchmark, env, game_state):
    deriver, state, _rd, _isp = game_state
    rd = benchmark(
        lambda: compute_round_data(env.cache, deriver, state, UtilityModel.OUTGOING)
    )
    assert rd.utilities.sum() > 0


def test_kernel_round_guard_on(benchmark, env, game_state, permissive_guard):
    deriver, state, _rd, _isp = game_state
    rd = benchmark(
        lambda: compute_round_data(env.cache, deriver, state, UtilityModel.OUTGOING)
    )
    assert rd.utilities.sum() > 0


def test_kernel_projection_guard_off(benchmark, env, game_state):
    deriver, _state, rd, isp = game_state
    proj = benchmark(
        lambda: project_flip(
            env.cache, deriver, rd, isp, True, UtilityModel.OUTGOING,
            ProjectionEngine.INCREMENTAL,
        )
    )
    assert proj.utility >= 0


def test_kernel_projection_guard_on(benchmark, env, game_state, permissive_guard):
    deriver, _state, rd, isp = game_state
    proj = benchmark(
        lambda: project_flip(
            env.cache, deriver, rd, isp, True, UtilityModel.OUTGOING,
            ProjectionEngine.INCREMENTAL,
        )
    )
    assert proj.utility >= 0


def test_kernel_guard_results_identical(env, game_state, permissive_guard):
    """The guard must never change what the kernels compute."""
    deriver, state, _rd, _isp = game_state
    guarded = compute_round_data(env.cache, deriver, state, UtilityModel.OUTGOING)
    with use_guard(NULL_GUARD):  # shadow the permissive guard
        bare = compute_round_data(env.cache, deriver, state, UtilityModel.OUTGOING)
    assert (guarded.utilities == bare.utilities).all()
