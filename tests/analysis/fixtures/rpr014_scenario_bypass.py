"""Golden fixture for RPR014 (scenario-registry bypass): positive + waived + clean."""

import repro.security.scenarios as scenario_mod
from repro.security.scenarios import (
    AttackScenario,
    available_scenarios,
    get_scenario,
    get_strategy,
)


def bad_construct() -> object:
    return AttackScenario(name="custom", description="ad hoc")  # expect: RPR014


def bad_qualified_construct() -> object:
    return scenario_mod.AttackScenario(name="custom", description="x")  # expect: RPR014


def bad_registry_peek() -> dict:
    return scenario_mod._SCENARIOS  # expect: RPR014


def bad_alias_peek() -> dict:
    return scenario_mod._SCENARIO_ALIASES  # expect: RPR014


def bad_strategy_peek() -> dict:
    return scenario_mod._STRATEGIES  # expect: RPR014


def waived_construct() -> object:
    return AttackScenario(name="x", description="y")  # repro-lint: disable=RPR014 -- fixture waiver


def clean_lookup() -> object:
    return get_scenario("origin_hijack")


def clean_strategy_lookup() -> object:
    return get_strategy("top_isp_first")


def clean_enumerate() -> list:
    return available_scenarios()
