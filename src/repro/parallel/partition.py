"""Destination partitioning for the map step (Appendix C.3).

The paper parallelised its simulations by mapping per-destination
routing-tree computations across a 200-node DryadLINQ cluster and
reducing the subtrees into per-ISP utilities.  These helpers split a
destination list into balanced partitions for the same decomposition.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def partition(items: Sequence[T], num_partitions: int) -> list[list[T]]:
    """Split ``items`` into ``num_partitions`` round-robin partitions.

    Round-robin (rather than contiguous chunks) balances load when work
    per item correlates with position, e.g. destinations sorted by
    degree.  Empty partitions are dropped.
    """
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    buckets: list[list[T]] = [[] for _ in range(num_partitions)]
    for k, item in enumerate(items):
        buckets[k % num_partitions].append(item)
    return [b for b in buckets if b]


def chunk(items: Sequence[T], chunk_size: int) -> list[list[T]]:
    """Split ``items`` into contiguous chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [list(items[i:i + chunk_size]) for i in range(0, len(items), chunk_size)]
