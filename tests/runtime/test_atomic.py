"""Atomic writes must be all-or-nothing; loaders must detect damage."""

from __future__ import annotations

import json
import os

import pytest

from repro.runtime.atomic import (
    atomic_write_json,
    atomic_write_text,
    checksum_payload,
    load_checked_json,
)
from repro.runtime.errors import CorruptFileError, SchemaError


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "a much longer first version")
        atomic_write_text(path, "short")
        assert path.read_text() == "short"

    def test_no_temp_droppings(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_leaves_original(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"format": "f/1", "v": 1})

        class Unserialisable:
            pass

        with pytest.raises(TypeError):
            atomic_write_json(path, {"v": Unserialisable()}, checksum=False)
        assert load_checked_json(path)["v"] == 1
        assert os.listdir(tmp_path) == ["out.json"]


class TestCheckedJson:
    def test_checksum_embedded_and_stripped(self, tmp_path):
        path = tmp_path / "r.json"
        atomic_write_json(path, {"format": "f/1", "v": [1, 2]})
        raw = json.loads(path.read_text())
        assert raw["checksum"].startswith("sha256:")
        assert load_checked_json(path) == {"format": "f/1", "v": [1, 2]}

    def test_truncated_file_is_typed_error(self, tmp_path):
        path = tmp_path / "r.json"
        atomic_write_json(path, {"format": "f/1", "v": list(range(100))})
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CorruptFileError, match="truncated or corrupt"):
            load_checked_json(path)

    def test_bitflip_fails_checksum(self, tmp_path):
        path = tmp_path / "r.json"
        atomic_write_json(path, {"format": "f/1", "v": 41})
        path.write_text(path.read_text().replace('"v": 41', '"v": 42'))
        with pytest.raises(CorruptFileError, match="checksum mismatch"):
            load_checked_json(path)

    def test_wrong_format_is_schema_error(self, tmp_path):
        path = tmp_path / "r.json"
        atomic_write_json(path, {"format": "other/1"})
        with pytest.raises(SchemaError, match="unrecognised"):
            load_checked_json(path, expected_format="f/1")
        # SchemaError is a ValueError for pre-existing callers
        assert issubclass(SchemaError, ValueError)

    def test_checksumless_legacy_file_loads(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"format": "f/1", "v": 7}))
        assert load_checked_json(path, expected_format="f/1")["v"] == 7

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SchemaError, match="expected a JSON object"):
            load_checked_json(path)

    def test_checksum_ignores_key_order(self):
        assert checksum_payload({"a": 1, "b": 2}) == checksum_payload({"b": 2, "a": 1})
