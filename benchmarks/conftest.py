"""Shared environment for the figure/table benchmarks.

Scale: the paper ran a 200-node DryadLINQ cluster over 36,964 ASes; the
benchmarks default to ``REPRO_BENCH_N`` (default 500) ASes so the whole
suite regenerates every table and figure in minutes on a laptop.  The
*shapes* (who wins, where theta crossovers fall) are what reproduce;
absolute counts scale with N.  Set e.g. ``REPRO_BENCH_N=2000`` for
slower, closer-to-paper runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.case_study import CaseStudyReport, run_case_study
from repro.experiments.setup import ExperimentEnv, build_environment
from repro.experiments.sweeps import SweepCell, run_sweep

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "500"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2011"))

_cache: dict[str, object] = {}


@pytest.fixture(scope="session")
def env() -> ExperimentEnv:
    """The base benchmark topology (x = 10%, original graph)."""
    key = "env"
    if key not in _cache:
        _cache[key] = build_environment(n=BENCH_N, seed=BENCH_SEED, x=0.10)
    return _cache[key]  # type: ignore[return-value]


@pytest.fixture(scope="session")
def env_augmented() -> ExperimentEnv:
    """The Appendix-D augmented topology (same seed)."""
    key = "env_augmented"
    if key not in _cache:
        _cache[key] = build_environment(
            n=BENCH_N, seed=BENCH_SEED, x=0.10, augmented=True
        )
    return _cache[key]  # type: ignore[return-value]


def case_study_report(env: ExperimentEnv) -> CaseStudyReport:
    """The §5 case-study run, computed once and shared by Figs 3-7 etc."""
    key = "case_study"
    if key not in _cache:
        _cache[key] = run_case_study(env, theta=0.05)
    return _cache[key]  # type: ignore[return-value]


def sweep_cells(env: ExperimentEnv) -> list[SweepCell]:
    """The Fig-8/9 grid, computed once and shared."""
    key = "sweep"
    if key not in _cache:
        sets = env.adopter_sets()
        chosen = {
            name: sets[name]
            for name in ("none", "top-5", "cps+top-5", *(k for k in sets if k.startswith("top-") and k not in ("top-5",)))
            if name in sets
        }
        _cache[key] = run_sweep(
            env,
            thetas=(0.0, 0.05, 0.10, 0.30, 0.50),
            adopter_sets=chosen,
        )
    return _cache[key]  # type: ignore[return-value]
