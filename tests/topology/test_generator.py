"""The synthetic topology must reproduce the paper's structural stats."""

from __future__ import annotations

import pytest

from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.relationships import ASRole
from repro.topology.stats import multihomed_stub_fraction, summarize, top_by_degree


class TestConfigValidation:
    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig(n=5)

    def test_bad_stub_fraction_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig(stub_fraction=1.5)

    def test_bad_multihoming_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig(stub_multihoming=(0.5, 0.5, 0.5))

    def test_overrides_via_kwargs(self):
        top = generate_topology(n=120, seed=9, num_tier1=4)
        assert top.config.n == 120
        assert len(top.tier1_asns) == 4


class TestStructure:
    @pytest.fixture(scope="class")
    def topology(self):
        return generate_topology(n=600, seed=11)

    def test_gr1_holds(self, topology):
        topology.graph.validate()  # raises on a cycle

    def test_stub_fraction_near_85_percent(self, topology):
        s = summarize(topology.graph)
        assert abs(s.stub_fraction - 0.85) < 0.03

    def test_five_content_providers(self, topology):
        assert summarize(topology.graph).num_cps == 5
        for cp in topology.cp_asns:
            assert topology.graph.role(cp) is ASRole.CP
            # CPs never provide transit
            assert topology.graph.customers_of(cp) == []

    def test_tier1_clique_peering(self, topology):
        t1 = topology.tier1_asns
        for i, a in enumerate(t1):
            for b in t1[i + 1:]:
                assert topology.graph.has_edge(a, b)

    def test_tier1s_have_no_providers(self, topology):
        for asn in topology.tier1_asns:
            assert topology.graph.providers_of(asn) == []

    def test_everyone_else_has_a_provider(self, topology):
        g = topology.graph
        t1 = set(topology.tier1_asns)
        for asn in g.asns:
            if asn not in t1:
                assert g.providers_of(asn), f"AS {asn} has no provider"

    def test_peering_ratio_near_target(self, topology):
        s = summarize(topology.graph)
        ratio = s.num_peering_edges / s.num_ases
        assert 0.7 <= ratio <= 1.4  # paper: ~1.05

    def test_degree_skew(self, topology):
        """Top ASes must dwarf the median (the skew the paper leverages)."""
        g = topology.graph
        top = top_by_degree(g, 1)[0]
        degrees = sorted(g.degree(a) for a in g.asns)
        median = degrees[len(degrees) // 2]
        assert g.degree(top) > 10 * median

    def test_multihoming_exists(self, topology):
        """Without multihomed stubs there are no DIAMONDs to compete over."""
        assert multihomed_stub_fraction(topology.graph) > 0.3

    def test_ixp_members_are_in_graph(self, topology):
        for members in topology.ixp_members:
            for asn in members:
                assert asn in topology.graph

    def test_all_ixp_member_asns_deduplicated(self, topology):
        flat = topology.all_ixp_member_asns
        assert len(flat) == len(set(flat))


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate_topology(n=150, seed=4)
        b = generate_topology(n=150, seed=4)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_different_seed_different_graph(self):
        a = generate_topology(n=150, seed=4)
        b = generate_topology(n=150, seed=5)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())
