"""Tests for per-link load accounting."""

from __future__ import annotations

import pytest

from repro.core.adopters import cps_plus_top_isps
from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import run_deployment
from repro.core.engine import compute_round_data
from repro.core.state import DeploymentState, StateDeriver
from repro.routing.cache import RoutingCache
from repro.routing.flows import (
    deployment_traffic_shift,
    link_loads,
    top_loaded_links,
    traffic_shift,
)
from repro.topology.graph import ASGraph


def chain_graph() -> ASGraph:
    g = ASGraph()
    for asn in (1, 2, 3):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=2)
    g.add_customer_provider(provider=2, customer=3)
    return g


class TestLinkLoads:
    def test_chain_loads(self):
        g = chain_graph()
        cache = RoutingCache(g)
        deriver = StateDeriver(g)
        rd = compute_round_data(
            cache, deriver, DeploymentState(frozenset(), frozenset()),
            UtilityModel.OUTGOING,
        )
        loads = link_loads(rd, g.weights)
        i1, i2, i3 = g.index(1), g.index(2), g.index(3)
        # dest 3: 1 sends via 2 (load 1 on 1->2, then 2 carries 1+1=2 on 2->3)
        # dest 2: 1 and 3 send directly; dest 1: 2 carries 3's + its own
        assert loads[(i1, i2)] == pytest.approx(1 + 1)   # dests 3 and 2
        assert loads[(i2, i3)] == pytest.approx(2)       # dest 3: subtree {1}+own
        assert loads[(i2, i1)] == pytest.approx(2)       # dest 1: 3's + own
        assert loads[(i3, i2)] == pytest.approx(1 + 1)   # dests 1 and 2

    def test_conservation(self, small_graph, small_cache):
        """Total load equals the sum over pairs of weight x path length."""
        deriver = StateDeriver(small_graph)
        rd = compute_round_data(
            small_cache, deriver, DeploymentState(frozenset(), frozenset()),
            UtilityModel.OUTGOING,
        )
        loads = link_loads(rd, small_graph.weights)
        total = sum(loads.values())
        expected = 0.0
        for ds in rd.dest_states:
            lengths = ds.dr.lengths[ds.dr.order]
            expected += float(
                (small_graph.weights[ds.dr.order] * lengths).sum()
            )
        assert total == pytest.approx(expected)

    def test_top_loaded_links(self, small_graph, small_cache):
        deriver = StateDeriver(small_graph)
        rd = compute_round_data(
            small_cache, deriver, DeploymentState(frozenset(), frozenset()),
            UtilityModel.OUTGOING,
        )
        loads = link_loads(rd, small_graph.weights)
        top = top_loaded_links(loads, small_graph, k=5)
        assert len(top) == 5
        values = [load for _, _, load in top]
        assert values == sorted(values, reverse=True)


class TestTrafficShift:
    def test_identical_states_no_shift(self):
        loads = {(0, 1): 5.0, (1, 2): 3.0}
        shift = traffic_shift(loads, dict(loads))
        assert shift.moved_load == 0.0
        assert shift.links_changed == 0
        assert shift.moved_fraction == 0.0

    def test_moved_load_counts_once(self):
        before = {(0, 1): 10.0}
        after = {(0, 2): 10.0}
        shift = traffic_shift(before, after)
        assert shift.moved_load == pytest.approx(10.0)
        assert shift.new_links == 1
        assert shift.dropped_links == 1

    def test_deployment_shifts_traffic(self, small_graph, small_cache):
        """The cascade reroutes a measurable share of traffic — the
        provisioning concern the paper's conclusion raises."""
        deriver = StateDeriver(small_graph, compiled=small_cache.compiled)
        empty = DeploymentState(frozenset(), frozenset())
        result = run_deployment(
            small_graph, cps_plus_top_isps(small_graph, 3),
            SimulationConfig(theta=0.05), small_cache,
        )
        shift = deployment_traffic_shift(
            small_cache, deriver, empty, result.final_state
        )
        assert shift.moved_load > 0
        assert 0 < shift.moved_fraction < 1
