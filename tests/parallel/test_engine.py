"""Serial and process map-reduce engines must agree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.engine import (
    ProcessEngine,
    SerialEngine,
    default_engine,
    parallel_warm_cache,
)
from repro.routing.cache import RoutingCache
from repro.topology.generator import generate_topology


def square(x: int) -> int:
    return x * x


class TestEngines:
    def test_serial_map(self):
        assert SerialEngine().map(square, [1, 2, 3]) == [1, 4, 9]

    def test_process_map_matches_serial(self):
        items = list(range(37))
        serial = SerialEngine().map(square, items)
        parallel = ProcessEngine(workers=3).map(square, items)
        assert serial == parallel

    def test_process_single_item_shortcut(self):
        assert ProcessEngine(workers=4).map(square, [5]) == [25]

    def test_map_reduce_fold(self):
        total = SerialEngine().map_reduce(square, [1, 2, 3], lambda a, r: a + r, 0)
        assert total == 14

    def test_default_engine_selection(self):
        assert isinstance(default_engine(1), SerialEngine)
        assert isinstance(default_engine(3), ProcessEngine)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessEngine(workers=0)

    def test_order_preserved(self):
        items = list(range(50, 0, -1))
        assert ProcessEngine(workers=2).map(square, items) == [x * x for x in items]


class TestCacheWarming:
    def test_parallel_warm_matches_serial(self):
        top = generate_topology(n=120, seed=19)
        serial = RoutingCache(top.graph)
        parallel_warm_cache(serial, workers=1)
        parallel = RoutingCache(top.graph)
        parallel_warm_cache(parallel, workers=2)
        for dest in (0, 13, 77):
            a, b = serial.dest_routing(dest), parallel.dest_routing(dest)
            assert (a.order == b.order).all()
            assert (a.indptr == b.indptr).all()
            assert (a.cands == b.cands).all()
            assert (a.cls == b.cls).all()

    def test_warm_is_incremental(self):
        top = generate_topology(n=60, seed=19)
        cache = RoutingCache(top.graph)
        first = cache.dest_routing(5)
        parallel_warm_cache(cache, workers=1)
        assert cache.dest_routing(5) is first  # not recomputed
