"""Market-driven S*BGP deployment simulator.

Reproduction of Gill, Schapira & Goldberg, *"Let the Market Drive
Deployment: A Strategy for Transitioning to BGP Security"* (SIGCOMM
2011).  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Quickstart::

    from repro import build_environment, run_case_study

    env = build_environment(n=1000, x=0.10)
    report = run_case_study(env, theta=0.05)
    print(f"{report.fraction_secure_ases:.0%} of ASes secure")

Subpackages:

- :mod:`repro.topology` — AS graphs: generator, CAIDA I/O, augmentation;
- :mod:`repro.routing`  — Gao-Rexford policy routing, tiebreak sets,
  the fast routing-tree algorithm;
- :mod:`repro.core`     — the deployment game: utilities, projections,
  myopic best-response dynamics, metrics;
- :mod:`repro.protocol` — RPKI / S-BGP / soBGP message-level substrate
  and the attack library;
- :mod:`repro.gadgets`  — the paper's theory constructions, runnable;
- :mod:`repro.parallel` — crash-tolerant map-reduce substrate
  (DryadLINQ stand-in);
- :mod:`repro.runtime`  — resilience layer: atomic persistence, run
  journals (checkpoint/resume), retry policy, fault injection;
- :mod:`repro.experiments` — the harness regenerating every table and
  figure.
"""

from repro.core import (
    DeploymentSimulation,
    SimulationConfig,
    SimulationResult,
    UtilityModel,
    run_deployment,
)
from repro.experiments import build_environment, run_case_study, run_sweep
from repro.topology import ASGraph, apply_traffic_model, generate_topology

__version__ = "1.0.0"

__all__ = [
    "ASGraph",
    "DeploymentSimulation",
    "SimulationConfig",
    "SimulationResult",
    "UtilityModel",
    "__version__",
    "apply_traffic_model",
    "build_environment",
    "generate_topology",
    "run_case_study",
    "run_deployment",
    "run_sweep",
]
