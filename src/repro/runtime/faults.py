"""Deterministic fault injection for exercising the resilience layer.

:class:`FaultInjector` is a picklable map function that misbehaves on
chosen items — raising, hanging, or SIGKILLing its own process — a
configurable number of times before succeeding.  Encounters are
counted in a shared directory (one ``O_EXCL``-created marker file per
encounter), so the count survives worker death and process restarts:
"fail the first two times item 7 is attempted, anywhere" is expressible
and exactly reproducible.
"""

from __future__ import annotations

import itertools
import os
import signal
import time
from pathlib import Path
from typing import Callable, Collection


# Deliberately NOT in errors.py: this is a test instrument, not part of
# the error contract callers handle — keeping it beside its injector
# stops production code from importing it by accident.
class FaultInjected(RuntimeError):  # repro-lint: disable=RPR008
    """The exception :class:`FaultInjector` raises in ``raise`` mode."""


def _identity(item):
    return item


class FaultInjector:
    """Map function wrapper that injects faults on chosen items.

    Parameters
    ----------
    bad_items:
        Items (compared by ``repr``) that trigger the fault.
    mode:
        ``"raise"`` (raise :class:`FaultInjected`), ``"kill"``
        (``SIGKILL`` the current process — simulates a crashed worker),
        ``"hang"`` (sleep ``hang_seconds`` — simulates a wedged
        worker, to be reaped by a partition timeout), ``"slow"``
        (sleep ``slow_seconds`` then do the work — simulates a
        straggler, for exercising deadlines without hang-length
        stalls), or ``"oom"`` (allocate ``oom_bytes`` then raise
        :class:`MemoryError` — simulates allocation-until-death, for
        exercising the memory-governance rungs).
    fail_times:
        Fault only the first N encounters of each bad item (requires
        ``state_dir``); ``None`` means fault every time.
    state_dir:
        Directory for cross-process encounter counters.
    only_in_worker:
        Fault only when running in a process other than the one that
        constructed the injector — lets a test prove the engine's
        serial in-parent fallback succeeds where every worker failed.
    fn:
        The real work (default: identity).  Must itself be picklable.
    """

    def __init__(
        self,
        bad_items: Collection[object],
        mode: str = "raise",
        fail_times: int | None = None,
        state_dir: str | Path | None = None,
        hang_seconds: float = 30.0,
        slow_seconds: float = 0.05,
        oom_bytes: int = 64 * 2**20,
        only_in_worker: bool = False,
        fn: Callable = _identity,
    ):
        if mode not in ("raise", "kill", "hang", "slow", "oom"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if fail_times is not None and state_dir is None:
            raise ValueError("fail_times requires a state_dir for counters")
        self.bad_reprs = frozenset(repr(i) for i in bad_items)
        self.mode = mode
        self.fail_times = fail_times
        self.state_dir = None if state_dir is None else str(state_dir)
        self.hang_seconds = hang_seconds
        self.slow_seconds = slow_seconds
        self.oom_bytes = oom_bytes
        self.only_in_worker = only_in_worker
        self.home_pid = os.getpid()
        self.fn = fn

    def __call__(self, item):
        if self._should_fault(item):
            if self.mode == "raise":
                raise FaultInjected(f"injected fault on {item!r}")
            if self.mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if self.mode == "oom":
                self._exhaust_memory(item)
            time.sleep(
                self.slow_seconds if self.mode == "slow" else self.hang_seconds
            )
        return self.fn(item)

    def _exhaust_memory(self, item) -> None:
        """Allocate up to ``oom_bytes`` in chunks, then raise MemoryError.

        Holding the chunks until the raise makes the pressure real (the
        process's RSS actually grows), while bounding it by ``oom_bytes``
        keeps the chaos suite deterministic — unlike a true allocate-
        until-killed loop, the test machine survives.
        """
        chunks: list[bytearray] = []
        allocated = 0
        step = min(1 << 20, max(1, self.oom_bytes))
        while allocated < self.oom_bytes:
            chunks.append(bytearray(step))
            allocated += step
        raise MemoryError(
            f"injected oom on {item!r} after {allocated} bytes"
        )

    def _should_fault(self, item) -> bool:
        if repr(item) not in self.bad_reprs:
            return False
        if self.only_in_worker and os.getpid() == self.home_pid:
            return False
        if self.fail_times is None:
            return True
        return self._claim_encounter(item) < self.fail_times

    def _claim_encounter(self, item) -> int:
        """Atomically claim the next encounter slot for ``item``.

        Marker files make the counter shared across processes and
        robust to any of them dying mid-count.
        """
        safe = repr(item).replace(os.sep, "_")
        for n in itertools.count():
            marker = os.path.join(self.state_dir, f"{safe}.{n}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return n
