"""Tests for the scale-invariance study."""

from __future__ import annotations

from repro.experiments.scaling import run_scaling_study


class TestScalingStudy:
    def test_points_per_size(self):
        points = run_scaling_study(sizes=(100, 200), theta=0.10)
        assert [p.n for p in points] == [100, 200]

    def test_structural_invariants(self):
        points = run_scaling_study(sizes=(150, 300), theta=0.05)
        for p in points:
            assert abs(p.stub_fraction - 0.85) < 0.06
            assert 1.0 <= p.mean_tiebreak <= 2.0
            assert 0.0 <= p.multi_path_fraction <= 0.6
            assert 0.0 < p.security_sensitive_fraction < 0.15

    def test_outcome_recorded(self):
        points = run_scaling_study(sizes=(150,), theta=0.05)
        p = points[0]
        assert 0.0 <= p.fraction_secure_ases <= 1.0
        assert p.num_rounds >= 1
