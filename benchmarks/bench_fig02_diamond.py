"""Figure 2: the DIAMOND competition case study.

Paper: AS 8359 and AS 13789 compete for Tier-1 traffic toward a
multihomed stub; whichever deploys first steals the traffic, the other
deploys to regain it.  Shape: steal -> regain -> both secure, with the
stealer's utility spike temporary.
"""

from __future__ import annotations

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation
from repro.gadgets.diamond import build_diamond


def test_fig02_diamond_competition(benchmark, capsys):
    def play():
        net = build_diamond()
        cfg = SimulationConfig(theta=0.02, utility_model=UtilityModel.OUTGOING)
        sim = DeploymentSimulation(net.graph, [net.source], cfg)
        return net, sim.run()

    net, result = benchmark.pedantic(play, rounds=1, iterations=1)
    g = net.graph
    stealer = result.rounds[0].turned_on[0]
    regainer = result.rounds[1].turned_on[0]

    with capsys.disabled():
        print()
        print("Fig 2: DIAMOND competition")
        print(f"  round 1: AS {g.asn(stealer)} deploys (steals the Tier-1 traffic)")
        print(f"  round 2: AS {g.asn(regainer)} deploys (regains its traffic)")
        for label, node in (("stealer", stealer), ("regainer", regainer)):
            start = result.starting_utilities[node]
            history = result.utility_history(node)
            if start > 0:
                series = [u / start for u in history]
                print(f"  {label} normalised utility: "
                      + " ".join(f"{v:.2f}" for v in series))
            else:  # the hash-disfavoured ISP starts with zero traffic
                print(f"  {label} raw utility (starts at 0): "
                      + " ".join(f"{u:.0f}" for u in history))

    assert result.final_node_secure[g.index(net.left)]
    assert result.final_node_secure[g.index(net.right)]
