"""Tests for the message-level protocol network."""

from __future__ import annotations

import pytest

from repro.protocol.attacks import forge_origin_hijack
from repro.protocol.router import ProtocolNetwork, SecurityLevel, SecurityMode
from repro.protocol.rpki import Prefix, RPKI
from repro.topology.graph import ASGraph

PFX = Prefix("203.0.113.0", 24)


def hub_graph() -> ASGraph:
    """Hub 10 provides to 20 (origin), 30 (attacker), 40 (observer)."""
    g = ASGraph()
    for asn in (10, 20, 30, 40):
        g.add_as(asn)
    for customer in (20, 30, 40):
        g.add_customer_provider(provider=10, customer=customer)
    return g


class TestPropagation:
    def test_reaches_everyone(self):
        g = hub_graph()
        net = ProtocolNetwork(g, RPKI(seed=b"a"))
        net.originate_prefix(20, PFX, issue_roa=False)
        net.converge()
        assert net.path_of(40, PFX) == (10, 20)
        assert net.path_of(10, PFX) == (20,)
        assert net.route_of(20, PFX) is None  # origin keeps it local

    def test_gr2_blocks_peer_to_peer_transit(self):
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(asn)
        g.add_peering(1, 2)
        g.add_peering(2, 3)
        net = ProtocolNetwork(g, RPKI(seed=b"b"))
        net.originate_prefix(3, PFX, issue_roa=False)
        net.converge()
        assert net.path_of(2, PFX) == (3,)
        assert net.route_of(1, PFX) is None  # 2 must not re-export peer route

    def test_customer_route_preferred(self):
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(asn)
        # 1 can reach 3 via customer 2 (longer) or via direct peering
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=2, customer=3)
        g.add_peering(1, 3)
        net = ProtocolNetwork(g, RPKI(seed=b"c"))
        net.originate_prefix(3, PFX, issue_roa=False)
        net.converge()
        assert net.path_of(1, PFX) == (2, 3)  # LP beats shorter peer route


class TestValidation:
    def test_full_validators_see_secure_level(self):
        g = hub_graph()
        rpki = RPKI(seed=b"d")
        modes = {asn: SecurityMode.FULL for asn in (10, 20, 40)}
        net = ProtocolNetwork(g, rpki, modes)
        net.originate_prefix(20, PFX)
        net.converge()
        assert net.route_of(40, PFX).level is SecurityLevel.FULLY_SECURE

    def test_insecure_hop_downgrades(self):
        g = hub_graph()
        rpki = RPKI(seed=b"e")
        modes = {20: SecurityMode.FULL, 40: SecurityMode.FULL}  # hub insecure
        net = ProtocolNetwork(g, rpki, modes)
        net.originate_prefix(20, PFX)
        net.converge()
        assert net.route_of(40, PFX).level is SecurityLevel.INSECURE

    def test_simplex_signs_own_prefix_only(self):
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(asn)
        g.add_customer_provider(provider=2, customer=1)  # 1 originates
        g.add_customer_provider(provider=3, customer=2)
        rpki = RPKI(seed=b"f")
        modes = {1: SecurityMode.SIMPLEX, 2: SecurityMode.SIMPLEX, 3: SecurityMode.FULL}
        net = ProtocolNetwork(g, rpki, modes)
        net.originate_prefix(1, PFX)
        net.converge()
        # 2 is simplex: it does not sign transit, so 3 sees a broken chain
        assert net.route_of(3, PFX).level is SecurityLevel.INSECURE

    def test_origin_validation_drops_hijack(self):
        g = hub_graph()
        rpki = RPKI(seed=b"g")
        modes = {10: SecurityMode.FULL, 20: SecurityMode.SIMPLEX, 40: SecurityMode.FULL}
        net = ProtocolNetwork(g, rpki, modes)
        net.originate_prefix(20, PFX)  # issues a ROA for 20
        net.inject(30, forge_origin_hijack(30, PFX))
        net.converge()
        # the validating hub drops the bad-origin announcement entirely
        assert net.path_of(40, PFX) == (10, 20)

    def test_hijack_wins_without_validation(self):
        g = hub_graph()
        net = ProtocolNetwork(g, RPKI(seed=b"h"))
        net.originate_prefix(20, PFX, issue_roa=False)
        net.inject(30, forge_origin_hijack(30, PFX))
        net.converge()
        # equal-length routes; the observer's fate rests on a hash
        # tie-break, and the hub itself now has two one-hop customer
        # routes: the forged one competes on equal footing
        path = net.path_of(10, PFX)
        assert path in ((20,), (30,))
