"""Saving and loading simulation results as JSON.

Long sweeps (hours at paper scale) should survive the process; these
helpers serialise the decision-relevant trace of a
:class:`~repro.core.dynamics.SimulationResult` — per-round adopters,
security counts, utilities of tracked ASes — into plain JSON.  Routing
trees are not persisted (they are recomputable from the graph + state).

Writes are atomic (temp + fsync + ``os.replace``) and checksummed via
:mod:`repro.runtime.atomic`; an interrupt mid-save can no longer leave
a truncated file shadowing a previous good result, and loaders raise
the typed errors of :mod:`repro.runtime.errors` (never a raw
``json.JSONDecodeError``) on damaged input.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.core.dynamics import SimulationResult
from repro.runtime.atomic import atomic_write_json, parse_checked_json

#: schema marker embedded in every saved result
RESULT_FORMAT = "repro.simulation-result/1"


def result_to_dict(
    result: SimulationResult, track_asns: list[int] | None = None
) -> dict[str, Any]:
    """Serialisable summary of a finished simulation.

    ``track_asns`` selects ASes whose full utility history is included
    (defaults to the early adopters).
    """
    graph = result.graph
    tracked = track_asns if track_asns is not None else sorted(
        graph.asn(i) for i in result.early_adopters
    )
    histories = {}
    for asn in tracked:
        i = graph.index(asn)
        try:
            histories[str(asn)] = result.utility_history(i)
        except ValueError:  # utilities not recorded
            histories = {}
            break
    return {
        "format": RESULT_FORMAT,
        "config": {
            "theta": result.config.theta,
            "utility_model": result.config.utility_model.value,
            "stub_breaks_ties": result.config.stub_breaks_ties,
            "max_rounds": result.config.max_rounds,
        },
        "outcome": result.outcome.value,
        "num_ases": graph.n,
        "early_adopters": sorted(graph.asn(i) for i in result.early_adopters),
        "final_deployers": sorted(graph.asn(i) for i in result.final_state.deployers),
        "final_secure_asns": sorted(
            graph.asn(i) for i in range(graph.n) if result.final_node_secure[i]
        ),
        "rounds": [
            {
                "index": record.index,
                "secure_ases": record.num_secure_ases,
                "turned_on": sorted(graph.asn(i) for i in record.turned_on),
                "turned_off": sorted(graph.asn(i) for i in record.turned_off),
            }
            for record in result.rounds
        ],
        "tracked_utilities": histories,
    }


def save_result(
    result: SimulationResult,
    target: str | Path | TextIO,
    track_asns: list[int] | None = None,
) -> None:
    """Write :func:`result_to_dict` as JSON.

    Path targets are written atomically with an embedded checksum —
    the target file is never truncated before the payload is complete.
    Stream targets are the caller's responsibility and are written
    without a checksum.
    """
    payload = result_to_dict(result, track_asns)
    if isinstance(target, (str, Path)):
        atomic_write_json(target, payload, checksum=True)
    else:
        json.dump(payload, target, indent=1)


def load_result_summary(source: str | Path | TextIO) -> dict[str, Any]:
    """Load a previously saved result summary, validated.

    Raises :class:`~repro.runtime.errors.CorruptFileError` on truncated
    or checksum-failing input and
    :class:`~repro.runtime.errors.SchemaError` (a ``ValueError``) on an
    unrecognised format.  The checksum field, when present, is verified
    and stripped, so the returned payload equals :func:`result_to_dict`.
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
        where: str | Path = source
    else:
        text = source.read()
        where = "<stream>"
    return parse_checked_json(text, source=where, expected_format=RESULT_FORMAT)
