"""File discovery, per-file linting, and result aggregation.

Two granularities share one parse: every file is read and parsed once,
the per-file rules walk each tree, and (under ``--program``) the
whole-program pass reuses the same trees to build its project index.
Unused-suppression accounting (RPR010) is deferred until after both
passes so a waiver consumed by a program-level finding is not reported
stale.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.analysis.base import FileContext, Rule, Walker
from repro.analysis.findings import PARSE_ERROR, UNUSED_SUPPRESSION, Finding
from repro.analysis.rules import ALL_RULES

if TYPE_CHECKING:
    from repro.analysis.program import ProgramSummary

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".venv"})


@dataclasses.dataclass(frozen=True)
class LintResult:
    """All findings from one lint run, plus coverage accounting."""

    findings: tuple[Finding, ...]
    files_checked: int
    program: "ProgramSummary | None" = None

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen.add(sub)
        elif path.suffix == ".py":
            seen.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(seen)


def module_for_path(path: str | Path) -> str | None:
    """Dotted module path when ``path`` sits under a ``repro`` package.

    Package-scoped rule exemptions key off this; files outside the
    package (scripts/, benchmarks/) get None and therefore the strict,
    no-exemption treatment.
    """
    parts = Path(path).resolve().parts
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    mod_parts = list(parts[idx:])
    mod_parts[-1] = mod_parts[-1].removesuffix(".py")
    if mod_parts[-1] == "__init__":
        mod_parts.pop()
    return ".".join(mod_parts)


def lint_source(
    source: str,
    path: str | Path = "<string>",
    rules: list[Rule] | None = None,
    module: str | None = None,
) -> list[Finding]:
    """Lint one source string (the unit the golden fixture tests drive).

    ``module`` overrides the path-derived module identity so fixtures
    can exercise package-scoped exemptions from arbitrary locations.
    """
    active = list(ALL_RULES) if rules is None else rules
    ctx = FileContext(path, source, module)
    try:
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError) as exc:
        return [_parse_error_finding(path, exc)]
    Walker(ctx, active).run(tree)

    active_codes = frozenset(r.code for r in active)
    for line, code in ctx.suppressions.unused(active_codes):
        ctx.findings.append(
            Finding(
                path=str(path),
                line=line,
                col=1,
                code=UNUSED_SUPPRESSION,
                message=(
                    f"unused suppression: {code} does not fire on this line; "
                    "remove the waiver so it cannot mask a future violation"
                ),
                rule="unused-suppression",
            )
        )
    return sorted(ctx.findings)


def lint_file(path: str | Path, rules: list[Rule] | None = None) -> list[Finding]:
    """Lint one file from disk (module identity derived from its path)."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=path, rules=rules, module=module_for_path(path))


def _parse_error_finding(path: str | Path, exc: SyntaxError | ValueError) -> Finding:
    line = getattr(exc, "lineno", None) or 1
    col = (getattr(exc, "offset", None) or 0) + 1
    return Finding(
        path=str(path),
        line=line,
        col=col,
        code=PARSE_ERROR,
        message=f"file could not be parsed: {exc.msg if isinstance(exc, SyntaxError) else exc}",
        rule="parse-error",
    )


def lint_paths(
    paths: Sequence[str | Path],
    rules: list[Rule] | None = None,
    program: bool = False,
    program_select: frozenset[str] | None = None,
    reference_roots: Sequence[str | Path] | None = None,
    graph_out: str | Path | None = None,
) -> LintResult:
    """Lint every .py file reachable from ``paths``.

    With ``program=True`` the whole-program pass (RPR015/016/017) runs
    over the same parse trees; ``program_select`` narrows its rules,
    ``reference_roots`` adds use-only roots for dead-API analysis, and
    ``graph_out`` writes the package import graph as DOT.
    """
    active = list(ALL_RULES) if rules is None else rules
    findings: list[Finding] = []
    files = iter_python_files(paths)

    contexts: list[tuple[FileContext, ast.AST]] = []
    for path in files:
        source = Path(path).read_text(encoding="utf-8")
        ctx = FileContext(path, source, module_for_path(path))
        try:
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError) as exc:
            findings.append(_parse_error_finding(path, exc))
            continue
        Walker(ctx, active).run(tree)
        contexts.append((ctx, tree))

    summary: "ProgramSummary | None" = None
    active_codes = frozenset(r.code for r in active)
    if program:
        from repro.analysis.program import (
            program_codes,
            render_dot,
            run_program_pass,
        )

        prog_findings, summary, index = run_program_pass(
            contexts,
            paths,
            selected=program_select,
            reference_roots=reference_roots,
        )
        findings.extend(prog_findings)
        active_codes |= program_codes() if program_select is None else (
            program_codes() & program_select
        )
        if graph_out is not None:
            from repro.analysis.program.layers import find_manifest
            from repro.runtime.atomic import atomic_write_text

            atomic_write_text(graph_out, render_dot(index, find_manifest(paths)))

    # RPR010 runs last: program-level findings above have already marked
    # the waivers they consumed as used.
    for ctx, _tree in contexts:
        findings.extend(ctx.findings)
        for line, code in ctx.suppressions.unused(active_codes):
            findings.append(
                Finding(
                    path=str(ctx.path),
                    line=line,
                    col=1,
                    code=UNUSED_SUPPRESSION,
                    message=(
                        f"unused suppression: {code} does not fire on this line; "
                        "remove the waiver so it cannot mask a future violation"
                    ),
                    rule="unused-suppression",
                )
            )
    return LintResult(
        findings=tuple(sorted(findings)), files_checked=len(files), program=summary
    )
