"""Mapping traffic volume to revenue (§8.4).

The paper equates utility with transited customer-traffic volume and
notes: "In practice, ISPs may use a variety of pricing policies, e.g.,
by volume, flat rates based on discrete units of capacity.  Thus,
extensions might consider ... more accurately map revenue to traffic
volumes."

A :class:`PricingModel` transforms traffic into revenue before the
update rule compares it:

- ``LINEAR``   — revenue = traffic (the paper's model);
- ``TIERED``   — flat rate per discrete capacity unit
  (``ceil(traffic / tier)``): small traffic gains that stay inside the
  current tier earn nothing, damping weak deployment incentives;
- ``CONCAVE``  — ``traffic ** alpha`` with ``alpha < 1``: volume
  discounts compress differences at large ISPs.
"""

from __future__ import annotations

import dataclasses
import enum
import math


class PricingModel(enum.Enum):
    """How transited traffic converts to ISP revenue."""

    LINEAR = "linear"
    TIERED = "tiered"
    CONCAVE = "concave"


@dataclasses.dataclass(frozen=True)
class Pricing:
    """A pricing model plus its parameters.

    ``tier`` is the capacity-unit size for TIERED (in traffic-weight
    units); ``alpha`` the exponent for CONCAVE.
    """

    model: PricingModel = PricingModel.LINEAR
    tier: float = 50.0
    alpha: float = 0.7

    def __post_init__(self) -> None:
        if self.tier <= 0:
            raise ValueError(f"tier must be positive, got {self.tier}")
        if not 0 < self.alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")

    def revenue(self, traffic: float) -> float:
        """Revenue earned for transiting ``traffic``."""
        if traffic < 0:
            raise ValueError(f"traffic must be >= 0, got {traffic}")
        if self.model is PricingModel.LINEAR:
            return traffic
        if self.model is PricingModel.TIERED:
            return math.ceil(traffic / self.tier) * self.tier
        return traffic ** self.alpha

    def improves(self, current: float, projected: float, theta: float) -> bool:
        """Update rule (3) on revenues: deploy iff the flip's *revenue*
        beats the threshold."""
        return self.revenue(projected) > (1.0 + theta) * self.revenue(current)


LINEAR_PRICING = Pricing(model=PricingModel.LINEAR)
