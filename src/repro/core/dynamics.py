"""The deployment game loop (Sections 3.2-3.3).

Each round, every ISP evaluates the myopic best-response rule (3):

    flip  iff  u_n(~S_n, S_-n) > (1 + theta) * u_n(S)

All ISPs that want to flip do so *simultaneously* (which is why
projected utility can differ from realised utility — Figure 14 / §8.1);
then stub security is re-derived and the next round begins.  The
process ends at a stable state (no ISP wants to move), when a state
repeats (an oscillation, possible only under the incoming model —
Theorem 7.1), or at the round cap.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from typing import Iterable, Sequence

import numpy as np

from pathlib import Path

from repro.core.config import SimulationConfig
from repro.core.engine import RoundData, compute_round_data
from repro.core.pricing import LINEAR_PRICING, Pricing
from repro.core.projection import Projection, project_flip
from repro.core.state import DeploymentState, StateDeriver
from repro.routing.cache import RoutingCache
from repro.routing.policy import DEFAULT_POLICY
from repro.runtime.guard import current_guard
from repro.runtime.journal import RunJournal, coerce_journal
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole

#: journal ``kind`` for single-simulation round traces
SIMULATION_JOURNAL_KIND = "simulation"


class Outcome(enum.Enum):
    """How a simulation ended."""

    STABLE = "stable"
    OSCILLATION = "oscillation"
    MAX_ROUNDS = "max-rounds"


@dataclasses.dataclass
class RoundRecord:
    """What happened in one round (state *entering* the round)."""

    index: int
    state: DeploymentState
    node_secure: np.ndarray
    utilities: np.ndarray | None
    projections: dict[int, Projection]
    turned_on: list[int]
    turned_off: list[int]

    @property
    def num_secure_ases(self) -> int:
        """ASes secure at the start of this round (full or simplex)."""
        return int(self.node_secure.sum())


@dataclasses.dataclass
class SimulationResult:
    """Full trace of a deployment simulation."""

    graph: ASGraph
    config: SimulationConfig
    early_adopters: frozenset[int]
    rounds: list[RoundRecord]
    final_state: DeploymentState
    final_node_secure: np.ndarray
    final_utilities: np.ndarray
    starting_utilities: np.ndarray
    outcome: Outcome

    @property
    def num_rounds(self) -> int:
        """Rounds in which decisions were evaluated."""
        return len(self.rounds)

    def secure_ases_per_round(self) -> list[int]:
        """Cumulative count of secure ASes entering each round + final."""
        counts = [r.num_secure_ases for r in self.rounds]
        counts.append(int(self.final_node_secure.sum()))
        return counts

    def newly_secure_per_round(self) -> list[int]:
        """Fig. 3: newly secure ASes per round (simplex stubs included)."""
        cumulative = self.secure_ases_per_round()
        return [b - a for a, b in zip(cumulative, cumulative[1:])]

    def adopting_isps_per_round(self) -> list[int]:
        """Fig. 3: ISPs that deployed S*BGP in each round."""
        return [len(r.turned_on) for r in self.rounds]

    def utility_history(self, node: int) -> list[float]:
        """Per-round utility of ``node`` (requires record_utilities)."""
        out = []
        for r in self.rounds:
            if r.utilities is None:
                raise ValueError("utilities were not recorded; set record_utilities")
            out.append(float(r.utilities[node]))
        out.append(float(self.final_utilities[node]))
        return out

    def adoption_round(self, node: int) -> int | None:
        """Round in which ``node`` deployed (None if never / initial)."""
        for r in self.rounds:
            if node in r.turned_on:
                return r.index
        return None


class DeploymentSimulation:
    """Drives the myopic best-response dynamics over an AS graph.

    Parameters
    ----------
    graph:
        Topology with weights already assigned (see
        :func:`repro.topology.apply_traffic_model`).
    early_adopter_asns:
        AS numbers of the early adopters (ISPs, CPs or stubs).
    config:
        Game parameters; defaults to :class:`SimulationConfig()`.
    cache:
        Optional shared :class:`RoutingCache` (reusable across runs on
        the same graph — by far the dominant setup cost).
    player_asns:
        Restrict the decision makers to these ISPs (default: every
        ISP).  Used by the theory gadgets, whose constructions hold a
        scaffold of "fixed" nodes still while two strategic nodes play
        (Appendix K: "there are many simple gadgets we could construct
        to ensure a particular node remains stuck; to reduce clutter we
        omit these").
    thresholds:
        Optional per-node threshold array overriding ``config.theta``
        (see :mod:`repro.core.thresholds`, §8.2).
    pricing:
        Optional :class:`~repro.core.pricing.Pricing` mapping traffic
        to revenue before the update rule compares utilities (§8.4);
        defaults to the paper's linear model.
    """

    def __init__(
        self,
        graph: ASGraph,
        early_adopter_asns: Iterable[int],
        config: SimulationConfig | None = None,
        cache: RoutingCache | None = None,
        player_asns: Iterable[int] | None = None,
        thresholds: np.ndarray | None = None,
        pricing: Pricing | None = None,
    ):
        self.graph = graph
        self.config = config or SimulationConfig()
        if cache is not None and cache.policy_name != self.config.policy:
            # a shared cache is authoritative for its routing structures;
            # silently honouring a *different* explicit config.policy would
            # mix rankings, so that combination is rejected outright
            if self.config.policy != DEFAULT_POLICY:
                raise ValueError(
                    f"config.policy={self.config.policy!r} conflicts with the "
                    f"shared cache's policy {cache.policy_name!r}; pass a cache "
                    "built with the same policy (or drop one of the two)"
                )
            self.config = dataclasses.replace(self.config, policy=cache.policy_name)
        self.cache = cache or RoutingCache(graph, policy=self.config.policy)
        self.deriver = StateDeriver(
            graph,
            stub_breaks_ties=self.config.stub_breaks_ties,
            compiled=self.cache.compiled,
        )
        if thresholds is not None and len(thresholds) != graph.n:
            raise ValueError(
                f"thresholds must have length {graph.n}, got {len(thresholds)}"
            )
        self.thresholds = thresholds
        self.pricing = pricing or LINEAR_PRICING
        adopters = frozenset(graph.index(asn) for asn in early_adopter_asns)
        self.state = DeploymentState.initial(adopters)
        roles = graph.roles
        self._isp_indices = np.flatnonzero(roles == int(ASRole.ISP))
        if player_asns is not None:
            players = {graph.index(asn) for asn in player_asns}
            self._isp_indices = np.asarray(
                [i for i in self._isp_indices if i in players], dtype=np.int64
            )

    def run(self, journal: RunJournal | str | Path | None = None) -> SimulationResult:
        """Run rounds until stability, oscillation, or the round cap.

        A single long simulation (hours at paper scale) can journal its
        progress: pass a :class:`~repro.runtime.journal.RunJournal` (or
        path) and a compact summary of every completed round — plus a
        final outcome record — is durably appended, so a crash leaves a
        readable trace of how far the game got (Fig-3-style per-round
        series are recoverable from it).
        """
        cfg = self.config
        registry = get_registry()
        tracer = get_tracer()
        journal = coerce_journal(journal)
        if journal is not None:
            journal.ensure_header(SIMULATION_JOURNAL_KIND, self._journal_meta())
        starting = self._starting_utilities()
        rounds: list[RoundRecord] = []
        seen_states: dict[frozenset[int], int] = {self.state.deployers: 0}
        outcome = Outcome.MAX_ROUNDS
        round_timer = registry.histogram("sim.round_seconds")
        guard = current_guard()
        with tracer.span("simulation", n=self.graph.n, theta=cfg.theta):
            rd = compute_round_data(self.cache, self.deriver, self.state, cfg.utility_model)

            for index in range(1, cfg.max_rounds + 1):
                # round boundary: every completed round is already
                # journaled, so an expired budget loses no work
                guard.check_deadline(f"simulation round {index}")
                with tracer.span("round", index=index), round_timer.time():
                    record = self._play_round(index, rd)
                    rounds.append(record)
                    if journal is not None:
                        journal.append(self._round_summary(record))
                    if not record.turned_on and not record.turned_off:
                        outcome = Outcome.STABLE
                        break
                    self.state = self.state.with_flips(
                        turn_on=record.turned_on, turn_off=record.turned_off
                    )
                    rd = compute_round_data(
                        self.cache, self.deriver, self.state, cfg.utility_model
                    )
                    key = self.state.deployers
                    if key in seen_states:
                        outcome = Outcome.OSCILLATION
                        break
                    seen_states[key] = index

        if journal is not None:
            journal.append({
                "type": "final",
                "outcome": outcome.value,
                "num_rounds": len(rounds),
                "final_secure_ases": int(rd.node_secure.sum()),
            })
        return SimulationResult(
            graph=self.graph,
            config=cfg,
            early_adopters=self.state.early_adopters,
            rounds=rounds,
            final_state=self.state,
            final_node_secure=rd.node_secure,
            final_utilities=rd.utilities,
            starting_utilities=starting,
            outcome=outcome,
        )

    def _journal_meta(self) -> dict:
        graph = self.graph
        return {
            "num_ases": graph.n,
            "theta": self.config.theta,
            "utility_model": self.config.utility_model.value,
            "stub_breaks_ties": self.config.stub_breaks_ties,
            "policy": self.cache.policy_name,
            "max_rounds": self.config.max_rounds,
            "early_adopters": sorted(
                graph.asn(i) for i in self.state.early_adopters
            ),
        }

    def _round_summary(self, record: RoundRecord) -> dict:
        graph = self.graph
        return {
            "type": "round",
            "index": record.index,
            "secure_ases": record.num_secure_ases,
            "turned_on": sorted(graph.asn(i) for i in record.turned_on),
            "turned_off": sorted(graph.asn(i) for i in record.turned_off),
        }

    def _theta_of(self, isp: int) -> float:
        if self.thresholds is not None:
            return float(self.thresholds[isp])
        return self.config.theta

    def _wants_flip(self, isp: int, rd: RoundData, proj: Projection) -> bool:
        return self.pricing.improves(
            float(rd.utilities[isp]), proj.utility, self._theta_of(isp)
        )

    def _play_round(self, index: int, rd: RoundData) -> RoundRecord:
        cfg = self.config
        registry = get_registry()
        projections: dict[int, Projection] = {}
        turned_on: list[int] = []
        turned_off: list[int] = []
        proj_start = time.perf_counter() if registry.enabled else 0.0

        jobs: list[tuple[int, bool]] = [
            (int(isp), True) for isp in self._decision_makers(turning_on=True)
        ]
        if cfg.turn_off_enabled:
            jobs.extend(
                (int(isp), False) for isp in self._decision_makers(turning_on=False)
            )

        for (isp, turning_on), proj in zip(jobs, self._project_jobs(rd, jobs)):
            projections[isp] = proj
            if self._wants_flip(isp, rd, proj):
                (turned_on if turning_on else turned_off).append(isp)

        if registry.enabled:
            registry.histogram("sim.projection_seconds").observe(
                time.perf_counter() - proj_start
            )
            registry.counter("sim.rounds").inc()
            registry.counter("sim.decision_makers_evaluated").inc(len(projections))
            registry.counter("sim.flips_on").inc(len(turned_on))
            registry.counter("sim.flips_off").inc(len(turned_off))

        return RoundRecord(
            index=index,
            state=rd.state,
            node_secure=rd.node_secure,
            utilities=rd.utilities.copy() if cfg.record_utilities else None,
            projections=projections,
            turned_on=turned_on,
            turned_off=turned_off,
        )

    def _project_jobs(self, rd: RoundData, jobs: list[tuple[int, bool]]) -> list[Projection]:
        """Evaluate the round's flip projections, serially or fanned out.

        With ``config.workers > 1`` the independent per-ISP projections
        run on the process engine (fork copy-on-write; only index pairs
        and scalar-sized projections cross the pipes — see
        :func:`repro.parallel.engine.parallel_project_flips`).
        """
        cfg = self.config
        if cfg.workers > 1 and len(jobs) > 1:
            from repro.parallel.engine import parallel_project_flips

            return parallel_project_flips(
                self.cache, self.deriver, rd, jobs,
                model=cfg.utility_model, projection=cfg.projection,
                workers=cfg.workers,
            )
        return [
            project_flip(
                self.cache, self.deriver, rd, isp,
                turning_on=turning_on, model=cfg.utility_model, engine=cfg.projection,
            )
            for isp, turning_on in jobs
        ]

    def _decision_makers(self, turning_on: bool) -> Sequence[int]:
        deployers = self.state.deployers
        if turning_on:
            return [i for i in self._isp_indices if i not in deployers]
        # Theorem 6.2 is enforced by turn_off_enabled; early adopters
        # are pinned and never reconsider.
        return [
            i for i in self._isp_indices
            if i in deployers and i not in self.state.early_adopters
        ]

    def _starting_utilities(self) -> np.ndarray:
        """Utilities before the process began (nobody secure, §5.5)."""
        empty = DeploymentState(frozenset(), frozenset())
        rd = compute_round_data(self.cache, self.deriver, empty, self.config.utility_model)
        return rd.utilities


def run_deployment(
    graph: ASGraph,
    early_adopter_asns: Iterable[int],
    config: SimulationConfig | None = None,
    cache: RoutingCache | None = None,
    player_asns: Iterable[int] | None = None,
    thresholds: np.ndarray | None = None,
    pricing: Pricing | None = None,
    journal: RunJournal | str | Path | None = None,
) -> SimulationResult:
    """One-call wrapper around :class:`DeploymentSimulation`."""
    sim = DeploymentSimulation(
        graph, early_adopter_asns, config, cache, player_asns, thresholds, pricing
    )
    return sim.run(journal=journal)
