"""Content providers vs Tier-1s as early adopters (Figure 12, §6.8).

Two sensitivity axes:

1. CP traffic fraction ``x`` in {10, 20, 33, 50}% — Tier-1s transit
   2-9x the CPs' traffic at x=10%, so they dominate as early adopters;
   CPs catch up as x grows;
2. CP connectivity — on the augmented graph (App. D) CPs peer widely
   and their mean path length drops to ~2, boosting their influence.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.adopters import content_providers, top_degree_isps
from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation
from repro.core.metrics import deployment_outcome
from repro.experiments.setup import ExperimentEnv, build_environment
from repro.topology.traffic import apply_traffic_model

DEFAULT_X_VALUES: tuple[float, ...] = (0.10, 0.20, 0.33, 0.50)


@dataclasses.dataclass(frozen=True)
class CpVsTier1Cell:
    """One (x, adopter set, theta, graph) outcome."""

    x: float
    adopters: str  # "5-cps" or "top-5-tier1"
    theta: float
    augmented: bool
    fraction_secure_ases: float
    fraction_secure_isps: float


def run_cp_vs_tier1(
    env: ExperimentEnv,
    thetas: Sequence[float] = (0.0, 0.05, 0.10, 0.30, 0.50),
    x_values: Sequence[float] = DEFAULT_X_VALUES,
) -> list[CpVsTier1Cell]:
    """Sweep x and theta for both adopter sets on ``env``'s graph.

    The traffic model is re-applied per ``x``; routing structures are
    weight-independent, so the cache is reused throughout.
    """
    graph = env.graph
    sets = {
        "5-cps": content_providers(graph),
        "top-5-tier1": top_degree_isps(graph, 5),
    }
    cells: list[CpVsTier1Cell] = []
    for x in x_values:
        apply_traffic_model(graph, x)
        for name, adopters in sets.items():
            for theta in thetas:
                config = SimulationConfig(theta=theta, utility_model=UtilityModel.OUTGOING)
                result = DeploymentSimulation(graph, adopters, config, env.cache).run()
                outcome = deployment_outcome(result)
                cells.append(
                    CpVsTier1Cell(
                        x=x,
                        adopters=name,
                        theta=theta,
                        augmented=env.augmented,
                        fraction_secure_ases=outcome.fraction_secure_ases,
                        fraction_secure_isps=outcome.fraction_secure_isps,
                    )
                )
    apply_traffic_model(graph, env.x)  # restore the env's traffic model
    return cells


def run_graph_comparison(
    n: int = 800,
    seed: int = 2011,
    x: float = 0.10,
    thetas: Sequence[float] = (0.0, 0.05, 0.10, 0.30),
    workers: int = 1,
) -> dict[bool, list[CpVsTier1Cell]]:
    """Fig. 12b: the same comparison on the original vs augmented graph."""
    out: dict[bool, list[CpVsTier1Cell]] = {}
    for augmented in (False, True):
        env = build_environment(
            n=n, seed=seed, x=x, augmented=augmented, workers=workers
        )
        out[augmented] = run_cp_vs_tier1(env, thetas=thetas, x_values=(x,))
    return out
