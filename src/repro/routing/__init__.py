"""BGP policy-routing substrate: route classes, tiebreak sets, trees."""

from repro.routing.cache import CacheStats, RoutingCache
from repro.routing.fixpoint import fixpoint_dest_routings
from repro.routing.fast_tree import (
    RoutingTree,
    compute_tree,
    compute_tree_scalar,
    subtree_weights,
)
from repro.routing.flows import (
    TrafficShift,
    deployment_traffic_shift,
    link_loads,
    top_loaded_links,
    traffic_shift,
)
from repro.routing.paths import as_path, path_is_secure, transit_nodes
from repro.routing.policy import (
    Criterion,
    RouteClass,
    RoutingPolicy,
    available_policies,
    compute_dest_routing_sp_first,
    exportable_to,
    get_policy,
    policy_table,
    register_policy,
    restrict_to_primary,
    tie_hash,
    tie_hash_array,
)
from repro.routing.reference import (
    ConvergenceError,
    SelectedRoute,
    secure_flags_from_selection,
    simulate_bgp,
)
from repro.routing.tiebreak import (
    TiebreakStats,
    collect_tiebreak_stats,
    mean_path_length,
    security_sensitive_decision_fraction,
)
from repro.routing.tree import (
    DestRouting,
    RouteInfo,
    compute_dest_routing,
    route_classes_and_lengths,
)
__all__ = [
    "CacheStats",
    "ConvergenceError",
    "Criterion",
    "DestRouting",
    "RouteClass",
    "RouteInfo",
    "RoutingCache",
    "RoutingPolicy",
    "RoutingTree",
    "SelectedRoute",
    "TiebreakStats",
    "TrafficShift",
    "as_path",
    "available_policies",
    "collect_tiebreak_stats",
    "compute_dest_routing",
    "compute_dest_routing_sp_first",
    "compute_tree",
    "compute_tree_scalar",
    "deployment_traffic_shift",
    "exportable_to",
    "fixpoint_dest_routings",
    "get_policy",
    "policy_table",
    "register_policy",
    "link_loads",
    "mean_path_length",
    "path_is_secure",
    "restrict_to_primary",
    "route_classes_and_lengths",
    "secure_flags_from_selection",
    "security_sensitive_decision_fraction",
    "simulate_bgp",
    "subtree_weights",
    "tie_hash",
    "tie_hash_array",
    "top_loaded_links",
    "traffic_shift",
    "transit_nodes",
]
