"""Worker functions whose writes the fork-safety pass must classify."""

import threading

COUNTER: dict[str, int] = {}
TOTALS: dict[str, int] = {}
STATS: dict[str, int] = {}
_LOCK = threading.Lock()
_tls = threading.local()


def record(key: str) -> None:
    COUNTER[key] = COUNTER.get(key, 0) + 1  # expect: RPR016
    record_locked(key)
    record_threadlocal(key)
    record_waived(key)
    helper_pure(key)


def record_locked(key: str) -> None:
    with _LOCK:
        TOTALS[key] = TOTALS.get(key, 0) + 1  # under a lock: exempt


def record_threadlocal(key: str) -> None:
    _tls.last = key  # threading.local(): per-thread by construction, exempt


def record_waived(key: str) -> None:
    STATS[key] = 1  # repro-lint: disable=RPR016 -- per-process scratch, merged by the parent after join


def helper_pure(key: str) -> str:
    local: dict[str, int] = {}
    local[key] = 1  # plain local mutation: never flagged
    return key


def cold_write(key: str) -> None:
    # identical write shape, but unreachable from any entry point
    COUNTER[key] = 0


def stale_waiver(key: str) -> str:
    scratch = {key: 1}  # repro-lint: disable=RPR016 -- expect: RPR010
    return str(scratch)
