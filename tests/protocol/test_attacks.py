"""Tests for the attack library and the Appendix-B demonstration."""

from __future__ import annotations

import pytest

from repro.gadgets.attack_network import build_attack_network
from repro.protocol.attacks import (
    evaluate_attack,
    forge_origin_hijack,
    forge_path_announcement,
    forge_signed_false_path,
    sign_attacker_hop,
)
from repro.protocol.router import SecurityLevel
from repro.protocol.rpki import Prefix
from repro.protocol.sbgp import validate_path, validated_signers

PFX = Prefix("198.18.0.0", 15)


class TestForgeries:
    def test_origin_hijack_shape(self):
        ann = forge_origin_hijack(666, PFX)
        assert ann.path == (666,)
        assert ann.attestations == ()

    def test_fake_path_must_start_with_attacker(self):
        with pytest.raises(ValueError):
            forge_path_announcement(666, (1, 2), PFX)

    def test_fake_path_shape(self):
        ann = forge_path_announcement(666, (666, 42), PFX)
        assert ann.origin == 42


class TestSignedForgeries:
    """A lone genuine signature on a false path: verifies for the
    attacker's hop, never for the spoofed ones (Appendix B's lever)."""

    def test_signed_false_path_attacker_hop_only(self):
        gadget = build_attack_network()
        net = gadget.build_protocol_network(p_prefers_partial=False)
        ann = forge_signed_false_path(
            net, gadget.m, (gadget.m, gadget.v), gadget.prefix
        )
        assert ann.attestations == ()  # nothing signed yet

        signed = sign_attacker_hop(net, gadget.m, ann, receiver=gadget.p)
        assert len(signed.attestations) == 1
        assert validated_signers(net.rpki, signed, gadget.p) == {gadget.m}
        # the chain stays broken at the spoofed hop: never fully secure
        assert not validate_path(net.rpki, signed, gadget.p)

    def test_signature_is_receiver_specific(self):
        gadget = build_attack_network()
        net = gadget.build_protocol_network(p_prefers_partial=False)
        ann = forge_signed_false_path(
            net, gadget.m, (gadget.m, gadget.v), gadget.prefix
        )
        signed = sign_attacker_hop(net, gadget.m, ann, receiver=gadget.p)
        # addressed to p: verifying from r must reject even the
        # attacker's own genuine hop
        assert validated_signers(net.rpki, signed, gadget.r) == set()


class TestAppendixB:
    """Fig. 15: preferring partially-secure paths is exploitable."""

    @pytest.fixture(scope="class")
    def network(self):
        return build_attack_network()

    def test_honest_ranking_resists(self, network):
        net = network.build_protocol_network(p_prefers_partial=False)
        out = evaluate_attack(net, victim=network.p, attacker=network.m,
                              prefix=network.prefix)
        assert not out.attacker_on_path
        assert out.chosen_path == (network.r, network.s, network.v)

    def test_partial_preference_falls(self, network):
        net = network.build_protocol_network(p_prefers_partial=True)
        out = evaluate_attack(net, victim=network.p, attacker=network.m,
                              prefix=network.prefix)
        assert out.attacker_on_path
        assert out.security_level is SecurityLevel.PARTIALLY_SECURE

    def test_false_path_equal_length(self, network):
        """The attack needs equally-good routes, or LP/SP would decide."""
        net = network.build_protocol_network(p_prefers_partial=False)
        net.converge()
        honest = net.path_of(network.p, network.prefix)
        assert honest is not None and len(honest) == 3
