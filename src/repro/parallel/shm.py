"""Shared-memory transport for :class:`~repro.routing.arena.RoutingArena`.

The arena serialises to one flat typed buffer (see
:meth:`~repro.routing.arena.RoutingArena.pack_into`), which makes it a
natural fit for ``multiprocessing.shared_memory``: a worker that built
the routing structures for a destination partition publishes them as a
named segment and ships only a pipe-sized :class:`ArenaHandle` back to
the parent — no :class:`~repro.routing.tree.DestRouting` objects are
ever pickled.  In the other direction, a parent can publish its warm
arena and have workers attach zero-copy views.

Semantics:

- :func:`publish_arena` creates a segment and packs the arena into it
  (returns ``None`` on platforms or sandboxes without usable shared
  memory — callers fall back to the pickle path and the
  ``parallel.shm.fallbacks`` counter records it);
- :func:`attach_arena` attaches **once per process** per segment name
  and refcounts further attaches, so many call sites in one process
  share a single mapping;
- :func:`release_arena` decrements the refcount and unmaps (optionally
  unlinking) at zero;
- :func:`consume_published_arena` is the one-shot parent side of the
  worker-publish flow: attach, copy out, close *and* unlink.

A subtlety worth knowing about: CPython's ``resource_tracker`` must be
started in the *parent* before any worker forks
(:func:`ensure_tracker_running`).  A worker that lazily starts its own
private tracker gets its published segments unlinked the moment it
exits — racing the parent's attach.  With one shared tracker the
bookkeeping is clean: creates and attaches register into one
deduplicating set, ``unlink()`` unregisters, and anything left over a
crash is reaped at main-process shutdown.
"""

from __future__ import annotations

import dataclasses
import logging
import threading

from repro.routing.arena import RoutingArena
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

#: ``(name, dtype, shape, offset)`` per arena field — see
#: :meth:`RoutingArena.to_blocks`.
Layout = tuple[tuple[str, str, tuple[int, ...], int], ...]


@dataclasses.dataclass(frozen=True)
class ArenaHandle:
    """Pipe-sized ticket for an arena published in shared memory.

    ``dests`` duplicates the arena's slot order so a consumer can
    recover (recompute) the partition even when the segment itself is
    gone — the crash-recovery path of the parallel warm.  ``policy``
    and ``state_key`` carry the arena's provenance metadata across the
    process boundary so an attached arena is exactly as restricted as
    a locally-built one; ``backend`` carries the kernel-backend name so
    shm peers dispatch the batched kernels the same way (the consumer
    still degrades locally if that backend is unusable there).
    """

    name: str
    graph_n: int
    total_bytes: int
    layout: Layout
    dests: tuple[int, ...]
    policy: str = "security_3rd"
    state_key: str | None = None
    backend: str = "numpy"


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is importable."""
    return _shared_memory is not None


def _note_fallback(reason: str) -> None:
    """Record one pickle-path degradation (warning + counter)."""
    log.warning("shared-memory transport unavailable (%s); falling back to pickled trees", reason)
    get_registry().counter("parallel.shm.fallbacks").inc()


def ensure_tracker_running() -> None:
    """Start the ``resource_tracker`` in THIS process before forking.

    Without this, each forked worker lazily starts its *own* tracker
    when it creates a segment — and that private tracker "cleans up"
    (unlinks) the segment the moment the worker exits, racing the
    parent's attach.  Starting the tracker in the parent first means
    every child inherits the shared one, whose cleanup only runs at
    main-process shutdown.
    """
    try:  # pragma: no branch
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except (ImportError, OSError):  # pragma: no cover - best effort only
        pass


def publish_arena(arena: RoutingArena, dests: tuple[int, ...] | None = None):
    """Pack ``arena`` into a fresh shared-memory segment.

    Returns ``(handle, segment)`` — the caller keeps ``segment`` open at
    least until a consumer has attached, and is responsible for the
    eventual unlink — or ``None`` when shared memory is unavailable
    (callers then take the pickle path; the fallback is counted).
    """
    if _shared_memory is None:  # pragma: no cover - always present on CPython
        _note_fallback("multiprocessing.shared_memory not importable")
        return None
    total, layout = arena.to_blocks()
    try:
        segment = _shared_memory.SharedMemory(create=True, size=max(total, 1))
    except OSError as exc:
        _note_fallback(f"segment creation failed: {exc}")
        return None
    arena.pack_into(segment.buf)
    handle = ArenaHandle(
        name=segment.name,
        graph_n=arena.graph_n,
        total_bytes=total,
        layout=tuple(layout),
        dests=tuple(int(d) for d in arena.dest_ids) if dests is None else tuple(dests),
        policy=arena.policy,
        state_key=arena.state_key,
        backend=arena.backend,
    )
    return handle, segment


class _Attachment:
    """One process-local mapping of a published segment."""

    __slots__ = ("segment", "arena", "refs")

    def __init__(self, segment, arena: RoutingArena):
        self.segment = segment
        self.arena = arena
        self.refs = 0


_attached: dict[str, _Attachment] = {}
_attached_lock = threading.Lock()


def attach_arena(handle: ArenaHandle) -> RoutingArena:
    """Zero-copy arena over the published segment (attach-once).

    The first call in a process maps the segment and builds the arena;
    subsequent calls for the same segment return the *same* arena and
    bump a refcount.  Pair every call with :func:`release_arena`.
    """
    if _shared_memory is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    with _attached_lock:
        att = _attached.get(handle.name)
        if att is None:
            segment = _shared_memory.SharedMemory(name=handle.name)
            arena = RoutingArena.from_buffer(
                handle.graph_n, segment.buf, list(handle.layout),
                policy=handle.policy, state_key=handle.state_key,
                backend=handle.backend,
            )
            att = _attached[handle.name] = _Attachment(segment, arena)
            get_registry().counter("parallel.shm.attaches").inc()
        att.refs += 1
        return att.arena


def attachment_refs(name: str) -> int:
    """Current process-local refcount for segment ``name`` (0 if unmapped)."""
    with _attached_lock:
        att = _attached.get(name)
        return att.refs if att is not None else 0


def release_arena(name: str, unlink: bool = False) -> None:
    """Drop one reference; unmap (and optionally unlink) at zero.

    Unmapping requires that no numpy views into the segment are still
    alive; live views make the close a no-op until the process exits
    (the OS reclaims the mapping then — never an error).
    """
    with _attached_lock:
        att = _attached.get(name)
        if att is None:
            return
        att.refs -= 1
        if att.refs > 0:
            return
        del _attached[name]
        segment, att.arena = att.segment, None  # drop our views first
    try:
        segment.close()
    except BufferError:  # pragma: no cover - caller still holds views
        log.debug("segment %s still has exported views; deferring unmap to exit", name)
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def discard_published_arena(handle: ArenaHandle) -> bool:
    """Unlink a published segment without consuming its contents.

    The graceful-shutdown drain path: a worker finished and published
    its partition arena, but the interrupted map will never hand the
    handle to a consumer.  Attaching + closing + unlinking here releases
    the segment immediately instead of leaving it to the resource
    tracker's at-exit sweep (which, in a long-lived daemon, may be days
    away).  Returns True when a segment was actually unlinked.
    """
    if _shared_memory is None:  # pragma: no cover
        return False
    try:
        segment = _shared_memory.SharedMemory(name=handle.name)
    except (OSError, ValueError):
        return False  # already gone (publisher crashed, or double discard)
    try:
        segment.close()
    finally:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - racing another unlink
            pass
    get_registry().counter("parallel.shm.discards").inc()
    return True


def consume_published_arena(handle: ArenaHandle) -> RoutingArena | None:
    """Copy a worker-published arena out of shared memory and destroy it.

    The parent-side half of the warm backhaul: attach, copy the pools
    onto the parent heap (one memcpy), close the mapping and unlink the
    segment.  Returns ``None`` when the segment cannot be attached (the
    publisher died before the name reached us) — callers recompute the
    partition from ``handle.dests``.
    """
    if _shared_memory is None:  # pragma: no cover
        return None
    try:
        segment = _shared_memory.SharedMemory(name=handle.name)
    except (OSError, ValueError) as exc:
        log.warning("could not attach published arena %s (%s)", handle.name, exc)
        return None
    get_registry().counter("parallel.shm.attaches").inc()
    try:
        arena = RoutingArena.from_buffer(
            handle.graph_n, segment.buf, list(handle.layout), copy=True,
            policy=handle.policy, state_key=handle.state_key,
            backend=handle.backend,
        )
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
    return arena
