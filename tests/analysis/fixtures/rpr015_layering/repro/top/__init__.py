"""Layer-3 package whose submodules form an eager cycle."""
