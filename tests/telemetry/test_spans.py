"""Tracer semantics and Chrome-trace JSON shape."""

from __future__ import annotations

import json

from repro.telemetry.spans import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    use_tracer,
)


class TestTracer:
    def test_span_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("outer", label="x"):
            with tracer.span("inner"):
                pass
        events = tracer.events()
        assert [e.name for e in events] == ["inner", "outer"]  # completion order
        outer = events[1]
        assert outer.args == {"label": "x"}
        assert outer.duration_us >= events[0].duration_us

    def test_nesting_by_timestamps(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()
        assert outer.start_us <= inner.start_us
        assert outer.start_us + outer.duration_us >= inner.start_us + inner.duration_us

    def test_chrome_trace_shape(self):
        tracer = Tracer()
        with tracer.span("round", index=3):
            pass
        trace = tracer.to_chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        (event,) = trace["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "round"
        assert event["args"] == {"index": 3}
        for key in ("ts", "dur", "pid", "tid"):
            assert isinstance(event[key], (int, float))
        json.dumps(trace)  # must be serialisable as-is

    def test_write_chrome_trace_and_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        tracer.write_chrome_trace(trace_path)
        tracer.write_jsonl(jsonl_path)
        loaded = json.loads(trace_path.read_text())
        assert len(loaded["traceEvents"]) == 2
        lines = [json.loads(ln) for ln in jsonl_path.read_text().splitlines()]
        assert [ln["name"] for ln in lines] == ["a", "b"]

    def test_add_events_adopts_foreign_spans(self):
        a, b = Tracer(), Tracer()
        with b.span("shipped"):
            pass
        a.add_events(b.events())
        assert [e.name for e in a.events()] == ["shipped"]


class TestNullTracer:
    def test_default_is_noop(self):
        tracer = get_tracer()
        assert not tracer.enabled
        with tracer.span("anything", k=1):
            pass
        assert tracer.events() == []
        assert tracer.to_chrome_trace()["traceEvents"] == []

    def test_use_tracer_restores_previous(self):
        mine = Tracer()
        with use_tracer(mine):
            assert get_tracer() is mine
        assert get_tracer() is NULL_TRACER
