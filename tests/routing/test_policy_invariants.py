"""Property tests: GR2 export invariants hold under *every* policy.

Whatever the preference ranking, export is governed by GR2: an AS
announces a route learned from neighbor ``c`` to neighbor ``a`` iff at
least one of ``a``, ``c`` is its customer.  Two consequences must hold
for every structure any registered policy builds:

- **no valley-free violations**: a node routing via a peer or provider
  must be using a route that its next hop learned from a customer (or
  the next hop's own prefix);
- **customer routes are always exported**: a node with a customer (or
  self) route makes *every* neighbor reachable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings

from repro.routing.policy import RouteClass, available_policies, get_policy
from repro.routing.reference import ConvergenceError

from tests.strategies import graphs_with_security

_CUSTOMER = int(RouteClass.CUSTOMER)
_SELF = int(RouteClass.SELF)
_UNREACHABLE = int(RouteClass.UNREACHABLE)


def _build_all(graph, policy, node_secure):
    """Structures for every destination (skip oscillating instances)."""
    try:
        return policy.build_many(
            graph, list(range(graph.n)),
            node_secure=node_secure, breaks_ties=node_secure,
        )
    except ConvergenceError:
        assume(False)


def _check_gr2(graph, dr, dest) -> None:
    n = graph.n
    for u in range(n):
        if u == dest or dr.cls[u] == _UNREACHABLE:
            continue
        for v in dr.tiebreak_set(u):
            v = int(v)
            cls_v = _SELF if v == dest else int(dr.cls[v])
            # the candidate must actually be a neighbor, with the class
            # the structure claims
            if dr.cls[u] == _CUSTOMER:
                assert v in graph.customers[u], (dest, u, v)
            elif dr.cls[u] == int(RouteClass.PEER):
                assert v in graph.peers[u], (dest, u, v)
            else:
                assert v in graph.providers[u], (dest, u, v)
            # GR2 at the announcer: v may send this route to u only if
            # u is v's customer or the route came from v's customer
            if v not in graph.providers[u]:  # u is not v's customer
                assert cls_v in (_CUSTOMER, _SELF), (
                    "valley-free violation", dest, u, v, cls_v,
                )


def _check_customer_routes_exported(graph, dr, dest) -> None:
    for v in range(graph.n):
        cls_v = _SELF if v == dest else int(dr.cls[v])
        if cls_v not in (_CUSTOMER, _SELF):
            continue
        for u in (
            list(graph.customers[v]) + list(graph.peers[v]) + list(graph.providers[v])
        ):
            if u == dest:
                continue
            assert dr.cls[u] != _UNREACHABLE, (
                "customer route not exported", dest, v, u,
            )


@pytest.mark.parametrize("policy_name", available_policies())
@given(graphs_with_security(max_nodes=12))
@settings(max_examples=20, deadline=None)
def test_gr2_invariants(policy_name, graph_and_secure):
    graph, secure_list = graph_and_secure
    node_secure = np.zeros(graph.n, dtype=bool)
    node_secure[secure_list] = True
    policy = get_policy(policy_name)
    routings = _build_all(graph, policy, node_secure)
    for dest, dr in enumerate(routings):
        _check_gr2(graph, dr, dest)
        _check_customer_routes_exported(graph, dr, dest)


@pytest.mark.parametrize("policy_name", available_policies())
@given(graphs_with_security(max_nodes=12))
@settings(max_examples=15, deadline=None)
def test_lengths_consistent_with_candidates(policy_name, graph_and_secure):
    """Tiebreak candidates sit exactly one level below their node, so
    the level-synchronous kernels are valid for every policy."""
    graph, secure_list = graph_and_secure
    node_secure = np.zeros(graph.n, dtype=bool)
    node_secure[secure_list] = True
    policy = get_policy(policy_name)
    routings = _build_all(graph, policy, node_secure)
    for dest, dr in enumerate(routings):
        for u in range(graph.n):
            if u == dest or dr.cls[u] == _UNREACHABLE:
                continue
            assert dr.lengths[u] >= 1, (dest, u)
            for v in dr.tiebreak_set(u):
                v = int(v)
                length_v = 0 if v == dest else int(dr.lengths[v])
                assert length_v == dr.lengths[u] - 1, (dest, u, v)
