"""Retry policy with exponential backoff for the parallel engine."""

from __future__ import annotations

import dataclasses
import time
from typing import Callable


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a failed partition.

    ``max_attempts`` counts dispatches of the *same* work (a split
    partition inherits its parent's attempt count); once exhausted, the
    engine degrades to running the items serially in the parent
    process.  Backoff is exponential:
    ``backoff_base * backoff_factor ** (attempt - 1)``, capped at
    ``backoff_max``.  ``sleep`` is injectable so tests run instantly.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before dispatching retry number ``attempt``."""
        if attempt <= 0:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


#: used by the engine when the caller does not pass a policy
DEFAULT_RETRY_POLICY = RetryPolicy()
