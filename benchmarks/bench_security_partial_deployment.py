"""§1.4(5)/§2.2.1: attack impact as deployment progresses.

Paper claims to reproduce:

- status quo: "an arbitrary misbehaving AS can impact about half of
  the ASes in the Internet (around 15K) on average";
- proposed end state (full ISPs + simplex stubs, with validation
  filtering): the only vector left is an ISP lying to its own stubs,
  and 80% of ISPs have < 7 stub customers — impact collapses;
- in between, security-as-tie-break reduces but does not eliminate
  hijacks, which is why §1.4(5) says partial deployment needs care.
"""

from __future__ import annotations

from benchmarks.conftest import case_study_report
from repro.core.state import DeploymentState, StateDeriver
from repro.experiments.report import format_table
from repro.security.metrics import end_state_everyone_secure, impact_for_state

SAMPLES = 12


def test_security_vs_deployment_level(benchmark, env, capsys):
    def measure():
        deriver = StateDeriver(env.graph, stub_breaks_ties=True,
                               compiled=env.cache.compiled)
        report = case_study_report(env)
        rows = []

        empty = DeploymentState(frozenset(), frozenset())
        imp = impact_for_state(env.graph, deriver, empty, samples=SAMPLES, seed=4)
        rows.append(("insecure internet", 0.0, imp.mean_fraction_fooled))

        mid_round = max(1, report.result.num_rounds // 2)
        mid_state = report.result.rounds[mid_round - 1].state
        mid_secure = deriver.node_secure(mid_state).mean()
        imp = impact_for_state(env.graph, deriver, mid_state, samples=SAMPLES, seed=4)
        rows.append((f"mid-deployment (round {mid_round})", float(mid_secure),
                     imp.mean_fraction_fooled))

        final_state = report.result.final_state
        final_secure = deriver.node_secure(final_state).mean()
        imp = impact_for_state(env.graph, deriver, final_state, samples=SAMPLES, seed=4)
        rows.append(("case-study final", float(final_secure),
                     imp.mean_fraction_fooled))

        end = end_state_everyone_secure(env.graph)
        imp = impact_for_state(
            env.graph, deriver, end, samples=SAMPLES, seed=4, drop_unvalidated=True
        )
        rows.append(("end state + validation filtering", 1.0,
                     imp.mean_fraction_fooled))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["state", "secure ASes", "mean fraction fooled"],
            [[name, f"{sec:.2f}", f"{fooled:.3f}"] for name, sec, fooled in rows],
            title="Attack impact vs deployment (random origin hijacks)",
        ))
        print("  paper: ~50% fooled today; end state leaves only each "
              "attacker's own stub cone")

    insecure = rows[0][2]
    end_state = rows[-1][2]
    assert insecure > 0.25            # "about half" at paper scale
    assert end_state < 0.05           # own-stubs-only residual
    assert end_state < insecure
