"""Tests for the fast routing-tree algorithm (Appendix C.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.fast_tree import compute_tree, compute_tree_scalar, subtree_weights
from repro.routing.tree import compute_dest_routing
from repro.topology.graph import ASGraph

from tests.strategies import graphs_with_security


def secure_flags(n: int, secure: list[int]) -> np.ndarray:
    out = np.zeros(n, dtype=bool)
    out[secure] = True
    return out


def diamond_graph() -> ASGraph:
    """source 1 -> {2, 3} -> stub 4: the canonical tiebreak situation."""
    g = ASGraph()
    for asn in (1, 2, 3, 4):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=2)
    g.add_customer_provider(provider=1, customer=3)
    g.add_customer_provider(provider=2, customer=4)
    g.add_customer_provider(provider=3, customer=4)
    return g


class TestSecP:
    def test_secure_node_prefers_secure_path(self):
        g = diamond_graph()
        dr = compute_dest_routing(g, g.index(4))
        for mid in (2, 3):
            secure = secure_flags(g.n, [g.index(1), g.index(mid), g.index(4)])
            tree = compute_tree(dr, secure, secure)
            assert tree.choice[g.index(1)] == g.index(mid)
            assert tree.secure[g.index(1)]

    def test_insecure_node_ignores_security(self):
        g = diamond_graph()
        dr = compute_dest_routing(g, g.index(4))
        secure_via_2 = secure_flags(g.n, [g.index(2), g.index(4)])
        tree_sec = compute_tree(dr, secure_via_2, secure_via_2)
        none = secure_flags(g.n, [])
        tree_plain = compute_tree(dr, none, none)
        # node 1 is insecure in both states: identical hash-based choice
        assert tree_sec.choice[g.index(1)] == tree_plain.choice[g.index(1)]

    def test_breaks_ties_flag_respected(self):
        g = diamond_graph()
        dr = compute_dest_routing(g, g.index(4))
        none = secure_flags(g.n, [])
        tree_plain = compute_tree(dr, none, none)
        hash_choice = int(tree_plain.choice[g.index(1)])
        other = g.index(2) if hash_choice == g.index(3) else g.index(3)
        # secure via the non-hash-preferred middle; node 1 secure but
        # does NOT apply SecP -> sticks with the hash choice
        secure = secure_flags(g.n, [g.index(1), other, g.index(4)])
        no_breaks = secure_flags(g.n, [])
        tree = compute_tree(dr, secure, no_breaks)
        assert tree.choice[g.index(1)] == hash_choice

    def test_path_secure_requires_every_hop(self):
        g = diamond_graph()
        dr = compute_dest_routing(g, g.index(4))
        # destination insecure -> nothing is secure
        secure = secure_flags(g.n, [g.index(1), g.index(2), g.index(3)])
        tree = compute_tree(dr, secure, secure)
        assert not tree.secure.any()

    def test_any_secure_candidate_flag(self):
        g = diamond_graph()
        dr = compute_dest_routing(g, g.index(4))
        secure = secure_flags(g.n, [g.index(2), g.index(4)])
        tree = compute_tree(dr, secure, secure)
        # node 1's candidate 2 has a secure chosen path (2, 4); node 2's
        # candidate is the (secure) destination itself
        assert tree.any_secure_candidate[g.index(1)]
        assert tree.any_secure_candidate[g.index(2)]
        # an insecure destination leaves no secure candidates anywhere
        insecure_dest = secure_flags(g.n, [g.index(1), g.index(2)])
        tree2 = compute_tree(dr, insecure_dest, insecure_dest)
        assert not tree2.any_secure_candidate.any()


class TestPathReconstruction:
    def test_path_from_source(self):
        g = diamond_graph()
        dr = compute_dest_routing(g, g.index(4))
        none = secure_flags(g.n, [])
        tree = compute_tree(dr, none, none)
        path = tree.path_from(g.index(1))
        assert path[0] == g.index(1)
        assert path[-1] == g.index(4)
        assert len(path) == 3

    def test_unreachable_path_empty(self):
        g = diamond_graph()
        g.add_as(99)
        dr = compute_dest_routing(g, g.index(4))
        none = secure_flags(g.n, [])
        tree = compute_tree(dr, none, none)
        assert tree.path_from(g.index(99)) == []


class TestSubtreeWeights:
    def test_diamond_weights(self):
        g = diamond_graph()
        g.set_weight(1, 5.0)
        dr = compute_dest_routing(g, g.index(4))
        none = secure_flags(g.n, [])
        tree = compute_tree(dr, none, none)
        w = subtree_weights(dr, tree, g.weights)
        chosen_mid = int(tree.choice[g.index(1)])
        other_mid = g.index(2) if chosen_mid == g.index(3) else g.index(3)
        # the chosen middle carries 1's weight plus the other mid's unit
        # traffic? no: the other mid routes directly to its customer 4.
        assert w[chosen_mid] == 5.0
        assert w[other_mid] == 0.0
        # the destination's subtree excludes itself but includes everyone else
        assert w[g.index(4)] == pytest.approx(5.0 + 1.0 + 1.0)

    def test_weights_exclude_self(self, small_graph, small_cache):
        dr = small_cache.dest_routing(11)
        none = np.zeros(small_graph.n, dtype=bool)
        tree = compute_tree(dr, none, none)
        w = subtree_weights(dr, tree, small_graph.weights)
        # total at the destination equals all reachable weight minus its own
        reachable = dr.order
        expected = float(small_graph.weights[reachable].sum()) - float(
            small_graph.weights[dr.dest]
        )
        assert w[dr.dest] == pytest.approx(expected)


class TestVectorisedVsScalar:
    @given(graphs_with_security())
    @settings(max_examples=60, deadline=None)
    def test_engines_agree(self, graph_and_secure):
        graph, secure_list = graph_and_secure
        secure = secure_flags(graph.n, secure_list)
        for dest in range(0, graph.n, max(1, graph.n // 4)):
            dr = compute_dest_routing(graph, dest)
            a = compute_tree(dr, secure, secure)
            b = compute_tree_scalar(dr, secure, secure)
            assert (a.choice == b.choice).all()
            assert (a.secure == b.secure).all()
            assert (a.any_secure_candidate == b.any_secure_candidate).all()
