"""AS-graph evolution across deployment epochs (§8.4).

The paper's model freezes the topology and notes: "Because the
time-scale of the deployment process can be quite large (e.g., years),
extensions to our model might also model the evolution of the AS graph
with time, and possibly incorporate issues like the addition of new
edges if secure ASes manage to sign up new customers."

:func:`evolve_graph` applies one epoch of churn — new multihomed stubs
arrive (optionally biased toward secure providers), new peerings form,
and some stub-provider edges move — and
:class:`EvolvingDeployment` interleaves epochs of market-driven
deployment with epochs of growth, carrying the deployer set across
graphs by AS number.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterable

from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole


@dataclasses.dataclass(frozen=True)
class EvolutionConfig:
    """One epoch's worth of topology churn."""

    new_stubs: int = 10
    new_peerings: int = 4
    rehomed_stubs: int = 2
    #: probability a new/rehomed stub insists on at least one *secure*
    #: provider (the §8.4 "secure ASes sign up new customers" effect)
    secure_attraction: float = 0.0
    providers_per_stub: tuple[float, float, float] = (0.5, 0.38, 0.12)

    def __post_init__(self) -> None:
        if not 0.0 <= self.secure_attraction <= 1.0:
            raise ValueError("secure_attraction must be in [0, 1]")
        for field in ("new_stubs", "new_peerings", "rehomed_stubs"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")


def _provider_count(rng: random.Random, dist: tuple[float, float, float]) -> int:
    r = rng.random()
    if r < dist[0]:
        return 1
    if r < dist[0] + dist[1]:
        return 2
    return 3


def _pick_providers(
    rng: random.Random,
    isps: list[int],
    secure_isps: list[int],
    count: int,
    secure_attraction: float,
) -> list[int]:
    chosen: set[int] = set()
    if secure_isps and rng.random() < secure_attraction:
        chosen.add(rng.choice(secure_isps))
    guard = 0
    while len(chosen) < min(count, len(isps)) and guard < 100 * count:
        guard += 1
        chosen.add(rng.choice(isps))
    return list(chosen)


def evolve_graph(
    graph: ASGraph,
    config: EvolutionConfig,
    secure_provider_asns: Iterable[int] = (),
    seed: int = 0,
) -> ASGraph:
    """Return an evolved *copy* of ``graph`` after one epoch of churn."""
    rng = random.Random(seed)
    out = graph.copy()
    roles = out.roles
    isps = [out.asn(i) for i in range(out.n) if roles[i] == int(ASRole.ISP)]
    stubs = [out.asn(i) for i in range(out.n) if roles[i] == int(ASRole.STUB)]
    secure_isps = [a for a in secure_provider_asns if a in out and a in set(isps)]
    if not isps:
        return out

    next_asn = max(out.asns) + 1
    for _ in range(config.new_stubs):
        asn = next_asn
        next_asn += 1
        out.add_as(asn)
        count = _provider_count(rng, config.providers_per_stub)
        for provider in _pick_providers(
            rng, isps, secure_isps, count, config.secure_attraction
        ):
            out.add_customer_provider(provider=provider, customer=asn)
        stubs.append(asn)

    for _ in range(config.rehomed_stubs):
        if not stubs:
            break
        stub = rng.choice(stubs)
        providers = out.providers_of(stub)
        if len(providers) <= 1:
            continue  # never disconnect a single-homed stub
        out.remove_edge(stub, rng.choice(providers))
        new_provider = _pick_providers(rng, isps, secure_isps, 1,
                                       config.secure_attraction)
        for provider in new_provider:
            if not out.has_edge(stub, provider):
                out.add_customer_provider(provider=provider, customer=stub)

    for _ in range(config.new_peerings):
        if len(isps) < 2:
            break
        a, b = rng.sample(isps, 2)
        if not out.has_edge(a, b):
            out.add_peering(a, b)

    out.validate()
    return out


@dataclasses.dataclass
class EpochRecord:
    """Outcome of one deploy-then-grow epoch."""

    epoch: int
    num_ases: int
    num_secure_ases: int
    deployer_asns: frozenset[int]

    @property
    def fraction_secure(self) -> float:
        return self.num_secure_ases / self.num_ases if self.num_ases else 0.0


class EvolvingDeployment:
    """Interleave market-driven deployment with topology growth.

    Each epoch: run the deployment game to termination on the current
    graph (early adopters = carried-over deployers), then evolve the
    topology.  Deployers persist by AS number; new stubs inherit
    simplex security from their providers as usual.
    """

    def __init__(
        self,
        graph: ASGraph,
        early_adopter_asns: Iterable[int],
        evolution: EvolutionConfig,
        simulation_config=None,
        seed: int = 0,
    ):
        from repro.core.config import SimulationConfig

        self.graph = graph
        self.evolution = evolution
        self.simulation_config = simulation_config or SimulationConfig()
        self.deployer_asns = frozenset(early_adopter_asns)
        self.seed = seed

    def run(self, epochs: int) -> list[EpochRecord]:
        """Run ``epochs`` deploy-then-grow cycles; returns their records."""
        from repro.core.dynamics import DeploymentSimulation

        records: list[EpochRecord] = []
        for epoch in range(1, epochs + 1):
            sim = DeploymentSimulation(
                self.graph, self.deployer_asns, self.simulation_config
            )
            result = sim.run()
            self.deployer_asns = frozenset(
                self.graph.asn(i) for i in result.final_state.deployers
            )
            records.append(
                EpochRecord(
                    epoch=epoch,
                    num_ases=self.graph.n,
                    num_secure_ases=int(result.final_node_secure.sum()),
                    deployer_asns=self.deployer_asns,
                )
            )
            self.graph = evolve_graph(
                self.graph,
                self.evolution,
                secure_provider_asns=self.deployer_asns,
                seed=self.seed + epoch,
            )
        return records
