"""Tests for relationship enums and their conventions."""

from __future__ import annotations

from repro.topology.relationships import (
    CAIDA_PEER_TO_PEER,
    CAIDA_PROVIDER_TO_CUSTOMER,
    ASRole,
    Relationship,
)


class TestRelationship:
    def test_flipped_inverts_customer_provider(self):
        assert Relationship.CUSTOMER.flipped() is Relationship.PROVIDER
        assert Relationship.PROVIDER.flipped() is Relationship.CUSTOMER

    def test_flipped_peer_is_peer(self):
        assert Relationship.PEER.flipped() is Relationship.PEER

    def test_caida_codes(self):
        assert CAIDA_PROVIDER_TO_CUSTOMER == -1
        assert CAIDA_PEER_TO_PEER == 0


class TestASRole:
    def test_roles_are_distinct(self):
        assert len({ASRole.STUB, ASRole.ISP, ASRole.CP}) == 3

    def test_int_values_stable(self):
        # these values are baked into numpy role arrays
        assert int(ASRole.STUB) == 0
        assert int(ASRole.ISP) == 1
        assert int(ASRole.CP) == 2
