"""Tests for table rendering."""

from __future__ import annotations

from repro.experiments.report import format_percent, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.5], [2.0], [0.001]])
        assert "0.5" in out
        assert "2" in out
        assert "0.0010" in out

    def test_empty_rows(self):
        out = format_table(["h"], [])
        assert "h" in out


def test_format_percent():
    assert format_percent(0.853) == "85.3%"
    assert format_percent(0.5, digits=0) == "50%"


def test_format_series():
    assert format_series("x", [1, 2], "{:d}") == "x: 1 2"
