"""Shared fixtures: small generated topologies and warmed caches."""

from __future__ import annotations

import pytest

from repro.experiments.setup import ExperimentEnv, build_environment
from repro.routing.cache import RoutingCache
from repro.topology.generator import GeneratedTopology, generate_topology
from repro.topology.graph import ASGraph
from repro.topology.traffic import apply_traffic_model


@pytest.fixture(scope="session")
def small_topology() -> GeneratedTopology:
    """A 200-AS synthetic Internet (shared, treat as read-only)."""
    return generate_topology(n=200, seed=3)


@pytest.fixture(scope="session")
def small_graph(small_topology: GeneratedTopology) -> ASGraph:
    graph = small_topology.graph
    apply_traffic_model(graph, 0.10)
    return graph


@pytest.fixture(scope="session")
def small_cache(small_graph: ASGraph) -> RoutingCache:
    cache = RoutingCache(small_graph)
    cache.warm()
    return cache


@pytest.fixture(scope="session")
def medium_env() -> ExperimentEnv:
    """A 400-AS environment for experiment-level tests (read-only)."""
    return build_environment(n=400, seed=5, x=0.10, warm=True)
