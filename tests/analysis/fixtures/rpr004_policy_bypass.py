"""Golden fixture for RPR004 (policy-registry bypass): positive + waived + clean."""

import repro.routing.policy as policy_mod
from repro.routing.policy import RoutingPolicy, available_policies, get_policy


def bad_construct() -> object:
    return RoutingPolicy(name="custom", ranking=("LP", "SP", "SecP"))  # expect: RPR004


def bad_qualified_construct() -> object:
    return policy_mod.RoutingPolicy(name="custom", ranking=())  # expect: RPR004


def bad_registry_peek() -> dict:
    return policy_mod._REGISTRY  # expect: RPR004


def waived_construct() -> object:
    return RoutingPolicy(name="x", ranking=())  # repro-lint: disable=RPR004 -- fixture waiver


def clean_lookup() -> object:
    return get_policy("security_3rd")


def clean_enumerate() -> list:
    return available_policies()
