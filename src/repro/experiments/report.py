"""Plain-text table rendering for experiment output.

The benchmark harness regenerates the paper's tables and figure series
as aligned text so that runs are comparable to the paper at a glance
(EXPERIMENTS.md records paper-vs-measured for each).  File output goes
through :func:`write_report`, which writes atomically — there is no
direct-truncate write path left in the reporting layer.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.runtime.atomic import atomic_write_text


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.01:
            return f"{cell:.4f}"
        return f"{cell:.3f}".rstrip("0").rstrip(".") if cell % 1 else f"{cell:.0f}"
    return str(cell)


def format_percent(value: float, digits: int = 1) -> str:
    """``0.853`` -> ``"85.3%"``."""
    return f"{value * 100:.{digits}f}%"


def format_series(label: str, values: Sequence[float], fmt: str = "{:.3g}") -> str:
    """One-line labelled series, e.g. for per-round counts."""
    return f"{label}: " + " ".join(fmt.format(v) for v in values)


def write_report(path: str | Path, text: str) -> None:
    """Write rendered report text to ``path`` atomically.

    A trailing newline is ensured; an interrupt mid-write leaves any
    previous report intact rather than a truncated one.
    """
    if not text.endswith("\n"):
        text += "\n"
    atomic_write_text(path, text)
