"""Tests for soBGP topology validation."""

from __future__ import annotations

import pytest

from repro.protocol.messages import Announcement
from repro.protocol.rpki import Prefix, RPKI
from repro.protocol.sobgp import LinkCertificate, TopologyDatabase

PFX = Prefix("192.0.2.0", 24)


@pytest.fixture()
def db() -> tuple[RPKI, TopologyDatabase]:
    rpki = RPKI(seed=b"sobgp")
    for asn in (1, 2, 3, 4):
        rpki.register_as(asn)
    rpki.issue_roa(PFX, 1)
    database = TopologyDatabase(rpki)
    database.certify_link(1, 2)
    database.certify_link(2, 3)
    return rpki, database


class TestLinkCertificates:
    def test_certified_links_symmetric(self, db):
        _, database = db
        assert database.link_certified(1, 2)
        assert database.link_certified(2, 1)
        assert not database.link_certified(1, 3)

    def test_forged_certificate_rejected(self, db):
        rpki, database = db
        fake = LinkCertificate(a=1, b=4, signature_a=b"x" * 32, signature_b=b"y" * 32)
        assert not database.add_certificate(fake)
        assert not database.link_certified(1, 4)

    def test_half_signed_certificate_rejected(self, db):
        rpki, database = db
        payload = LinkCertificate.payload(1, 4)
        half = LinkCertificate(
            a=1, b=4, signature_a=rpki.sign(1, payload), signature_b=b"z" * 32
        )
        assert not database.add_certificate(half)

    def test_valid_external_certificate_accepted(self, db):
        rpki, database = db
        payload = LinkCertificate.payload(3, 4)
        cert = LinkCertificate(
            a=3, b=4,
            signature_a=rpki.sign(3, payload),
            signature_b=rpki.sign(4, payload),
        )
        assert database.add_certificate(cert)
        assert database.link_certified(3, 4)


class TestPathValidation:
    def test_existing_path_valid(self, db):
        _, database = db
        assert database.validate_path(Announcement(prefix=PFX, path=(3, 2, 1)))

    def test_fabricated_link_invalid(self, db):
        """The soBGP guarantee: paths through non-existent links fail."""
        _, database = db
        assert not database.validate_path(Announcement(prefix=PFX, path=(3, 1)))

    def test_wrong_origin_invalid(self, db):
        _, database = db
        # path exists physically but 2 is not authorized for the prefix
        assert not database.validate_path(Announcement(prefix=PFX, path=(3, 2)))

    def test_single_hop_origin_only(self, db):
        _, database = db
        assert database.validate_path(Announcement(prefix=PFX, path=(1,)))
