"""Map-reduce substrate (laptop-scale stand-in for DryadLINQ, App. C.3)."""

from repro.parallel.engine import (
    MapReduceEngine,
    ProcessEngine,
    SerialEngine,
    default_engine,
    parallel_warm_cache,
)
from repro.parallel.partition import chunk, partition

__all__ = [
    "MapReduceEngine",
    "ProcessEngine",
    "SerialEngine",
    "chunk",
    "default_engine",
    "parallel_warm_cache",
    "partition",
]
