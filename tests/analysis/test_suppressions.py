"""Suppression machinery: waivers, stale-waiver findings, select interplay."""

from __future__ import annotations

from repro.analysis import get_rules, lint_source
from repro.analysis.findings import UNUSED_SUPPRESSION
from repro.analysis.suppressions import SuppressionTable


class TestDirectiveParsing:
    def test_single_code(self):
        table = SuppressionTable.from_source('x = open("f", "w")  # repro-lint: disable=RPR001\n')
        assert table.codes_on_line(1) == frozenset({"RPR001"})

    def test_multiple_codes_and_trailing_reason(self):
        table = SuppressionTable.from_source(
            "y = 1  # repro-lint: disable=RPR001, RPR002 -- reason text\n"
        )
        assert table.codes_on_line(1) == frozenset({"RPR001", "RPR002"})

    def test_directive_inside_string_literal_is_ignored(self):
        table = SuppressionTable.from_source('s = "# repro-lint: disable=RPR001"\n')
        assert table.codes_on_line(1) == frozenset()

    def test_usage_tracking(self):
        table = SuppressionTable.from_source("x = 1  # repro-lint: disable=RPR001\n")
        assert not table.is_suppressed(1, "RPR002")
        assert table.is_suppressed(1, "RPR001")
        assert table.unused(frozenset({"RPR001"})) == []

    def test_unused_reported_only_for_active_codes(self):
        table = SuppressionTable.from_source("x = 1  # repro-lint: disable=RPR001\n")
        assert table.unused(frozenset({"RPR001"})) == [(1, "RPR001")]
        assert table.unused(frozenset({"RPR002"})) == []


class TestSuppressionEndToEnd:
    def test_waived_violation_produces_no_findings(self):
        source = 'fh = open("f", "w")  # repro-lint: disable=RPR001\n'
        assert lint_source(source) == []

    def test_unused_suppression_is_itself_a_finding(self):
        source = "x = 1  # repro-lint: disable=RPR003\n"
        findings = lint_source(source)
        assert [f.code for f in findings] == [UNUSED_SUPPRESSION]
        assert findings[0].line == 1
        assert "RPR003" in findings[0].message

    def test_wrong_code_does_not_waive(self):
        source = 'fh = open("f", "w")  # repro-lint: disable=RPR002\n'
        assert sorted(f.code for f in lint_source(source)) == ["RPR001", UNUSED_SUPPRESSION]

    def test_select_subset_does_not_misreport_other_waivers(self):
        # Running only RPR002 must not call RPR001's waiver stale.
        source = 'fh = open("f", "w")  # repro-lint: disable=RPR001\n'
        rules = get_rules(select=frozenset({"RPR002"}))
        assert lint_source(source, rules=rules) == []
