"""Figure 4: normalised utility of focal ISPs over the rounds (§5.5).

Paper: AS 8359 loses 3% of its starting utility, deploys, spikes to
125%, and settles back near 100%; the never-deploying AS 8342 ends 4%
down.  Shape: stealer spikes then reverts; holdout ends below start.
"""

from __future__ import annotations

from benchmarks.conftest import case_study_report
from repro.experiments.report import format_series


def test_fig04_focal_utilities(benchmark, env, capsys):
    report = benchmark.pedantic(
        lambda: case_study_report(env), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print("Fig 4: focal ISP utilities, normalised by starting utility")
        for label, series in report.fig4_utilities.items():
            print("  " + format_series(label, series, "{:.3f}"))
    assert report.fig4_utilities
    for label, series in report.fig4_utilities.items():
        if label.startswith("stealer"):
            assert max(series) > 1.0
        if label.startswith("holdout"):
            assert series[-1] < 1.0
