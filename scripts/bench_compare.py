#!/usr/bin/env python3
"""Diff two pytest-benchmark JSON files and report kernel regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]

Prints a per-benchmark table of runtimes and flags every benchmark that
regressed by more than ``--threshold`` (default 10%).  Exits non-zero
when regressions are found, so the comparison can gate a local
workflow — CI runs it as a *non-blocking* smoke signal (shared runners
are too noisy to make hard promises about wall-clock).

``--stat`` picks the statistic under comparison: ``mean`` (default) or
``min``.  On contended machines the mean of a microsecond-scale bench
is dominated by scheduler outliers; ``min`` is the robust choice there
(it approximates the noise-free runtime, which is why pytest-benchmark
sorts by it).

Benchmarks present in only one file are listed but never counted as
regressions (new benchmarks appear, old ones retire).  ``--require
SUBSTRING`` (repeatable) additionally fails the gate when the *current*
file has no benchmark containing the substring — so a rename or an
accidentally-skipped kernel bench cannot silently drop coverage the
gate is supposed to provide (e.g. ``--require kernel_policy`` keeps the
default-policy kernels under the regression threshold).

``--speedup FAST:SLOW:RATIO`` (repeatable) asserts a *within-file*
ratio on the current snapshot: the benchmark whose name contains FAST
must be at least RATIO times faster than the one containing SLOW.  This
is how the compiled kernel tier's headline claim (>= 3x over numpy on
batched trees) is pinned to the committed snapshot instead of living in
prose.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_stats(path: str, stat: str = "mean") -> dict[str, float]:
    """``{benchmark name: stat seconds}`` from a pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    out: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        out[bench["name"]] = float(bench["stats"][stat])
    return out


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.2f}s "


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
    only: str | None = None,
) -> list[str]:
    """Print the comparison table; return the regressed benchmark names."""
    names = sorted(set(baseline) | set(current))
    if only:
        names = [n for n in names if only in n]
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'speedup':>8}")
    regressions: list[str] = []
    for name in names:
        old, new = baseline.get(name), current.get(name)
        if old is None or new is None:
            status = "(baseline only)" if new is None else "(new)"
            have = fmt_seconds(old if new is None else new)
            print(f"{name:<{width}}  {have:>10}  {status}")
            continue
        speedup = old / new if new else float("inf")
        marker = ""
        if new > old * (1.0 + threshold):
            marker = f"  REGRESSION (>{threshold:.0%})"
            regressions.append(name)
        print(
            f"{name:<{width}}  {fmt_seconds(old):>10}  {fmt_seconds(new):>10}"
            f"  {speedup:7.2f}x{marker}"
        )
    return regressions


def _find_one(stats: dict[str, float], needle: str) -> tuple[str, float] | None:
    """The unique benchmark containing ``needle`` (shortest name wins ties)."""
    matches = sorted((name for name in stats if needle in name), key=len)
    if not matches:
        return None
    return matches[0], stats[matches[0]]


def check_speedups(stats: dict[str, float], specs: list[str]) -> list[str]:
    """Verify each ``FAST:SLOW:RATIO`` spec; return failure messages."""
    failures: list[str] = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            failures.append(f"malformed --speedup {spec!r} (want FAST:SLOW:RATIO)")
            continue
        fast_needle, slow_needle, raw_ratio = parts
        try:
            want = float(raw_ratio)
        except ValueError:
            failures.append(f"malformed --speedup ratio {raw_ratio!r}")
            continue
        fast = _find_one(stats, fast_needle)
        slow = _find_one(stats, slow_needle)
        if fast is None or slow is None:
            missing = fast_needle if fast is None else slow_needle
            failures.append(f"--speedup {spec}: no benchmark matches {missing!r}")
            continue
        got = slow[1] / fast[1] if fast[1] else float("inf")
        print(
            f"speedup {fast[0]} vs {slow[0]}: {got:.2f}x (required >= {want:.2f}x)"
        )
        if got < want:
            failures.append(
                f"--speedup {spec}: {fast[0]} is only {got:.2f}x faster than "
                f"{slow[0]} (required >= {want:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="older BENCH_*.json")
    parser.add_argument("current", help="newer BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="fractional slowdown that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--only", default=None,
        help="restrict the comparison to benchmark names containing this substring",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="SUBSTRING",
        help="fail unless the current file has a benchmark containing "
             "SUBSTRING (repeatable); guards against silently dropped coverage",
    )
    parser.add_argument(
        "--stat", choices=("mean", "min"), default="mean",
        help="statistic under comparison; min resists scheduler outliers "
             "on contended machines (default mean)",
    )
    parser.add_argument(
        "--speedup", action="append", default=[], metavar="FAST:SLOW:RATIO",
        help="assert the current benchmark containing FAST runs at least "
             "RATIO times faster than the one containing SLOW (repeatable)",
    )
    args = parser.parse_args(argv)
    current = load_stats(args.current, args.stat)
    speedup_failures = check_speedups(current, args.speedup)
    if speedup_failures:
        for failure in speedup_failures:
            print(failure)
        return 1
    missing = [
        needle for needle in args.require
        if not any(needle in name for name in current)
    ]
    if missing:
        print(
            f"{args.current}: no benchmark matches required substring(s): "
            f"{', '.join(missing)}"
        )
        return 1
    regressions = compare(
        load_stats(args.baseline, args.stat), current, args.threshold,
        args.only,
    )
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
