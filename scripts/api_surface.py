#!/usr/bin/env python
"""Public-API surface ratchet: drift requires an explicit ``--update``.

``sbgp-lint --program`` (RPR017) already fails on public symbols nobody
references; this script pins the *shape* of what remains.  The committed
snapshot ``scripts/api_baseline.json`` records every public top-level
symbol of ``repro.*`` — name, kind, signature, and public methods for
classes — in the ``repro.api-surface/1`` JSON shape produced by
:func:`repro.analysis.program.collect_surface`.

* default: diff the live surface against the baseline and FAIL (exit 1)
  on any drift — added, removed, or changed symbols — printing the diff;
* ``--update``: rewrite the baseline to match the live surface (atomic
  write); the diff lands in review where API change belongs;
* ``--require``: CI mode — a missing baseline is a hard failure (exit
  2) instead of a hint to generate one.

Exit codes: 0 surface matches, 1 drift (or missing baseline), 2 usage /
missing baseline under ``--require``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "scripts" / "api_baseline.json"

#: format marker of the committed snapshot (mirrors
#: repro.analysis.program.api.SURFACE_FORMAT, asserted in _bootstrap).
SURFACE_FORMAT = "repro.api-surface/1"


def _bootstrap() -> None:
    """Put src/ on sys.path inside a function so importing this script
    stays side-effect-free (RPR009)."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.analysis.program.api import SURFACE_FORMAT as canonical

    if canonical != SURFACE_FORMAT:  # pragma: no cover - drift guard
        raise RuntimeError(
            f"surface format drift: script {SURFACE_FORMAT!r} vs package {canonical!r}"
        )


def live_surface() -> dict[str, dict[str, object]]:
    _bootstrap()
    from repro.analysis.engine import iter_python_files, module_for_path
    from repro.analysis.program import ProgramIndex, collect_surface

    parsed = []
    for path in iter_python_files([REPO_ROOT / "src" / "repro"]):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as exc:  # surface of an unparseable tree is meaningless
            raise RuntimeError(f"cannot parse {path}: {exc}") from exc
        parsed.append((str(path), module_for_path(path), tree))
    return collect_surface(ProgramIndex.build(parsed, []))


def load_baseline() -> dict[str, dict[str, object]]:
    payload = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    if payload.get("format") != SURFACE_FORMAT:
        raise RuntimeError(
            f"{BASELINE_PATH}: unrecognised format {payload.get('format')!r}"
        )
    return payload["surface"]


def write_baseline(surface: dict[str, dict[str, object]]) -> None:
    _bootstrap()
    from repro.runtime.atomic import atomic_write_text

    payload = {"format": SURFACE_FORMAT, "surface": surface}
    atomic_write_text(BASELINE_PATH, json.dumps(payload, indent=1, sort_keys=True) + "\n")


def diff_surface(
    baseline: dict[str, dict[str, object]], live: dict[str, dict[str, object]]
) -> list[str]:
    """Human-readable drift lines, empty when the surfaces match."""
    out: list[str] = []
    for module in sorted(set(baseline) | set(live)):
        base_syms = baseline.get(module, {})
        live_syms = live.get(module, {})
        for name in sorted(set(base_syms) | set(live_syms)):
            if name not in live_syms:
                out.append(f"removed  {module}.{name}")
            elif name not in base_syms:
                out.append(f"added    {module}.{name}")
            elif base_syms[name] != live_syms[name]:
                out.append(f"changed  {module}.{name}")
                before, after = base_syms[name], live_syms[name]
                for key in ("kind", "signature"):
                    if before.get(key) != after.get(key):
                        out.append(f"           {key}: {before.get(key)!r} -> {after.get(key)!r}")
                b_meth = before.get("methods") or {}
                a_meth = after.get("methods") or {}
                for meth in sorted(set(b_meth) | set(a_meth)):
                    if b_meth.get(meth) != a_meth.get(meth):
                        out.append(
                            f"           .{meth}: {b_meth.get(meth)!r} -> {a_meth.get(meth)!r}"
                        )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite scripts/api_baseline.json to the live surface",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="CI mode: a missing baseline exits 2 instead of hinting",
    )
    args = parser.parse_args(argv)

    try:
        live = live_surface()
    except RuntimeError as exc:
        print(f"api surface: {exc}", file=sys.stderr)
        return 2

    if args.update:
        write_baseline(live)
        n_symbols = sum(len(v) for v in live.values())
        print(
            f"api baseline updated: {BASELINE_PATH.relative_to(REPO_ROOT)} "
            f"({len(live)} modules, {n_symbols} public symbols)"
        )
        return 0

    if not BASELINE_PATH.is_file():
        msg = (
            f"{BASELINE_PATH.relative_to(REPO_ROOT)} is missing; generate it with "
            "`python scripts/api_surface.py --update`"
        )
        print(f"api surface: {msg}", file=sys.stderr)
        return 2 if args.require else 1

    try:
        baseline = load_baseline()
    except (RuntimeError, ValueError, KeyError) as exc:
        print(f"api surface: {exc}", file=sys.stderr)
        return 2

    drift = diff_surface(baseline, live)
    if drift:
        print("public API surface drifted from scripts/api_baseline.json:")
        for line in drift:
            print(f"  {line}")
        print(
            "if the change is intentional, lock it in with "
            "`python scripts/api_surface.py --update` and commit the diff."
        )
        return 1
    n_symbols = sum(len(v) for v in live.values())
    print(f"api surface OK ({len(live)} modules, {n_symbols} public symbols)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
