"""Snapshot merge, Prometheus rendering, and file round-trips."""

from __future__ import annotations

import pytest

from repro.telemetry.export import (
    load_metrics,
    merge_snapshots,
    render_prometheus,
    summary_rows,
    write_metrics,
)
from repro.telemetry.metrics import MetricsRegistry


def _snap(counter=0.0, obs=()):
    reg = MetricsRegistry()
    if counter:
        reg.counter("work.items").inc(counter)
    for v in obs:
        reg.histogram("work.seconds", bounds=(1.0, 10.0)).observe(v)
    return reg.snapshot()


class TestMerge:
    def test_counters_sum(self):
        merged = merge_snapshots([_snap(counter=2), _snap(counter=3)])
        assert merged["counters"]["work.items"] == 5

    def test_histograms_add_bucketwise(self):
        merged = merge_snapshots([_snap(obs=(0.5, 5.0)), _snap(obs=(0.5, 99.0))])
        hist = merged["histograms"]["work.seconds"]
        assert hist["counts"] == [2, 1, 1]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(105.0)

    def test_multi_worker_merge_matches_registry_merge(self):
        # The parent-side registry fold and the pure-dict fold agree.
        workers = [_snap(counter=i, obs=(float(i),)) for i in (1, 2, 3)]
        merged = merge_snapshots(workers)
        parent = MetricsRegistry()
        for snap in workers:
            parent.merge_snapshot(snap)
        assert parent.snapshot() == merged

    def test_mismatched_bounds_rejected(self):
        a = _snap(obs=(0.5,))
        b = _snap(obs=(0.5,))
        b["histograms"]["work.seconds"]["bounds"] = [2.0, 20.0]
        with pytest.raises(ValueError, match="bounds differ"):
            merge_snapshots([a, b])

    def test_gauges_last_write_wins(self):
        a = {"gauges": {"depth": 3}}
        b = {"gauges": {"depth": 7}}
        assert merge_snapshots([a, b])["gauges"]["depth"] == 7


class TestPrometheus:
    def test_rendering(self):
        reg = MetricsRegistry()
        reg.counter("routing.cache.hits").inc(4)
        reg.gauge("engine.live_workers").set(2)
        reg.histogram("sim.round_seconds", bounds=(1.0,)).observe(0.5)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_routing_cache_hits counter" in text
        assert "repro_routing_cache_hits_total 4" in text
        assert "repro_engine_live_workers 2" in text
        assert 'repro_sim_round_seconds_bucket{le="1"} 1' in text
        assert 'repro_sim_round_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_sim_round_seconds_count 1" in text
        assert text.endswith("\n")


class TestFiles:
    def test_write_load_round_trip(self, tmp_path):
        snap = _snap(counter=5, obs=(0.5,))
        path = tmp_path / "metrics.json"
        write_metrics(path, snap)
        assert load_metrics(path) == snap

    def test_load_rejects_wrong_format(self, tmp_path):
        from repro.runtime.atomic import atomic_write_json
        from repro.runtime.errors import SchemaError

        path = tmp_path / "bad.json"
        atomic_write_json(path, {"format": "something-else"})
        with pytest.raises(SchemaError):
            load_metrics(path)


class TestSummary:
    def test_one_row_per_instrument(self):
        snap = _snap(counter=5, obs=(0.5, 2.0))
        rows = summary_rows(snap)
        names = [row[0] for row in rows]
        assert names == ["work.items", "work.seconds"]
        kinds = [row[1] for row in rows]
        assert kinds == ["counter", "histogram"]
