"""Extension (§8.4): deployment on an evolving AS graph.

The paper suggests modelling "the addition of new edges if secure ASes
manage to sign up new customers".  The bench interleaves deployment
epochs with topology growth, comparing neutral growth against growth
where new stubs insist on a secure provider.  Expected shape: secure
attraction keeps the secure fraction at least as high as neutral
growth as the graph expands.
"""

from __future__ import annotations

from repro.core.config import SimulationConfig
from repro.experiments.report import format_table
from repro.topology.evolution import EvolutionConfig, EvolvingDeployment
from repro.topology.generator import generate_topology

EPOCHS = 3


def test_evolution_secure_attraction(benchmark, capsys):
    def run_both():
        out = {}
        for attraction in (0.0, 1.0):
            base = generate_topology(n=250, seed=77)
            driver = EvolvingDeployment(
                base.graph,
                early_adopter_asns=base.tier1_asns[:4],
                evolution=EvolutionConfig(
                    new_stubs=15, new_peerings=4, rehomed_stubs=3,
                    secure_attraction=attraction,
                ),
                simulation_config=SimulationConfig(theta=0.10, max_rounds=30),
                seed=5,
            )
            out[attraction] = driver.run(EPOCHS)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for attraction, records in results.items():
        for r in records:
            rows.append([
                f"{attraction:.0f}", r.epoch, r.num_ases,
                r.num_secure_ases, f"{r.fraction_secure:.3f}",
            ])
    with capsys.disabled():
        print()
        print(format_table(
            ["secure attraction", "epoch", "ASes", "secure", "fraction"],
            rows, title="Evolution: growth with/without secure-provider pull",
        ))

    neutral = results[0.0][-1]
    attracted = results[1.0][-1]
    assert attracted.num_ases == neutral.num_ases
    assert attracted.fraction_secure >= neutral.fraction_secure - 0.05
