"""Attack simulation under partial S*BGP deployment.

The paper quantifies security only indirectly (fraction of secure
paths, Fig. 9) and flags attack-resilience quantification as future
work (§6.4), while §2.2.1 claims the end state is strong: today "an
arbitrary misbehaving AS can impact about half of the ASes in the
Internet (around 15K) on average [15]", whereas with full-ISP + simplex
deployment "the only open attack vector is for ISPs to announce false
paths to their own stub customers".

This module makes those claims measurable, for every registered
:class:`~repro.security.scenarios.AttackScenario` and every registered
routing policy.  The attacker's announcement and the victim's
legitimate one propagate together under the policy's ranking, and
every AS picks a side:

- ASes applying SecP prefer a fully-secure route to the victim over
  the attacker's unsigned one (the hijack is *never* fully secure: the
  attacker cannot produce the victim's origination signature — except
  in a route leak, where the signatures are genuine);
- everyone else decides on LP, path length and the hash tie-break —
  exactly how hijacks win today;
- optionally, the attacker's own *simplex stub customers* believe the
  attacker's announcements are secure (they cannot validate; §2.2.1's
  residual vector).

Selection at each AS couples the two origins, so the single-origin
analytic passes do not apply; routing is a synchronous (Jacobi)
fixpoint, exactly the iteration of :mod:`repro.routing.fixpoint` with
two pinned labels.  Two implementations exist:

- :func:`simulate_hijack` — a per-pair scalar reference in plain
  Python, the differential ground truth;
- :func:`simulate_attacks_batched` — the same iteration vectorised
  over (victim, attacker) pairs on the fixpoint edge table, dispatched
  through the kernel-backend registry (``attack_sweep`` in
  :mod:`repro.routing.backends`).  The parity suite pins it
  bit-identical to the scalar reference.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.routing import backends as kernel_backends
from repro.routing.compiled import CompiledGraph
from repro.routing.policy import (
    POSITION_BITS,
    Criterion,
    DEFAULT_POLICY,
    RouteClass,
    get_policy,
    tie_hash,
)
from repro.routing.reference import ConvergenceError
from repro.security.scenarios import DEFAULT_SCENARIO, get_scenario
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer
from repro.topology.graph import ASGraph

_SELF = int(RouteClass.SELF)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)
_UNREACHABLE = int(RouteClass.UNREACHABLE)

_HASH_MASK = ~((1 << POSITION_BITS) - 1)

#: (victim, attacker) pairs per Jacobi batch — bounds [chunk, edges]
_PAIR_CHUNK = 64


@dataclasses.dataclass(frozen=True)
class HijackOutcome:
    """Who ended up routing where for one (victim, attacker) pair."""

    victim: int
    attacker: int
    routes_to_attacker: np.ndarray  # bool[n], False for the principals
    reachable: np.ndarray           # bool[n], has any route to the prefix
    scenario: str = DEFAULT_SCENARIO
    policy: str = DEFAULT_POLICY

    @property
    def num_fooled(self) -> int:
        """ASes whose traffic the attacker captured."""
        return int(self.routes_to_attacker.sum())

    def fraction_fooled(self, total: int | None = None) -> float:
        """Fooled ASes over the population (default: all other ASes)."""
        n = len(self.routes_to_attacker)
        denominator = total if total is not None else max(1, n - 2)
        return self.num_fooled / denominator


def _attack_flags(
    graph: ASGraph,
    scenario,
    policy,
    node_secure: np.ndarray | None,
    breaks_ties: np.ndarray | None,
    attacker_convinces_own_stubs: bool | None,
    drop_unvalidated: bool,
) -> tuple:
    """Shared state derivation for the scalar and batched simulators.

    Returns ``(node_secure, applies, validators, is_stub, gullible,
    drop)`` — ``applies`` already excludes the policy's sticky nodes
    (a sticky node never exercises alternatives, so SecP has nothing
    to pick from; the hash-minimum the kernels then take *is* its
    fixed primary).
    """
    from repro.topology.relationships import ASRole

    n = graph.n
    if node_secure is None:
        node_secure = np.zeros(n, dtype=bool)
    if breaks_ties is None:
        breaks_ties = np.zeros(n, dtype=bool)
    node_secure = np.asarray(node_secure, dtype=bool)
    applies = node_secure & np.asarray(breaks_ties, dtype=bool)
    sticky = policy.sticky_mask(n)
    if sticky is not None:
        applies = applies & ~sticky
    is_stub = graph.roles == int(ASRole.STUB)
    validators = node_secure & ~is_stub
    gullible = (
        scenario.gullible_stubs
        if attacker_convinces_own_stubs is None
        else bool(attacker_convinces_own_stubs)
    )
    drop = bool(drop_unvalidated or scenario.validators_drop)
    return node_secure, applies, validators, is_stub, gullible, drop


def simulate_hijack(
    graph: ASGraph,
    victim: int,
    attacker: int,
    node_secure: np.ndarray | None = None,
    breaks_ties: np.ndarray | None = None,
    attacker_convinces_own_stubs: bool | None = None,
    drop_unvalidated: bool = False,
    max_sweeps: int | None = None,
    policy: str = DEFAULT_POLICY,
    scenario: str = DEFAULT_SCENARIO,
) -> HijackOutcome:
    """Propagate victim + attacker originations and report the split.

    ``victim`` / ``attacker`` are dense node indices.  ``node_secure``
    and ``breaks_ties`` are the usual deployment-state flags; with both
    None the world is today's insecure BGP.  ``policy`` and
    ``scenario`` resolve through their registries (any name, alias or
    object); the defaults reproduce the paper's origin hijack under
    the Appendix-A ranking.

    The attacker's announcement is treated as insecure by every
    validating AS (it cannot be signed end-to-end), except — when
    ``attacker_convinces_own_stubs`` (default: the scenario's setting)
    — at the attacker's simplex stub customers, who cannot validate
    and accept their provider's word (§2.2.1).  A route leak is the
    one exception where the signatures are genuine.

    By default security acts only through the SecP criterion, as in
    the deployment model: a strictly better false route still wins.
    ``drop_unvalidated=True`` models the paper's §2.2.1 end-state
    argument instead: fully-validating ASes (secure non-stubs)
    *reject* routes that are not fully secure.  That is only
    deployable once everything legitimate is signed — under partial
    deployment it disconnects honest ASes, which is exactly the
    BGP/S*BGP-coexistence hazard §1.4(5) warns about (the
    ``reachable`` mask exposes it).

    This is the scalar differential reference: the batched
    :func:`simulate_attacks_batched` must match it bit for bit.
    Raises :class:`~repro.routing.reference.ConvergenceError` when the
    iteration has not stabilised after ``max_sweeps`` (default
    ``n + 8``) — a real possibility under ``security_1st``.
    """
    scen = get_scenario(scenario)
    pol = get_policy(policy)
    n = graph.n
    if victim == attacker:
        raise ValueError("victim and attacker must differ")
    node_secure, applies, validators, is_stub, gullible, drop = _attack_flags(
        graph, scen, pol, node_secure, breaks_ties,
        attacker_convinces_own_stubs, drop_unvalidated,
    )
    leak = scen.attacker_leaks

    # Per-node candidate table, sorted by neighbor index — the same
    # order as the fixpoint edge table's u-segments (relations are
    # disjoint, so sorting by (u, v) orders purely by v within a
    # segment), giving identical position-disambiguated tie keys.
    candidates: list[list[tuple[int, int, int, bool]]] = []
    for i in range(n):
        entries = sorted(
            [(int(c), _CUSTOMER) for c in graph.customers[i]]
            + [(int(p), _PEER) for p in graph.peers[i]]
            + [(int(p), _PROVIDER) for p in graph.providers[i]]
        )
        row = []
        for pos, (nbr, kind) in enumerate(entries):
            tie = (tie_hash(i, nbr) & _HASH_MASK) | pos
            gull_edge = (
                gullible and kind == _PROVIDER
                and bool(is_stub[i]) and bool(node_secure[i])
            )
            row.append((nbr, kind, tie, gull_edge))
        candidates.append(row)

    cap = max_sweeps if max_sweeps is not None else n + 8

    def iterate(cls, length, sec, att, pin, leaking):
        for _ in range(cap):
            new_cls = np.full(n, _UNREACHABLE, dtype=np.int64)
            new_len = np.full(n, -1, dtype=np.int64)
            new_sec = np.zeros(n, dtype=bool)
            new_att = np.zeros(n, dtype=bool)
            for i in range(n):
                best: tuple | None = None
                chosen: tuple | None = None
                drop_i = drop and validators[i]
                for nbr, kind, tie, gull_edge in candidates[i]:
                    cv = cls[nbr]
                    if cv == _UNREACHABLE:
                        continue
                    # GR2 (with the leak escape hatch): a route travels
                    # up to a provider / across a peering only if it is
                    # a customer route or the origin's own prefix.
                    if not (kind == _PROVIDER or cv == _CUSTOMER
                            or cv == _SELF
                            or (leaking and nbr == attacker)):
                        continue
                    if drop_i and not sec[nbr]:
                        continue
                    seen = bool(sec[nbr]) or (gull_edge and nbr == attacker
                                              and bool(att[nbr]))
                    parts = []
                    for crit in pol.ranking:
                        if crit is Criterion.LP:
                            parts.append(2 - kind)
                        elif crit is Criterion.SP:
                            parts.append(int(length[nbr]) + 1)
                        else:
                            parts.append(0 if (applies[i] and seen) else 1)
                    key = (tuple(parts), tie)
                    if best is None or key < best:
                        best = key
                        chosen = (nbr, kind, seen)
                if chosen is not None:
                    nbr, kind, seen = chosen
                    new_cls[i] = kind
                    new_len[i] = length[nbr] + 1
                    new_sec[i] = bool(node_secure[i]) and seen
                    new_att[i] = att[nbr]
            pin(new_cls, new_len, new_sec, new_att)
            if (
                np.array_equal(new_cls, cls)
                and np.array_equal(new_len, length)
                and np.array_equal(new_sec, sec)
                and np.array_equal(new_att, att)
            ):
                return cls, length, sec, att
            cls, length, sec, att = new_cls, new_len, new_sec, new_att
        raise ConvergenceError(
            f"attack scenario {scen.name!r} under policy {pol.name!r} did "
            f"not converge within {cap} sweeps (victim {victim}, "
            f"attacker {attacker})"
        )

    def pin_victim(c, ln, s, a):
        if scen.victim_originates:
            c[victim] = _SELF
            ln[victim] = 0
            s[victim] = node_secure[victim]
            a[victim] = False

    cls = np.full(n, _UNREACHABLE, dtype=np.int64)
    length = np.full(n, -1, dtype=np.int64)
    sec = np.zeros(n, dtype=bool)
    att = np.zeros(n, dtype=bool)

    if leak and not scen.attacker_originates:
        # A pure route leak re-announces the route the attacker holds
        # in the *honest* equilibrium.  Letting the leaker's selection
        # co-evolve with its own leak feeds its providers' adopted
        # routes back into its choice (the model has no AS-path loop
        # detection), which genuinely oscillates — so phase 1 converges
        # the single-origin honest world, then phase 2 pins the
        # attacker's label (signatures and all: path validation cannot
        # reject a leak) and propagates the leak from that state.
        pin_victim(cls, length, sec, att)
        cls, length, sec, att = iterate(
            cls, length, sec, att, pin_victim, leaking=False
        )
        a_cls, a_len, a_sec = cls[attacker], length[attacker], sec[attacker]

        def pin(c, ln, s, a):
            pin_victim(c, ln, s, a)
            c[attacker] = a_cls
            ln[attacker] = a_len
            s[attacker] = a_sec
            a[attacker] = True

        att = att.copy()
        att[attacker] = True
        cls, length, sec, att = iterate(cls, length, sec, att, pin, leaking=True)
    else:
        def pin(c, ln, s, a):
            pin_victim(c, ln, s, a)
            if scen.attacker_originates:
                c[attacker] = _SELF
                ln[attacker] = scen.attacker_path_offset
                s[attacker] = False
            a[attacker] = True

        pin(cls, length, sec, att)
        cls, length, sec, att = iterate(cls, length, sec, att, pin, leaking=leak)

    routes_to_attacker = att.copy()
    routes_to_attacker[victim] = False
    routes_to_attacker[attacker] = False
    return HijackOutcome(
        victim=victim,
        attacker=attacker,
        routes_to_attacker=routes_to_attacker,
        reachable=cls != _UNREACHABLE,
        scenario=scen.name,
        policy=pol.name,
    )


def simulate_attacks_batched(
    graph: ASGraph,
    pairs: Sequence[tuple[int, int]],
    node_secure: np.ndarray | None = None,
    breaks_ties: np.ndarray | None = None,
    attacker_convinces_own_stubs: bool | None = None,
    drop_unvalidated: bool = False,
    max_sweeps: int | None = None,
    policy: str = DEFAULT_POLICY,
    scenario: str = DEFAULT_SCENARIO,
    compiled: CompiledGraph | None = None,
    backend: str | None = None,
) -> list[HijackOutcome]:
    """Batched :func:`simulate_hijack` over (victim, attacker) pairs.

    The multi-origin Jacobi iteration vectorised on the fixpoint edge
    table, in chunks of pairs, dispatched through the kernel-backend
    registry (``backend`` as in
    :func:`repro.routing.fixpoint.fixpoint_dest_routings`).  One
    deployment state, one scenario, one policy, many pairs — the inner
    loop of every attack-matrix cell.  Bit-identical to the scalar
    reference, outcome for outcome.
    """
    from repro.routing.fixpoint import _EdgeTable, _rank_metadata

    scen = get_scenario(scenario)
    pol = get_policy(policy)
    pair_arr = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
    if len(pair_arr) and (
        pair_arr.min() < 0 or pair_arr.max() >= graph.n
    ):
        raise ValueError("pair indices out of range")
    if (pair_arr[:, 0] == pair_arr[:, 1]).any():
        raise ValueError("victim and attacker must differ")

    cg = compiled or CompiledGraph.from_graph(graph)
    table = _EdgeTable(cg)
    n = cg.n
    backend_name, kernels = kernel_backends.kernels_for(
        kernel_backends.resolve_backend(backend)
    )
    registry = get_registry()
    if registry.enabled:
        registry.counter("security.attack.batches").inc()
        registry.counter("security.attack.pairs").inc(len(pair_arr))
        registry.counter(f"routing.backend.calls.{backend_name}").inc()
    rank_codes, rank_widths = _rank_metadata(pol.ranking)
    node_secure, applies, validators, is_stub, gullible, drop = _attack_flags(
        graph, scen, pol, node_secure, breaks_ties,
        attacker_convinces_own_stubs, drop_unvalidated,
    )
    applies_edge = applies[table.u] if table.num_edges else applies[:0]
    if gullible and table.num_edges:
        gullible_edge = (
            table.is_provider_edge & is_stub[table.u] & node_secure[table.u]
        )
    else:
        gullible_edge = np.zeros(table.num_edges, dtype=bool)
    cap = max_sweeps if max_sweeps is not None else n + 8

    outcomes: list[HijackOutcome] = []
    tracer = get_tracer()
    leak_replay = scen.attacker_leaks and not scen.attacker_originates
    for start in range(0, len(pair_arr), _PAIR_CHUNK):
        batch = pair_arr[start:start + _PAIR_CHUNK]
        victims = batch[:, 0]
        attackers = np.ascontiguousarray(batch[:, 1])
        chunk = len(batch)
        rows = np.arange(chunk)

        def iterate(cls, length, sec, att, pin, leaking):
            for _ in range(cap):
                new_cls = np.full((chunk, n), _UNREACHABLE, dtype=np.int8)
                new_len = np.full((chunk, n), -1, dtype=np.int32)
                new_sec = np.zeros((chunk, n), dtype=bool)
                new_att = np.zeros((chunk, n), dtype=bool)
                if table.num_edges:
                    kernels.attack_sweep(
                        table.u, table.v, table.route_cls,
                        table.seg_starts, table.seg_sizes, table.seg_u,
                        table.tie_key, table.lp_field,
                        table.is_provider_edge, rank_codes, rank_widths,
                        attackers, gullible_edge, validators,
                        leaking, drop,
                        cls, length, sec, att, applies_edge, node_secure,
                        new_cls, new_len, new_sec, new_att,
                    )
                pin(new_cls, new_len, new_sec, new_att)
                if (
                    np.array_equal(new_cls, cls)
                    and np.array_equal(new_len, length)
                    and np.array_equal(new_sec, sec)
                    and np.array_equal(new_att, att)
                ):
                    return cls, length, sec, att
                cls, length, sec, att = new_cls, new_len, new_sec, new_att
            raise ConvergenceError(
                f"attack scenario {scen.name!r} under policy "
                f"{pol.name!r} did not converge within {cap} sweeps "
                f"(pairs {batch[:4].tolist()}...)"
            )

        def pin_victim(c, ln, s, a):
            if scen.victim_originates:
                c[rows, victims] = _SELF
                ln[rows, victims] = 0
                s[rows, victims] = node_secure[victims]
                a[rows, victims] = False

        cls = np.full((chunk, n), _UNREACHABLE, dtype=np.int8)
        length = np.full((chunk, n), -1, dtype=np.int32)
        sec = np.zeros((chunk, n), dtype=bool)
        att = np.zeros((chunk, n), dtype=bool)

        with tracer.span("attack.batch", pairs=chunk):
            if leak_replay:
                # phase 1: the honest single-origin world, to freeze
                # the leaker's route (see simulate_hijack); phase 2
                # pins that label and propagates the leak from it.
                pin_victim(cls, length, sec, att)
                cls, length, sec, att = iterate(
                    cls, length, sec, att, pin_victim, leaking=False
                )
                a_cls = cls[rows, attackers].copy()
                a_len = length[rows, attackers].copy()
                a_sec = sec[rows, attackers].copy()

                def pin(c, ln, s, a):
                    pin_victim(c, ln, s, a)
                    c[rows, attackers] = a_cls
                    ln[rows, attackers] = a_len
                    s[rows, attackers] = a_sec
                    a[rows, attackers] = True

                att = att.copy()
                att[rows, attackers] = True
                cls, length, sec, att = iterate(
                    cls, length, sec, att, pin, leaking=True
                )
            else:
                def pin(c, ln, s, a):
                    pin_victim(c, ln, s, a)
                    if scen.attacker_originates:
                        c[rows, attackers] = _SELF
                        ln[rows, attackers] = scen.attacker_path_offset
                        s[rows, attackers] = False
                    a[rows, attackers] = True

                pin(cls, length, sec, att)
                cls, length, sec, att = iterate(
                    cls, length, sec, att, pin, leaking=scen.attacker_leaks
                )

        for k in range(chunk):
            routes_to_attacker = att[k].copy()
            routes_to_attacker[victims[k]] = False
            routes_to_attacker[attackers[k]] = False
            outcomes.append(
                HijackOutcome(
                    victim=int(victims[k]),
                    attacker=int(attackers[k]),
                    routes_to_attacker=routes_to_attacker,
                    reachable=cls[k] != _UNREACHABLE,
                    scenario=scen.name,
                    policy=pol.name,
                )
            )
    return outcomes
