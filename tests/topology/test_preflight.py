"""Preflight validation: quarantine, repair, strict mode.

The hypothesis round-trip properties (``repair(dump(g)) == g``) live in
``tests/runtime/test_guard_chaos.py`` with the rest of the chaos suite.
"""

from __future__ import annotations

import pytest

from repro.topology.errors import GraphValidationError
from repro.topology.preflight import (
    PREFLIGHT_MODES,
    preflight_as_rel,
    preflight_as_rel_text,
)
from repro.topology.serialization import load_as_rel

CLEAN = """\
# cp: 30
1|2|-1
1|3|-1
2|3|0
3|30|-1
"""

DIRTY = """\
1|2|-1
not a line at all
1|2|-1
2|1|-1
4|4|0
1|3|-1
9|9|9|9
"""


class TestCleanInput:
    @pytest.mark.parametrize("mode", PREFLIGHT_MODES)
    def test_clean_file_has_no_issues(self, mode):
        graph, report = preflight_as_rel_text(CLEAN, mode=mode)
        assert report.ok
        assert report.dropped_edges == 0
        assert report.num_components == 1
        assert graph.cp_asns == {30}
        assert graph.n == 4


class TestQuarantine:
    def test_issues_carry_line_numbers_and_codes(self):
        _graph, report = preflight_as_rel_text(DIRTY, mode="repair")
        by_code = {}
        for issue in report.issues:
            by_code.setdefault(issue.code, []).append(issue.lineno)
        assert by_code["malformed"] == [2, 7]
        assert by_code["duplicate_edge"] == [3]
        assert by_code["conflicting_edge"] == [4]
        assert by_code["self_loop"] == [5]

    def test_repair_keeps_first_declaration(self):
        graph, report = preflight_as_rel_text(DIRTY, mode="repair")
        # 1|2|-1 kept once (1 provider of 2); 2|1|-1 conflict dropped
        assert graph.customers_of(1) == [2, 3]
        assert graph.providers_of(2) == [1]
        assert report.dropped_edges == 5

    def test_strict_raises_with_every_issue(self):
        with pytest.raises(GraphValidationError) as info:
            preflight_as_rel_text(DIRTY, mode="strict")
        assert len(info.value.issues) == 5
        assert "line 2" in str(info.value) or ":2:" in str(info.value)

    def test_report_mode_warns_and_repairs(self, caplog):
        with caplog.at_level("WARNING", logger="repro.topology.preflight"):
            graph, report = preflight_as_rel_text(DIRTY, mode="report")
        assert not report.ok
        assert len(caplog.records) == len(report.issues)
        assert graph.n == 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown preflight mode"):
            preflight_as_rel_text(CLEAN, mode="yolo")


class TestProviderCycles:
    CYCLIC = "1|2|-1\n2|3|-1\n3|1|-1\n"

    def test_cycle_broken_in_repair_mode(self):
        graph, report = preflight_as_rel_text(self.CYCLIC, mode="repair")
        codes = [i.code for i in report.issues]
        assert "provider_cycle" in codes
        graph.validate()  # repaired graph satisfies GR1

    def test_cycle_fails_strict_mode(self):
        with pytest.raises(GraphValidationError, match="provider_cycle|cycle"):
            preflight_as_rel_text(self.CYCLIC, mode="strict")


class TestComponents:
    def test_disconnected_components_reported(self):
        graph, report = preflight_as_rel_text("1|2|-1\n8|9|0\n", mode="repair")
        assert report.num_components == 2
        assert any(i.code == "disconnected" for i in report.issues)
        assert graph.n == 4


class TestLoadAsRelIntegration:
    def test_load_as_rel_with_preflight_repairs(self, tmp_path):
        path = tmp_path / "dirty.as-rel"
        path.write_text(DIRTY)
        graph = load_as_rel(path, preflight="repair")
        assert graph.n == 3

    def test_load_as_rel_with_strict_preflight_raises(self, tmp_path):
        path = tmp_path / "dirty.as-rel"
        path.write_text(DIRTY)
        with pytest.raises(GraphValidationError) as info:
            load_as_rel(path, preflight="strict")
        assert str(path) in str(info.value)

    def test_path_source_names_file_in_report(self, tmp_path):
        path = tmp_path / "g.as-rel"
        path.write_text(CLEAN)
        _graph, report = preflight_as_rel(path, mode="report")
        assert report.origin == str(path)


class TestReportSerialization:
    def test_to_dict_is_json_ready(self):
        import json

        _graph, report = preflight_as_rel_text(DIRTY, mode="repair")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["num_issues"] == len(report.issues)
        assert payload["issues"][0]["lineno"] == report.issues[0].lineno

    def test_format_text_lists_findings(self):
        _graph, report = preflight_as_rel_text(DIRTY, mode="repair")
        text = report.format_text()
        assert "5 issue(s)" in text
        assert "[malformed]" in text
