"""Input preflight for real ``as-rel`` snapshots (quarantine-and-repair).

Real CAIDA / Cyclops snapshots are scraped artifacts: they contain
malformed lines, duplicate and mutually contradictory edge
declarations, self-loops, and occasionally customer-provider cycles
that violate GR1.  The strict parser in
:mod:`repro.topology.serialization` stops at the first malformed line;
this module instead validates the *whole* file in one pass and hands
back a structured report, so one run surfaces every problem.

Three modes:

``strict``
    Any issue raises :class:`~repro.topology.errors.GraphValidationError`
    carrying every finding (with line numbers) — for pipelines where a
    dirty snapshot must never reach a figure.
``repair``
    Issues are quarantined (malformed lines and bad edges dropped,
    keep-first on duplicates/conflicts, provider cycles broken by
    removing the closing edge) and a repaired graph is returned along
    with the report.
``report``
    Like ``repair`` but each issue is also logged as a WARNING — for
    interactive use where you want the graph *and* the noise.
"""

from __future__ import annotations

import dataclasses
import io
import logging
from collections import deque
from pathlib import Path
from typing import Iterable, TextIO

from repro.telemetry.metrics import get_registry
from repro.topology.errors import GraphValidationError, RelationshipCycleError
from repro.topology.graph import ASGraph
from repro.topology.relationships import (
    CAIDA_PEER_TO_PEER,
    CAIDA_PROVIDER_TO_CUSTOMER,
)
from repro.topology.serialization import source_origin

log = logging.getLogger(__name__)

#: recognised preflight modes
PREFLIGHT_MODES: tuple[str, ...] = ("strict", "repair", "report")

#: upper bound on cycle-breaking passes (each pass removes one edge, so
#: this can only trip on a graph that is essentially all cycle edges)
_MAX_CYCLE_BREAKS = 10_000


@dataclasses.dataclass(frozen=True)
class PreflightIssue:
    """One finding from as-rel validation.

    ``lineno`` is the 1-based source line (0 for whole-graph findings
    like disconnected components); ``code`` is a stable machine-readable
    category; ``line`` is the offending raw text (empty for
    whole-graph findings).
    """

    lineno: int
    code: str
    message: str
    line: str = ""

    def format(self) -> str:
        """``<line>: [<code>] <message>`` (quarantine-report row)."""
        where = f"line {self.lineno}" if self.lineno else "graph"
        return f"{where}: [{self.code}] {self.message}"


@dataclasses.dataclass(frozen=True)
class PreflightReport:
    """Outcome of one :func:`preflight_as_rel` run."""

    origin: str
    mode: str
    issues: tuple[PreflightIssue, ...]
    dropped_edges: int
    num_ases: int
    num_edges: int
    num_components: int

    @property
    def ok(self) -> bool:
        """True when the source validated with no findings."""
        return not self.issues

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (for ``--report-out``)."""
        return {
            "origin": self.origin,
            "mode": self.mode,
            "ok": self.ok,
            "num_issues": len(self.issues),
            "dropped_edges": self.dropped_edges,
            "num_ases": self.num_ases,
            "num_edges": self.num_edges,
            "num_components": self.num_components,
            "issues": [dataclasses.asdict(i) for i in self.issues],
        }

    def format_text(self) -> str:
        """Human-readable quarantine report."""
        head = (
            f"preflight {self.origin}: "
            f"{len(self.issues)} issue(s), {self.dropped_edges} edge(s) "
            f"quarantined; kept {self.num_ases} ASes / {self.num_edges} "
            f"edges in {self.num_components} component(s)"
        )
        if self.ok:
            return head
        return "\n".join([head] + [f"  {i.format()}" for i in self.issues])


def preflight_as_rel(
    source: str | Path | TextIO,
    cp_asns: Iterable[int] = (),
    mode: str = "report",
) -> tuple[ASGraph, PreflightReport]:
    """Validate (and, per ``mode``, repair) an as-rel source.

    Returns the graph built from the surviving lines plus the full
    :class:`PreflightReport`.  ``strict`` mode raises
    :class:`~repro.topology.errors.GraphValidationError` instead of
    returning when any issue is found.
    """
    if mode not in PREFLIGHT_MODES:
        raise ValueError(
            f"unknown preflight mode {mode!r}; expected one of {PREFLIGHT_MODES}"
        )
    origin = source_origin(source)
    close = False
    if isinstance(source, (str, Path)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close = True
    else:
        fh = source
    try:
        graph, report = _preflight(fh, set(cp_asns), origin, mode)
    finally:
        if close:
            fh.close()
    get_registry().counter("topology.preflight.issues").inc(len(report.issues))
    if mode == "strict" and not report.ok:
        raise GraphValidationError(origin, report.issues)
    if mode == "report":
        for issue in report.issues:
            log.warning("preflight %s: %s", origin, issue.format())
    return graph, report


def preflight_as_rel_text(
    text: str, cp_asns: Iterable[int] = (), mode: str = "report"
) -> tuple[ASGraph, PreflightReport]:
    """String-input convenience wrapper around :func:`preflight_as_rel`."""
    return preflight_as_rel(io.StringIO(text), cp_asns, mode=mode)


def _preflight(
    fh: TextIO, cps: set[int], origin: str, mode: str
) -> tuple[ASGraph, PreflightReport]:
    issues: list[PreflightIssue] = []
    dropped = 0
    # surviving edges as (a, b, rel); peers normalised to (min, max) so
    # a re-declaration in the other direction reads as a duplicate, not
    # a conflict
    kept: list[tuple[int, int, int]] = []
    seen: dict[tuple[int, int], tuple[int, int, int, int]] = {}
    edge_lineno: dict[tuple[int, int], int] = {}

    for lineno, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.lower().startswith("cp:"):
                try:
                    cps.add(int(body[3:].strip()))
                except ValueError:
                    issues.append(PreflightIssue(
                        lineno, "malformed", f"bad cp marker {line!r}", line,
                    ))
            continue
        parts = line.split("|")
        if len(parts) < 3:
            issues.append(PreflightIssue(
                lineno, "malformed", f"expected a|b|rel, got {line!r}", line,
            ))
            dropped += 1
            continue
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            issues.append(PreflightIssue(
                lineno, "malformed", f"non-integer field in {line!r}", line,
            ))
            dropped += 1
            continue
        if rel not in (CAIDA_PROVIDER_TO_CUSTOMER, CAIDA_PEER_TO_PEER):
            issues.append(PreflightIssue(
                lineno, "malformed", f"unknown relationship {rel}", line,
            ))
            dropped += 1
            continue
        if a == b:
            issues.append(PreflightIssue(
                lineno, "self_loop", f"AS {a} declares an edge to itself", line,
            ))
            dropped += 1
            continue
        if rel == CAIDA_PEER_TO_PEER and a > b:
            a, b = b, a
        key = (min(a, b), max(a, b))
        prior = seen.get(key)
        if prior is not None:
            pa, pb, prel, plineno = prior
            if (pa, pb, prel) == (a, b, rel):
                issues.append(PreflightIssue(
                    lineno, "duplicate_edge",
                    f"edge {a}|{b}|{rel} already declared on line {plineno}",
                    line,
                ))
            else:
                issues.append(PreflightIssue(
                    lineno, "conflicting_edge",
                    f"edge between AS {key[0]} and AS {key[1]} was declared "
                    f"as {pa}|{pb}|{prel} on line {plineno}; keeping the "
                    "first declaration",
                    line,
                ))
            dropped += 1
            continue
        seen[key] = (a, b, rel, lineno)
        edge_lineno[key] = lineno
        kept.append((a, b, rel))

    graph = ASGraph(cp_asns=cps)
    for a, b, rel in kept:
        graph.ensure_as(a)
        graph.ensure_as(b)
        if rel == CAIDA_PROVIDER_TO_CUSTOMER:
            graph.add_customer_provider(provider=a, customer=b)
        else:
            graph.add_peering(a, b)
    for asn in cps:
        graph.ensure_as(asn)

    dropped += _break_provider_cycles(graph, edge_lineno, issues)
    components = _count_components(graph)
    if components > 1:
        issues.append(PreflightIssue(
            0, "disconnected",
            f"graph splits into {components} connected components; "
            "routing trees never cross components, so utilities are "
            "computed per-island",
        ))
    report = PreflightReport(
        origin=origin,
        mode=mode,
        issues=tuple(issues),
        dropped_edges=dropped,
        num_ases=graph.n,
        num_edges=graph.num_customer_provider_edges() + graph.num_peering_edges(),
        num_components=components,
    )
    return graph, report


def _break_provider_cycles(
    graph: ASGraph,
    edge_lineno: dict[tuple[int, int], int],
    issues: list[PreflightIssue],
) -> int:
    """Drop the closing edge of each GR1 cycle until the graph is acyclic.

    Returns the number of edges removed.  Each pass removes exactly one
    edge, so this terminates; the offending edge's source line is pulled
    from ``edge_lineno`` for the report.
    """
    removed = 0
    for _ in range(_MAX_CYCLE_BREAKS):
        try:
            graph.validate()
        except RelationshipCycleError as exc:
            a, b = exc.cycle[-2], exc.cycle[-1]
            key = (min(a, b), max(a, b))
            graph.remove_edge(a, b)
            removed += 1
            path = " -> ".join(str(asn) for asn in exc.cycle)
            issues.append(PreflightIssue(
                edge_lineno.get(key, 0), "provider_cycle",
                f"customer-provider cycle {path}; dropped the closing edge "
                f"{a}|{b}",
            ))
        else:
            return removed
    raise RuntimeError(
        f"provider-cycle repair did not converge after {_MAX_CYCLE_BREAKS} "
        "passes"
    )


def _count_components(graph: ASGraph) -> int:
    """Number of connected components (edges taken as undirected)."""
    n = graph.n
    if n == 0:
        return 0
    visited = [False] * n
    components = 0
    for start in range(n):
        if visited[start]:
            continue
        components += 1
        visited[start] = True
        queue = deque([start])
        while queue:
            node = queue.popleft()
            neighbours = (
                graph.customers[node] + graph.providers[node] + graph.peers[node]
            )
            for nxt in neighbours:
                if not visited[nxt]:
                    visited[nxt] = True
                    queue.append(nxt)
    return components
