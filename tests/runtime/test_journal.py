"""The run journal must survive crashes: torn tails, mixed runs, replay."""

from __future__ import annotations

import json

import pytest

from repro.runtime.errors import JournalCorruptError, JournalMismatchError
from repro.runtime.journal import JOURNAL_FORMAT, RunJournal


@pytest.fixture
def journal(tmp_path):
    j = RunJournal(tmp_path / "run.jsonl")
    j.ensure_header("test", {"n": 3})
    return j


class TestAppendReplay:
    def test_records_replay_in_order(self, journal):
        for i in range(5):
            journal.append({"type": "cell", "i": i})
        assert [r["i"] for r in journal.records()] == [0, 1, 2, 3, 4]
        assert len(journal) == 5

    def test_header_contents(self, journal):
        header = journal.header()
        assert header["format"] == JOURNAL_FORMAT
        assert header["kind"] == "test"
        assert header["meta"] == {"n": 3}

    def test_empty_journal(self, tmp_path):
        j = RunJournal(tmp_path / "missing.jsonl")
        assert not j.exists()
        assert j.header() is None
        assert j.records() == []

    def test_reopen_validates_matching_header(self, journal):
        again = RunJournal(journal.path)
        again.ensure_header("test", {"n": 3})  # no error
        again.append({"type": "cell", "i": 0})
        assert len(again) == 1


class TestMismatch:
    def test_different_meta_rejected(self, journal):
        with pytest.raises(JournalMismatchError, match="mismatched keys: \\['n'\\]"):
            RunJournal(journal.path).ensure_header("test", {"n": 4})

    def test_different_kind_rejected(self, journal):
        with pytest.raises(JournalMismatchError, match="kind"):
            RunJournal(journal.path).ensure_header("other", {"n": 3})


class TestCorruption:
    def test_torn_final_line_dropped(self, journal):
        journal.append({"i": 0})
        journal.append({"i": 1})
        text = journal.path.read_text()
        journal.path.write_text(text[:-20])  # tear the last append
        assert [r["i"] for r in journal.records()] == [0]

    def test_torn_tail_repaired_before_next_append(self, journal):
        journal.append({"i": 0})
        journal.path.write_text(journal.path.read_text() + '{"rec')
        again = RunJournal(journal.path)
        again.ensure_header("test", {"n": 3})  # repairs the tail
        again.append({"i": 1})
        assert [r["i"] for r in again.records()] == [0, 1]

    def test_mid_file_damage_raises(self, journal):
        journal.append({"i": 0})
        journal.append({"i": 1})
        lines = journal.path.read_text().splitlines()
        lines[1] = lines[1][:-15] + "}"  # damage a non-final record
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError):
            journal.records()

    def test_checksum_guards_record_edits(self, journal):
        journal.append({"i": 0})
        journal.append({"i": 1})
        text = journal.path.read_text().replace('"i": 0', '"i": 9')
        journal.path.write_text(text)
        with pytest.raises(JournalCorruptError, match="checksum"):
            journal.records()

    def test_torn_header_only_repaired_to_empty(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"format": "repro.run-jour')
        j = RunJournal(path)
        j.ensure_header("test", {"n": 1})
        assert j.header()["kind"] == "test"

    def test_wrong_format_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"format": "something/9"}) + "\n" * 2)
        with pytest.raises(JournalCorruptError, match="not a"):
            RunJournal(path).records()
