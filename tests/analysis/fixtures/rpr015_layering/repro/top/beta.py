"""The other half of the eager cycle."""

import repro.top.alpha  # expect: RPR015


def pong() -> int:
    return repro.top.alpha.ping()
