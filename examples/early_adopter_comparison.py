"""Who should regulators target?  Early-adopter sets across theta.

Recreates the Figure-8 comparison on a small synthetic Internet:
no adopters, the five CPs, the top-5 / top-k Tier-1s by degree, and a
random set — swept over deployment thresholds.

The paper's takeaways to look for in the output:

- at theta <= 5% almost any seed set transitions most of the Internet;
- at theta >= 10% the high-degree (Tier-1) sets clearly beat random;
- at theta >= 30% ISP adoption collapses and the secure population is
  mostly simplex stubs (compare the last two columns).

Usage::

    python examples/early_adopter_comparison.py [num_ases]
"""

from __future__ import annotations

import sys

from repro import build_environment
from repro.experiments.report import format_table
from repro.experiments.sweeps import run_sweep


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    env = build_environment(n=n, seed=2011, x=0.10)

    sets = env.adopter_sets()
    print(f"adopter sets: { {k: len(v) for k, v in sets.items()} }")
    cells = run_sweep(env, thetas=(0.0, 0.05, 0.10, 0.30), adopter_sets=sets)

    rows = [
        [c.adopters, f"{c.theta:.2f}", f"{c.fraction_secure_ases:.3f}",
         f"{c.fraction_secure_isps:.3f}", f"{c.fraction_isps_by_market:.3f}"]
        for c in cells
    ]
    print()
    print(format_table(
        ["adopters", "theta", "frac ASes", "frac ISPs", "ISPs by market"],
        rows, title="Fig 8 (small-scale): adoption by early-adopter set and theta",
    ))


if __name__ == "__main__":
    main()
