"""Figure 16 (Appendix E): the set-cover reduction behind Theorem 6.1.

Choosing optimal early adopters is NP-hard: on the reduction network,
the number of ASes secure at termination is exactly ``1 + 2k + covered
elements``, so optimal adoption = optimal cover.  The bench regenerates
that correspondence and contrasts greedy with brute-force.
"""

from __future__ import annotations

import itertools

from repro.experiments.report import format_table
from repro.gadgets.hardness import SetCoverInstance, build_set_cover_network
from repro.routing.cache import RoutingCache

INSTANCE = SetCoverInstance(
    universe=(1, 2, 3, 4, 5, 6, 7, 8),
    subsets=(
        frozenset({1, 2, 3}),
        frozenset({4, 5}),
        frozenset({6, 7}),
        frozenset({3, 8}),
        frozenset({8}),
    ),
    k=3,
)


def test_fig16_set_cover_reduction(benchmark, capsys):
    def evaluate():
        net = build_set_cover_network(INSTANCE)
        cache = RoutingCache(net.graph)
        results = []
        for combo in itertools.combinations(range(len(INSTANCE.subsets)), INSTANCE.k):
            secure = net.secure_count_for(combo, cache)
            results.append((combo, secure, net.expected_secure_count(combo)))
        return net, results

    net, results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [str(combo), secure, expected, INSTANCE.coverage(combo)]
        for combo, secure, expected in results
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["gates chosen", "secure ASes", "1+2k+covered", "covered"],
            rows, title="Fig 16: adoption count == set-cover arithmetic",
        ))
        greedy = INSTANCE.greedy_cover()
        best = INSTANCE.best_cover()
        print(f"  greedy cover: {greedy}, optimal cover: {best}")

    assert INSTANCE.is_linear()
    for combo, secure, expected in results:
        assert secure == expected
    best_combo = max(results, key=lambda r: r[1])[0]
    assert INSTANCE.coverage(best_combo) == INSTANCE.best_cover()[1]
