"""Tests for the §7 turn-off censuses."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation
from repro.core.state import DeploymentState
from repro.experiments.turnoff import (
    per_destination_turn_off_census,
    whole_network_turn_off_census,
)


@pytest.fixture(scope="module")
def incoming_state(medium_env):
    config = SimulationConfig(
        theta=0.05,
        utility_model=UtilityModel.INCOMING,
        stub_breaks_ties=False,
        max_rounds=25,
    )
    sim = DeploymentSimulation(
        medium_env.graph, medium_env.case_study_adopters(), config, medium_env.cache
    )
    return sim.run().final_state


class TestWholeNetworkCensus:
    def test_stable_state_has_no_whole_network_incentive(
        self, medium_env, incoming_state
    ):
        """At a *stable* state of the incoming game, nobody wants to turn
        off by definition (with matching theta)."""
        census = whole_network_turn_off_census(
            medium_env, incoming_state, theta=0.05
        )
        assert census.num_with_incentive == 0

    def test_counts_consistent(self, medium_env, incoming_state):
        census = whole_network_turn_off_census(medium_env, incoming_state)
        assert 0 <= census.num_with_incentive <= census.num_secure_isps
        assert len(census.examples) <= 10
        assert 0.0 <= census.fraction <= 1.0


class TestPerDestinationCensus:
    def test_examples_are_asns(self, medium_env, incoming_state):
        census = per_destination_turn_off_census(medium_env, incoming_state)
        for asn in census.examples:
            assert asn in medium_env.graph

    def test_per_destination_at_least_whole_network(
        self, medium_env, incoming_state
    ):
        """§7.3: per-destination incentives are at least as common as
        whole-network ones (any whole-network gain implies some
        destination gains)."""
        whole = whole_network_turn_off_census(medium_env, incoming_state)
        per_dest = per_destination_turn_off_census(medium_env, incoming_state)
        assert per_dest.num_with_incentive >= whole.num_with_incentive

    def test_empty_state(self, medium_env):
        census = per_destination_turn_off_census(
            medium_env, DeploymentState(frozenset(), frozenset())
        )
        assert census.num_secure_isps == 0
        assert census.fraction == 0.0
