"""The per-link DILEMMA (§8.3, Theorem J.1, Figure 18).

The NP-hardness of choosing *which links* to secure rests on a
construction where one link pulls two revenue flows in opposite
directions.  This gadget realises it around a focal ISP ``x`` and the
single link ``x - up`` to its provider:

- **flow A** (weight ``w_a``): a secure CP sends to ``x``'s stub.  With
  the link active the fully-secure detour through ``up`` wins and the
  traffic enters ``x`` on a *provider* edge (no revenue); with the link
  disabled the CP's tie-break falls back to ``x``'s customer ``fb_a``
  and the same traffic pays (the Fig-13 remorse mechanism, per-link);
- **flow B** (weight ``w_b``): a second secure CP reaches a remote stub
  *through* ``x`` and ``up``.  That route is fully secure only while
  the link is active; disabling it sends the flow to an insecure
  bypass, and ``x`` loses the customer revenue.

So ``x`` earns ``w_a`` with the link off or ``w_b`` with it on — never
both.  Per-link choices therefore interact through shared flows, which
is the engine of the set-packing reduction behind Theorem J.1.
"""

from __future__ import annotations

import dataclasses
import random

from repro.routing.policy import tie_hash
from repro.topology.graph import ASGraph

_NAMES = ["x", "up", "cp_a", "cp_b", "fb_a", "fb_b", "z_b", "s_a", "d_b"]


def _constraints_hold(index: dict[str, int]) -> bool:
    """Fallbacks must win the security-free hash tie-breaks."""
    return (
        tie_hash(index["cp_a"], index["fb_a"]) < tie_hash(index["cp_a"], index["up"])
        and tie_hash(index["cp_b"], index["fb_b"]) < tie_hash(index["cp_b"], index["x"])
    )


@dataclasses.dataclass(frozen=True)
class DilemmaNetwork:
    """The built gadget plus its cast (AS numbers)."""

    graph: ASGraph
    x: int
    up: int
    cp_a: int
    cp_b: int
    fb_a: int
    fb_b: int
    s_a: int
    d_b: int
    w_a: float
    w_b: float

    @property
    def secure_asns(self) -> tuple[int, ...]:
        """Nodes that run S*BGP (stubs get it via simplex as usual)."""
        return (self.x, self.up, self.cp_a, self.cp_b)


def build_dilemma(w_a: float = 100.0, w_b: float = 60.0, max_tries: int = 5000) -> DilemmaNetwork:
    """Construct the per-link dilemma (two flows, one contested link)."""
    rng = random.Random(18)
    order = list(_NAMES)
    for _ in range(max_tries):
        index = {name: pos for pos, name in enumerate(order)}
        if _constraints_hold(index):
            break
        rng.shuffle(order)
    else:  # pragma: no cover
        raise RuntimeError("could not satisfy tie-break constraints")

    asn = {name: 201 + index[name] for name in index}
    graph = ASGraph(cp_asns=[asn["cp_a"], asn["cp_b"]])
    for name in order:
        graph.add_as(asn[name])

    def cp_edge(provider: str, customer: str) -> None:
        graph.add_customer_provider(provider=asn[provider], customer=asn[customer])

    cp_edge("up", "x")        # the contested link
    cp_edge("x", "s_a")       # x's stub (flow A's destination)
    cp_edge("x", "fb_a")      # flow A's paying fallback
    cp_edge("fb_a", "cp_a")   # cp_a multihomed: fb_a and up
    cp_edge("up", "cp_a")
    cp_edge("x", "cp_b")      # cp_b multihomed: x and fb_b
    cp_edge("fb_b", "cp_b")
    cp_edge("z_b", "fb_b")    # insecure bypass for flow B
    cp_edge("up", "d_b")      # flow B's destination, multihomed
    cp_edge("z_b", "d_b")

    graph.validate()
    graph.set_weight(asn["cp_a"], w_a)
    graph.set_weight(asn["cp_b"], w_b)
    return DilemmaNetwork(
        graph=graph,
        x=asn["x"],
        up=asn["up"],
        cp_a=asn["cp_a"],
        cp_b=asn["cp_b"],
        fb_a=asn["fb_a"],
        fb_b=asn["fb_b"],
        s_a=asn["s_a"],
        d_b=asn["d_b"],
        w_a=w_a,
        w_b=w_b,
    )
