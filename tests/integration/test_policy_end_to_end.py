"""End-to-end: the full pipeline under the non-default rankings.

The acceptance bar for the policy layer: case study and sweep run to
completion under ``security_1st`` and ``security_2nd`` — parallel
engine and journal resume included — and their adoption dynamics
*differ* from the default ``security_3rd`` run (promoting SecP in the
ranking changes partial-deployment outcomes; Lychev et al.).
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.dynamics import run_deployment
from repro.experiments.setup import build_environment
from repro.experiments.sweeps import run_sweep
from repro.runtime.journal import RunJournal

N, SEED = 150, 11
MAX_ROUNDS = 10


def _adoption_curve(env, policy):
    result = run_deployment(
        env.graph, env.case_study_adopters(),
        SimulationConfig(theta=0.05, max_rounds=MAX_ROUNDS, policy=policy),
        env.cache,
    )
    return result.secure_ases_per_round(), result


@pytest.fixture(scope="module")
def default_curve():
    env = build_environment(n=N, seed=SEED, x=0.10)
    return _adoption_curve(env, "security_3rd")[0]


@pytest.mark.parametrize("policy", ["security_1st", "security_2nd"])
def test_case_study_differs_from_default(policy, default_curve):
    env = build_environment(n=N, seed=SEED, x=0.10, policy=policy)
    assert env.cache.policy_name == policy
    curve, result = _adoption_curve(env, policy)
    assert result.num_rounds >= 1
    # the state-dependent structures were actually rebuilt along the way
    assert env.cache.stats().state_rebuilds >= 1
    assert curve != default_curve


@pytest.mark.parametrize("policy", ["security_1st", "security_2nd"])
def test_parallel_warm_under_policy(policy):
    """workers>1 exercises the process engine + shm arena transport with
    policy and state metadata crossing the process boundary."""
    env = build_environment(n=N, seed=SEED, x=0.10, policy=policy, workers=2)
    assert env.cache.policy_name == policy
    assert env.cache.arena is not None
    assert env.cache.arena.policy == policy
    curve, _ = _adoption_curve(env, policy)
    assert len(curve) >= 2


def test_sweep_with_journal_resume_under_security_2nd(tmp_path):
    env = build_environment(n=120, seed=7, x=0.10, policy="security_2nd")
    sets = {"top-5": env.adopter_sets()["top-5"]}
    thetas = (0.05, 0.30)
    path = tmp_path / "sweep.jsonl"
    first = run_sweep(
        env, thetas=thetas, adopter_sets=sets, max_rounds=MAX_ROUNDS,
        journal=path,
    )
    assert RunJournal(path).header()["meta"]["policy"] == "security_2nd"

    # fresh environment, same journal: every cell replays, none recompute
    env2 = build_environment(n=120, seed=7, x=0.10, policy="security_2nd")
    resumed = run_sweep(
        env2, thetas=thetas, adopter_sets=sets, max_rounds=MAX_ROUNDS,
        journal=path,
    )
    assert resumed == first
