"""HTTP daemon: API surface, error mapping, and crash-resume acceptance.

Two tiers here.  The in-process tier spins a :class:`SimulationService`
inside the test process and exercises every route plus the
two-overlapping-jobs acceptance criterion (cache hits visible in
``/metrics``, results bit-identical to a cold ``run_sweep``).  The
subprocess tier runs the real ``sbgp-sim serve`` CLI, SIGKILLs it
mid-job, restarts on the same store, and asserts the job resumes from
its journal and completes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import telemetry
from repro.experiments.setup import build_environment
from repro.experiments.sweeps import cell_from_dict, run_sweep
from repro.service.daemon import SimulationService
from repro.telemetry.metrics import set_registry
from repro.telemetry.spans import set_tracer

ENV = {"n": 80, "seed": 7, "x": 0.10}
SPEC = {**ENV, "thetas": [0.0, 0.05], "adopter_sets": ["none", "top-5"]}


def request(base: str, path: str, method: str = "GET", payload: dict | None = None):
    """(status, body-dict-or-text) for one HTTP round trip."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            raw = resp.read().decode()
            status = resp.status
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode()
        status = exc.code
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw  # NDJSON event streams, Prometheus text


def poll_until(base: str, job_id: str, states=("done", "failed", "cancelled"), timeout=180.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, job = request(base, f"/v1/jobs/{job_id}")
        assert status == 200, job
        if job["state"] in states:
            return job
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never reached {states}")


@pytest.fixture()
def service(tmp_path):
    registry, _ = telemetry.enable()
    svc = SimulationService(str(tmp_path / "store"), port=0, workers=1)
    svc.start()
    host, port = svc.address
    try:
        yield svc, f"http://{host}:{port}"
    finally:
        svc.shutdown()
        set_registry(None)
        set_tracer(None)


class TestRoutes:
    def test_healthz_and_endpoint_file(self, service, tmp_path):
        svc, base = service
        status, body = request(base, "/healthz")
        assert status == 200 and body["status"] == "ok"
        endpoint = json.loads(Path(svc.endpoint_path).read_text())
        assert endpoint["format"] == "repro.service-endpoint/1"
        assert endpoint["url"] == base

    def test_submit_poll_events_result(self, service):
        _, base = service
        status, job = request(base, "/v1/jobs", "POST", SPEC)
        assert status == 202 and job["created"] is True
        assert job["state"] in ("queued", "running")

        final = poll_until(base, job["id"])
        assert final["state"] == "done", final.get("error")
        assert final["progress"] == {"done": 4, "total": 4}

        status, listing = request(base, "/v1/jobs")
        assert status == 200 and [j["id"] for j in listing["jobs"]] == [job["id"]]

        status, ndjson = request(base, f"/v1/jobs/{job['id']}/events")
        assert status == 200
        events = [json.loads(line) for line in ndjson.splitlines()]
        assert any(e["event"] == "progress" for e in events)
        # incremental tail: everything after the first event's seq
        status, tail = request(base, f"/v1/jobs/{job['id']}/events?since={events[0]['seq']}")
        assert len(tail.splitlines()) == len(events) - 1

        status, result = request(base, f"/v1/jobs/{job['id']}/result")
        assert status == 200 and len(result["cells"]) == 4

    def test_resubmit_coalesces_then_recomputes(self, service):
        _, base = service
        status, first = request(base, "/v1/jobs", "POST", SPEC)
        status, dup = request(base, "/v1/jobs", "POST", {**SPEC, "priority": 3})
        assert status == 200 and dup["created"] is False
        assert dup["id"] == first["id"]
        poll_until(base, first["id"])
        status, fresh = request(base, "/v1/jobs", "POST", SPEC)
        assert status == 202 and fresh["id"] != first["id"]

    def test_metrics_exposes_service_counters(self, service):
        _, base = service
        _, job = request(base, "/v1/jobs", "POST", SPEC)
        poll_until(base, job["id"])
        status, text = request(base, "/metrics")
        assert status == 200
        assert "repro_service_http_requests_total" in text
        assert "repro_service_jobs_done_total" in text


class TestErrorMapping:
    def test_bad_spec_is_400(self, service):
        _, base = service
        status, body = request(base, "/v1/jobs", "POST", {"kind": "nope"})
        assert status == 400 and "kind" in body["error"]
        status, body = request(base, "/v1/jobs", "POST", None)
        assert status == 400

    def test_unknown_job_is_404(self, service):
        _, base = service
        for path in ("/v1/jobs/j000099-deadbeef", "/v1/jobs/j000099-deadbeef/result"):
            status, body = request(base, path)
            assert status == 404, path
        status, _ = request(base, "/nope")
        assert status == 404

    def test_result_before_done_and_double_cancel_are_409(self, service):
        _, base = service
        # a wide job keeps the single worker busy; a second stays queued
        _, blocker = request(base, "/v1/jobs", "POST", {
            **ENV, "thetas": [0.0, 0.02, 0.05, 0.10, 0.20, 0.30], "adopter_sets": [],
        })
        _, queued = request(base, "/v1/jobs", "POST", SPEC)
        status, body = request(base, f"/v1/jobs/{queued['id']}/result")
        assert status == 409  # no result yet

        status, cancelled = request(base, f"/v1/jobs/{queued['id']}", "DELETE")
        assert status == 202 and cancelled["state"] == "cancelled"
        status, body = request(base, f"/v1/jobs/{queued['id']}", "DELETE")
        assert status == 409  # already terminal

        status, _ = request(base, f"/v1/jobs/{blocker['id']}", "DELETE")
        assert status == 202
        poll_until(base, blocker["id"])

    def test_bad_since_is_400(self, service):
        _, base = service
        _, job = request(base, "/v1/jobs", "POST", SPEC)
        status, body = request(base, f"/v1/jobs/{job['id']}/events?since=soon")
        assert status == 400
        poll_until(base, job["id"])


def prometheus_value(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return 0.0


class TestAcceptance:
    def test_overlapping_jobs_hit_cache_and_match_cold_sweep(self, service):
        """ISSUE acceptance: second overlapping job shows service.cache
        hits in /metrics and both results are bit-identical to a cold
        ``run_sweep`` on a fresh environment."""
        _, base = service
        _, first = request(base, "/v1/jobs", "POST", SPEC)
        poll_until(base, first["id"])

        second_spec = {**ENV, "thetas": [0.0, 0.05, 0.30], "adopter_sets": ["none", "top-5"]}
        _, second = request(base, "/v1/jobs", "POST", second_spec)
        assert second["id"] != first["id"]
        final = poll_until(base, second["id"])
        assert final["state"] == "done", final.get("error")

        _, metrics = request(base, "/metrics")
        assert prometheus_value(metrics, "repro_service_cache_cell_hits_total") >= 4
        assert prometheus_value(metrics, "repro_service_cache_arena_hits_total") >= 1

        _, result = request(base, f"/v1/jobs/{second['id']}/result")
        served = sorted(
            (cell_from_dict(c) for c in result["cells"]),
            key=lambda c: (c.adopters, c.theta),
        )
        env = build_environment(**ENV, warm=True)
        sets = env.adopter_sets()
        cold = sorted(
            run_sweep(env, thetas=(0.0, 0.05, 0.30),
                      adopter_sets={"none": sets["none"], "top-5": sets["top-5"]}),
            key=lambda c: (c.adopters, c.theta),
        )
        assert served == cold


@pytest.mark.slow
class TestCrashResume:
    """ISSUE acceptance: SIGKILL mid-job, restart, resume, complete."""

    def serve(self, store: Path) -> tuple[subprocess.Popen, str]:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        endpoint = store / "endpoint.json"
        endpoint.unlink(missing_ok=True)  # a stale one survives SIGKILL
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--store", str(store), "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon died on startup: {proc.stderr.read().decode()}"
                )
            if endpoint.exists():
                try:
                    doc = json.loads(endpoint.read_text())
                    return proc, doc["url"]
                except (json.JSONDecodeError, KeyError):
                    pass  # mid-write; retry
            time.sleep(0.1)
        raise AssertionError("daemon never published endpoint.json")

    def test_sigkill_midjob_then_restart_resumes_and_completes(self, tmp_path):
        store = tmp_path / "store"
        wide = {
            **ENV,
            "thetas": [0.0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50],
            "adopter_sets": ["none", "top-5"],  # 16 cells
        }
        proc, base = self.serve(store)
        try:
            status, job = request(base, "/v1/jobs", "POST", wide)
            assert status == 202
            journal = store / "journals" / f"{job['digest']}.jsonl"
            # poll until at least 2 cells are finished (hence journaled)
            deadline = time.monotonic() + 180
            while time.monotonic() < deadline:
                _, polled = request(base, f"/v1/jobs/{job['id']}")
                if polled["progress"]["done"] >= 2:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("job never reached 2 finished cells")
        finally:
            proc.kill()  # SIGKILL: no drain, no cleanup
            proc.wait(timeout=30)

        pre_kill = journal.read_bytes()
        assert pre_kill, "sweep journal missing after kill"

        proc2, base2 = self.serve(store)
        try:
            resumed = poll_until(base2, job["id"], timeout=300)
            assert resumed["state"] == "done", resumed.get("error")
            assert any(e["event"] == "recovered" for e in json.loads(
                "[" + ",".join(request(base2, f"/v1/jobs/{job['id']}/events")[1].splitlines()) + "]"
            ))
            _, result = request(base2, f"/v1/jobs/{job['id']}/result")
            assert len(result["cells"]) == 16
            # the restarted run extended (never rewrote) the journal
            assert journal.read_bytes().startswith(pre_kill)
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc2.kill()
                raise

        # and the resumed result matches a cold in-process sweep
        env = build_environment(**ENV, warm=True)
        sets = env.adopter_sets()
        cold = sorted(
            run_sweep(env, thetas=tuple(wide["thetas"]),
                      adopter_sets={"none": sets["none"], "top-5": sets["top-5"]}),
            key=lambda c: (c.adopters, c.theta),
        )
        served = sorted(
            (cell_from_dict(c) for c in result["cells"]),
            key=lambda c: (c.adopters, c.theta),
        )
        assert served == cold
