"""Kernel-backend registry and bit-identity parity suite (PR 8).

The numpy backend is the differential ground truth.  Every other
backend — the compiled tiers and the hidden ``python`` backend (the
exact loop bodies numba compiles) — must produce **bit-identical**
outputs on all three hot kernels, across every registered policy.
``tobytes()`` comparisons make "identical" literal: same bytes, not
just allclose.

The suite is environment-adaptive: compiled backends that cannot load
here (no numba wheel, no C compiler) are skipped for parity but their
*degradation* path is tested instead — a numpy-only environment must
pass this whole file.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.routing import backends as kb
from repro.routing.arena import (
    RoutingArena,
    compute_trees_batched,
    subtree_weights_batched,
)
from repro.routing.cache import RoutingCache
from repro.routing.errors import BackendUnavailable
from repro.routing.policy import available_policies, get_policy
from repro.runtime.guard import RuntimeGuard, use_guard

from tests.strategies import graphs_with_security

POLICIES = available_policies()


def _load_ok(name: str) -> bool:
    try:
        kb.load_backend(name)
    except BackendUnavailable:
        return False
    return True


#: every backend that can actually load here, ground truth first;
#: "python" (hidden) is always loadable and exercises numba's exact
#: control flow without a JIT
PARITY_BACKENDS = ["numpy"] + [
    name
    for name in [*kb.usable_backends(), "python"]
    if name != "numpy" and _load_ok(name)
]

ALT_BACKENDS = [name for name in PARITY_BACKENDS if name != "numpy"]


def _arena_for(graph, policy: str, backend: str, dests) -> RoutingArena:
    routings = get_policy(policy).build_many(graph, dests)
    return RoutingArena.build(
        graph.n, dests, routings, policy=policy, backend=backend
    )


def _security_state(n: int):
    secure = np.zeros(n, dtype=bool)
    secure[::3] = True
    breaks = np.zeros(n, dtype=bool)
    breaks[::2] = True
    return secure, breaks


class TestRegistry:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kb.get_backend("fortran")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kb.resolve_backend("fortran")

    def test_available_excludes_hidden(self):
        names = kb.available_backends()
        assert "numpy" in names and "python" not in names

    def test_python_backend_resolvable_by_exact_name(self):
        assert kb.resolve_backend("python") == "python"

    def test_register_conflicting_spec_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            kb.register_backend(
                kb.KernelBackend(
                    name="numpy", description="different", module="nope"
                )
            )

    def test_register_is_idempotent_for_equal_spec(self):
        spec = kb.get_backend("numpy")
        assert kb.register_backend(spec) is spec

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(kb.ENV_VAR, "python")
        assert kb.default_backend_name() == "python"
        assert kb.resolve_backend(None) == "python"
        monkeypatch.delenv(kb.ENV_VAR)
        assert kb.default_backend_name() == "numpy"

    def test_backend_status_shape(self):
        status = kb.backend_status()
        assert set(status) == set(kb.available_backends())
        assert all(v in ("loaded", "available", "unavailable") for v in status.values())

    def test_auto_resolves_to_something_loaded(self):
        name = kb.resolve_backend(kb.AUTO)
        assert name in kb.available_backends()
        assert kb.backend_status()[name] == "loaded"

    def test_load_failure_is_cached(self):
        # whichever compiled backend is missing here (CI runs this in a
        # numpy-only env too) must fail identically on the second call
        missing = [n for n in kb.available_backends() if not kb.probe(n)]
        for name in missing:
            with pytest.raises(BackendUnavailable):
                kb.load_backend(name)
            with pytest.raises(BackendUnavailable):
                kb.load_backend(name)


class TestDegradation:
    def test_unloadable_backend_degrades_to_numpy_with_counted_rung(self):
        missing = [n for n in kb.available_backends() if not kb.probe(n)]
        if not missing:
            pytest.skip("every registered backend is usable here")
        guard = RuntimeGuard()
        with use_guard(guard):
            assert kb.resolve_backend(missing[0]) == "numpy"
        assert guard.ladder.taken("compiled_to_numpy") == 1

    def test_kernels_for_degrades_at_call_time(self):
        missing = [n for n in kb.available_backends() if not kb.probe(n)]
        if not missing:
            pytest.skip("every registered backend is usable here")
        guard = RuntimeGuard()
        with use_guard(guard):
            name, impl = kb.kernels_for(missing[0])
        assert name == "numpy"
        assert impl is kb.load_backend("numpy")
        assert guard.ladder.taken("compiled_to_numpy") == 1

    def test_numpy_only_cache_never_errors(self):
        # the acceptance bar: a run specced for a compiled backend on a
        # host without it completes on numpy, arena included
        missing = [n for n in kb.available_backends() if not kb.probe(n)]
        requested = missing[0] if missing else "numpy"
        from repro.topology.generator import generate_topology
        from repro.topology.traffic import apply_traffic_model

        graph = generate_topology(n=60, seed=9).graph
        apply_traffic_model(graph, 0.10)
        guard = RuntimeGuard()
        with use_guard(guard):
            cache = RoutingCache(
                graph, destinations=list(range(12)), backend=requested
            )
            cache.warm()
            arena = cache.ensure_arena()
            secure, breaks = _security_state(graph.n)
            bt = compute_trees_batched(arena, arena.all_slots(), secure, breaks)
        assert cache.backend_name == ("numpy" if missing else "numpy")
        assert bt.choice.shape == (12, graph.n)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("policy", POLICIES)
class TestKernelParity:
    """Bit-identity of every backend against numpy, per policy."""

    def _trees(self, graph, policy, backend):
        dests = list(range(0, graph.n, 7))
        secure, breaks = _security_state(graph.n)
        ref_arena = _arena_for(graph, policy, "numpy", dests)
        alt_arena = _arena_for(graph, policy, backend, dests)
        ref = compute_trees_batched(ref_arena, ref_arena.all_slots(), secure, breaks)
        alt = compute_trees_batched(alt_arena, alt_arena.all_slots(), secure, breaks)
        return ref_arena, alt_arena, ref, alt

    def test_trees_bit_identical(self, small_graph, policy, backend):
        _, _, ref, alt = self._trees(small_graph, policy, backend)
        assert ref.choice.tobytes() == alt.choice.tobytes()
        assert ref.secure.tobytes() == alt.secure.tobytes()
        assert ref.any_secure.tobytes() == alt.any_secure.tobytes()

    def test_weights_bit_identical(self, small_graph, policy, backend):
        ref_arena, alt_arena, ref, alt = self._trees(small_graph, policy, backend)
        w = small_graph.weights
        ref_w = subtree_weights_batched(ref_arena, ref_arena.all_slots(), ref.choice, w)
        alt_w = subtree_weights_batched(alt_arena, alt_arena.all_slots(), alt.choice, w)
        # float64 bytes, not allclose: the accumulation orders are
        # provably equivalent under IEEE (see _loops' docstring)
        assert ref_w.tobytes() == alt_w.tobytes()

    def test_subset_slots_bit_identical(self, small_graph, policy, backend):
        dests = list(range(0, small_graph.n, 7))
        secure, breaks = _security_state(small_graph.n)
        ref_arena = _arena_for(small_graph, policy, "numpy", dests)
        alt_arena = _arena_for(small_graph, policy, backend, dests)
        subset = np.array([0, 2, 5], dtype=np.int64)
        ref = compute_trees_batched(ref_arena, subset, secure, breaks)
        alt = compute_trees_batched(alt_arena, subset, secure, breaks)
        assert ref.choice.tobytes() == alt.choice.tobytes()
        ref_w = subtree_weights_batched(
            ref_arena, subset, ref.choice, small_graph.weights
        )
        alt_w = subtree_weights_batched(
            alt_arena, subset, alt.choice, small_graph.weights
        )
        assert ref_w.tobytes() == alt_w.tobytes()

    def test_fixpoint_structures_bit_identical(self, small_graph, policy, backend):
        dests = list(range(0, small_graph.n, 13))
        ref = get_policy(policy).build_many(small_graph, dests, backend="numpy")
        alt = get_policy(policy).build_many(small_graph, dests, backend=backend)
        for dest, r, a in zip(dests, ref, alt):
            assert r.cls.tobytes() == a.cls.tobytes(), (policy, backend, dest)
            assert r.lengths.tobytes() == a.lengths.tobytes(), (policy, backend, dest)
            assert r.order.tobytes() == a.order.tobytes(), (policy, backend, dest)
            assert r.indptr.tobytes() == a.indptr.tobytes(), (policy, backend, dest)
            assert r.cands.tobytes() == a.cands.tobytes(), (policy, backend, dest)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
class TestKernelParityProperty:
    """Hypothesis sweep: random GR1 graphs, random security states."""

    @settings(max_examples=25, deadline=None)
    @given(case=graphs_with_security(min_nodes=4, max_nodes=14))
    def test_random_graphs_bit_identical(self, backend, case):
        graph, secure_nodes = case
        secure = np.zeros(graph.n, dtype=bool)
        secure[secure_nodes] = True
        breaks = secure.copy()
        dests = list(range(graph.n))
        for policy in ("security_1st", "security_3rd"):
            ref = get_policy(policy).build_many(graph, dests, backend="numpy")
            alt = get_policy(policy).build_many(graph, dests, backend=backend)
            for r, a in zip(ref, alt):
                assert r.cls.tobytes() == a.cls.tobytes()
                assert r.cands.tobytes() == a.cands.tobytes()
            ref_arena = RoutingArena.build(
                graph.n, dests, ref, policy=policy, backend="numpy"
            )
            alt_arena = RoutingArena.build(
                graph.n, dests, alt, policy=policy, backend=backend
            )
            rt = compute_trees_batched(ref_arena, ref_arena.all_slots(), secure, breaks)
            at = compute_trees_batched(alt_arena, alt_arena.all_slots(), secure, breaks)
            assert rt.choice.tobytes() == at.choice.tobytes()
            assert rt.secure.tobytes() == at.secure.tobytes()


class TestArenaBackendPlumbing:
    def test_arena_carries_backend_through_shm_handle(self, small_graph):
        from repro.parallel.shm import ArenaHandle

        dests = [0, 1, 2]
        arena = _arena_for(small_graph, "security_3rd", PARITY_BACKENDS[-1], dests)
        total, layout = arena.to_blocks()
        handle = ArenaHandle(
            name="x", graph_n=arena.graph_n, total_bytes=total,
            layout=tuple(layout), dests=tuple(dests), backend=arena.backend,
        )
        buf = bytearray(total)
        arena.pack_into(buf)
        clone = RoutingArena.from_buffer(
            handle.graph_n, buf, list(handle.layout), backend=handle.backend
        )
        assert clone.backend == arena.backend

    def test_cache_stats_report_backend(self, small_graph):
        cache = RoutingCache(small_graph, destinations=[0, 1], backend="python")
        assert cache.backend_name == "python"
        assert cache.stats().backend == "python"
