"""The Figure-1 worked example must hold on its reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import UtilityModel
from repro.core.engine import compute_round_data, outgoing_contribution
from repro.core.state import DeploymentState, StateDeriver
from repro.gadgets.fig1 import build_fig1
from repro.routing.cache import RoutingCache


@pytest.fixture(scope="module")
def fig1():
    net = build_fig1(w_cp=821.0)
    cache = RoutingCache(net.graph)
    deriver = StateDeriver(net.graph, stub_breaks_ties=True, compiled=cache.compiled)
    g = net.graph
    state = DeploymentState.initial(
        frozenset(g.index(a) for a in net.early_adopters)
    )
    rd = compute_round_data(cache, deriver, state, UtilityModel.OUTGOING)
    return net, cache, deriver, state, rd


class TestFig1:
    def test_initial_security(self, fig1):
        """Caption: 8866 and 22822 secure, stub 31420 simplex via 8866."""
        net, cache, deriver, state, rd = fig1
        g = net.graph
        assert rd.node_secure[g.index(8866)]
        assert rd.node_secure[g.index(22822)]
        assert rd.node_secure[g.index(31420)]   # simplex
        assert not rd.node_secure[g.index(8928)]
        assert not rd.node_secure[g.index(15169)]  # CP, not an adopter

    def test_worked_utility_example(self, fig1):
        """Five sources (2 CPs + 3 ASes) through 8866 toward 31420:
        the destination contributes exactly 2*w_CP + 3."""
        net, cache, deriver, state, rd = fig1
        g = net.graph
        pos = cache.dest_pos(g.index(31420))
        contribution = outgoing_contribution(rd.dest_states[pos], g.index(8866))
        assert contribution == pytest.approx(2 * 821.0 + 3)

    def test_subtree_toward_limelight(self, fig1):
        """T_8866(22822, S) contains ASes 31420, 25076 and 34376."""
        net, cache, deriver, state, rd = fig1
        g = net.graph
        pos = cache.dest_pos(g.index(22822))
        tree = rd.dest_states[pos].tree
        through = set()
        for src in range(g.n):
            node = src
            while node != tree.dest and tree.choice[node] >= 0:
                node = int(tree.choice[node])
                if node == g.index(8866):
                    through.add(g.asn(src))
                    break
        assert through == {31420, 25076, 34376}

    def test_destination_not_via_customer_excluded(self, fig1):
        """'Destination 31420 is in D(n) but destination 22822 is not.'"""
        net, cache, deriver, state, rd = fig1
        g = net.graph
        from repro.routing.policy import RouteClass

        n = g.index(8866)
        cls_31420 = cache.dest_routing(g.index(31420)).cls[n]
        cls_22822 = cache.dest_routing(g.index(22822)).cls[n]
        assert cls_31420 == int(RouteClass.CUSTOMER)
        assert cls_22822 != int(RouteClass.CUSTOMER)
