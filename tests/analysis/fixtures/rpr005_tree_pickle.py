"""Golden fixture for RPR005 (pickle/deepcopy of routing structures)."""

import copy
import pickle


def bad_pickle_tree(tree) -> bytes:
    return pickle.dumps(tree)  # expect: RPR005


def bad_pickle_to_file(arena, fh) -> None:
    pickle.dump(arena, fh)  # expect: RPR005


def bad_deepcopy_routing(dest_routing) -> object:
    return copy.deepcopy(dest_routing)  # expect: RPR005


def waived_pickle(tree) -> bytes:
    return pickle.dumps(tree)  # repro-lint: disable=RPR005 -- fixture waiver


def clean_plain_payload(payload: dict) -> bytes:
    return pickle.dumps(payload)


def clean_shallow_copy(config: dict) -> dict:
    return dict(config)
