"""Unit tests for rule scoping: package exemptions, alias resolution."""

from __future__ import annotations

from repro.analysis import get_rules, lint_source
from repro.analysis.engine import module_for_path
from repro.analysis.rules import ALL_RULES


def codes(source: str, module: str | None = None, path: str = "fixture.py") -> list[str]:
    return [f.code for f in lint_source(source, path=path, module=module)]


class TestAtomicWriteScoping:
    SOURCE = 'fh = open("out.json", "w")\n'

    def test_flagged_outside_atomic_module(self):
        assert codes(self.SOURCE, module="repro.experiments.report") == ["RPR001"]

    def test_exempt_inside_atomic_module(self):
        assert codes(self.SOURCE, module="repro.runtime.atomic") == []

    def test_scripts_get_no_exemption(self):
        assert codes(self.SOURCE, module=None) == ["RPR001"]

    def test_dynamic_mode_is_not_flagged(self):
        assert codes('fh = open("f", mode)\n') == []


class TestPrivateCacheScoping:
    SOURCE = "n = len(cache._routing)\n"

    def test_flagged_outside_routing(self):
        assert codes(self.SOURCE, module="repro.core.engine") == ["RPR003"]

    def test_exempt_inside_routing_package(self):
        assert codes(self.SOURCE, module="repro.routing.cache") == []


class TestPolicyScoping:
    SOURCE = 'p = RoutingPolicy(name="x", ranking=())\n'

    def test_flagged_outside_policy_module(self):
        assert codes(self.SOURCE, module="repro.core.config") == ["RPR004"]

    def test_exempt_inside_policy_module(self):
        assert codes(self.SOURCE, module="repro.routing.policy") == []

    def test_registry_access_through_import_alias(self):
        source = "from repro.routing.policy import _REGISTRY\nx = _REGISTRY\n"
        assert "RPR004" in codes(source, module="repro.core.config")


class TestAliasResolution:
    def test_numpy_import_alias(self):
        assert codes("import numpy as xyz\nv = xyz.random.rand()\n") == ["RPR002"]

    def test_from_import_function(self):
        assert codes("from numpy.random import rand\nv = rand()\n") == ["RPR002"]

    def test_default_rng_is_allowed_through_alias(self):
        assert codes("import numpy as np\nrng = np.random.default_rng(3)\n") == []


class TestErrorsModuleExemption:
    SOURCE = "class FooError(Exception):\n    pass\n"

    def test_flagged_in_feature_module(self):
        assert codes(self.SOURCE, path="src/repro/topology/graph.py") == ["RPR008"]

    def test_exempt_in_errors_module(self):
        assert codes(self.SOURCE, path="src/repro/topology/errors.py") == []


class TestImportTimeScoping:
    def test_module_level_flagged(self):
        assert codes("import multiprocessing\nL = multiprocessing.Lock()\n") == ["RPR006"]

    def test_function_level_allowed(self):
        source = "import multiprocessing\ndef f():\n    return multiprocessing.Lock()\n"
        assert codes(source) == []

    def test_class_body_counts_as_import_time(self):
        source = "import multiprocessing\nclass C:\n    lock = multiprocessing.Lock()\n"
        assert codes(source) == ["RPR006"]


class TestUnboundedBlockingScoping:
    SOURCE = "result = conn.recv()\n"

    def test_flagged_outside_runtime(self):
        assert codes(self.SOURCE, module="repro.parallel.somewhere") == ["RPR011"]

    def test_exempt_inside_runtime(self):
        assert codes(self.SOURCE, module="repro.runtime.retry") == []

    def test_scripts_get_no_exemption(self):
        assert codes(self.SOURCE, module=None) == ["RPR011"]


class TestInlineKernelScoping:
    SOURCE = (
        "from repro.experiments import run_sweep\n"
        "def handler(env):\n"
        "    return run_sweep(env)\n"
    )

    def test_flagged_in_service_package(self):
        assert codes(self.SOURCE, module="repro.service.daemon") == ["RPR012"]
        assert codes(self.SOURCE, module="repro.service.scheduler") == ["RPR012"]

    def test_exempt_in_executor(self):
        assert codes(self.SOURCE, module="repro.service.executor") == []

    def test_not_scoped_outside_service(self):
        # the CLI and experiments call kernels directly by design
        assert codes(self.SOURCE, module="repro.cli") == []
        assert codes(self.SOURCE, module=None) == []

    def test_alias_resolution(self):
        source = (
            "from repro.experiments.sweeps import run_sweep as go\n"
            "def handler(env):\n"
            "    return go(env)\n"
        )
        assert codes(source, module="repro.service.daemon") == ["RPR012"]

    def test_environment_build_is_a_kernel(self):
        source = (
            "from repro.experiments.setup import build_environment\n"
            "def handler(n):\n"
            "    return build_environment(n=n)\n"
        )
        assert codes(source, module="repro.service.store") == ["RPR012"]


class TestRuleSelection:
    def test_select_runs_only_named_rules(self):
        rules = get_rules(select=frozenset({"RPR001"}))
        assert [r.code for r in rules] == ["RPR001"]

    def test_ignore_removes_rules(self):
        rules = get_rules(ignore=frozenset({"RPR001", "RPR002"}))
        assert "RPR001" not in {r.code for r in rules}
        assert len(rules) == len(ALL_RULES) - 2

    def test_unknown_select_raises(self):
        try:
            get_rules(select=frozenset({"RPR999"}))
        except ValueError as exc:
            assert "RPR999" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestModuleForPath:
    def test_package_file(self):
        assert module_for_path("src/repro/routing/cache.py") == "repro.routing.cache"

    def test_package_init(self):
        assert module_for_path("src/repro/routing/__init__.py") == "repro.routing"

    def test_outside_package(self):
        assert module_for_path("scripts/bench_compare.py") is None
