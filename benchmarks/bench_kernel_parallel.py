"""Kernel ablation: serial vs process-pool cache warming.

The map step (per-destination DestRouting construction) is what the
paper distributed over DryadLINQ.  At laptop scales the serial engine
often wins (fork + pickle overhead); the bench quantifies the
crossover, which is why ``workers=1`` is the default.
"""

from __future__ import annotations

from repro.parallel.engine import parallel_warm_cache
from repro.routing.cache import RoutingCache
from repro.topology.generator import generate_topology

_top = None


def _fresh_cache():
    global _top
    if _top is None:
        _top = generate_topology(n=300, seed=77)
    return RoutingCache(_top.graph)


def test_kernel_warm_serial(benchmark):
    def warm():
        cache = _fresh_cache()
        parallel_warm_cache(cache, workers=1)
        return cache

    # enough rounds that the min statistic survives scheduler noise on
    # shared machines (see scripts/bench_compare.py --stat)
    cache = benchmark.pedantic(warm, rounds=8, iterations=1)
    assert cache.stats().cached == cache.graph.n


def test_kernel_warm_processes(benchmark):
    def warm():
        cache = _fresh_cache()
        parallel_warm_cache(cache, workers=4)
        return cache

    cache = benchmark.pedantic(warm, rounds=8, iterations=1)
    assert cache.stats().cached == cache.graph.n
