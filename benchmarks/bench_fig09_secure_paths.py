"""Figure 9: fraction of secure source-destination paths (§6.4).

Paper: the secure-path fraction tracks f^2 (f = secure-AS fraction),
sitting only ~4% below it because both endpoints must be secure and
most secure paths are short.  Shape: measured <= f^2, within tens of
percent of it whenever adoption is substantial.
"""

from __future__ import annotations

from benchmarks.conftest import sweep_cells
from repro.experiments.report import format_table


def test_fig09_secure_path_fraction(benchmark, env, capsys):
    cells = benchmark.pedantic(lambda: sweep_cells(env), rounds=1, iterations=1)

    rows = [
        [c.adopters, f"{c.theta:.2f}", f"{c.fraction_secure_paths:.3f}",
         f"{c.f_squared:.3f}",
         f"{(c.f_squared - c.fraction_secure_paths):.3f}"]
        for c in cells
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["adopters", "theta", "secure paths", "f^2", "gap"],
            rows, title="Fig 9: secure paths vs the f^2 reference",
        ))

    for c in cells:
        assert c.fraction_secure_paths <= c.f_squared + 1e-9
        if c.fraction_secure_ases > 0.6:
            assert c.fraction_secure_paths >= 0.6 * c.f_squared
